//! Property-based legality checks on instances too large to enumerate
//! exhaustively: sampled views and inputs must never violate the legality
//! criteria of §3.2 for either pair.

use dex_conditions::{FrequencyPair, LegalityPair, PrivilegedPair};
use dex_types::{InputVector, SystemConfig, View};
use proptest::prelude::*;

const N: usize = 13;
const T: usize = 2;

fn view_strategy(domain: u64, max_bottom: usize) -> impl Strategy<Value = View<u64>> {
    (
        proptest::collection::vec(0..domain, N),
        proptest::collection::vec(0usize..N, 0..=max_bottom),
    )
        .prop_map(|(values, bottoms)| {
            let mut entries: Vec<Option<u64>> = values.into_iter().map(Some).collect();
            for b in bottoms {
                entries[b] = None;
            }
            View::from_options(entries)
        })
}

fn vector_strategy(domain: u64) -> impl Strategy<Value = InputVector<u64>> {
    proptest::collection::vec(0..domain, N).prop_map(InputVector::new)
}

fn freq() -> FrequencyPair {
    FrequencyPair::new(SystemConfig::new(N, T).unwrap()).unwrap()
}

fn prv() -> PrivilegedPair<u64> {
    PrivilegedPair::new(SystemConfig::new(N, T).unwrap(), 1u64).unwrap()
}

/// `∃I, I' : J ≤ I ∧ J' ≤ I' ∧ dist(I, I') ≤ t` in closed form.
fn linkable(a: &View<u64>, b: &View<u64>) -> bool {
    a.as_options()
        .iter()
        .zip(b.as_options())
        .filter(|(x, y)| x.is_some() && y.is_some() && x != y)
        .count()
        <= T
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn la3_sampled_frequency(a in view_strategy(3, T), b in view_strategy(3, T)) {
        let pair = freq();
        if LegalityPair::<u64>::p1(&pair, &a) && linkable(&a, &b) {
            prop_assert_eq!(pair.decide(&a), pair.decide(&b),
                "LA3 violated: {} vs {}", a, b);
        }
    }

    #[test]
    fn la4_sampled_frequency(a in view_strategy(3, T), b in view_strategy(3, T)) {
        let pair = freq();
        if LegalityPair::<u64>::p2(&pair, &a) && a.is_compatible_with(&b) {
            prop_assert_eq!(pair.decide(&a), pair.decide(&b),
                "LA4 violated: {} vs {}", a, b);
        }
    }

    #[test]
    fn la3_sampled_privileged(a in view_strategy(3, T), b in view_strategy(3, T)) {
        let pair = prv();
        if pair.p1(&a) && linkable(&a, &b) {
            prop_assert_eq!(pair.decide(&a), pair.decide(&b));
        }
    }

    #[test]
    fn la4_sampled_privileged(a in view_strategy(3, T), b in view_strategy(3, T)) {
        let pair = prv();
        if pair.p2(&a) && a.is_compatible_with(&b) {
            prop_assert_eq!(pair.decide(&a), pair.decide(&b));
        }
    }

    #[test]
    fn lt1_lt2_sampled_frequency(
        input in vector_strategy(3),
        bottoms in proptest::collection::vec(0usize..N, 0..=T),
        k in 0usize..=T,
    ) {
        // Build J from I by blanking ≤ k entries: dist(J, I) ≤ k holds by
        // construction, so membership in C¹_k / C²_k must force P1 / P2.
        if bottoms.len() > k {
            return Ok(());
        }
        let mut entries: Vec<Option<u64>> =
            input.as_slice().iter().cloned().map(Some).collect();
        for b in &bottoms {
            entries[*b] = None;
        }
        let view = View::from_options(entries);
        let pair = freq();
        if pair.in_c1(&input, k) {
            prop_assert!(LegalityPair::<u64>::p1(&pair, &view),
                "LT1 violated: {} from {}", view, input);
        }
        if pair.in_c2(&input, k) {
            prop_assert!(LegalityPair::<u64>::p2(&pair, &view),
                "LT2 violated: {} from {}", view, input);
        }
    }

    #[test]
    fn lt1_lt2_sampled_privileged(
        input in vector_strategy(3),
        bottoms in proptest::collection::vec(0usize..N, 0..=T),
        k in 0usize..=T,
    ) {
        if bottoms.len() > k {
            return Ok(());
        }
        let mut entries: Vec<Option<u64>> =
            input.as_slice().iter().cloned().map(Some).collect();
        for b in &bottoms {
            entries[*b] = None;
        }
        let view = View::from_options(entries);
        let pair = prv();
        if pair.in_c1(&input, k) {
            prop_assert!(pair.p1(&view));
        }
        if pair.in_c2(&input, k) {
            prop_assert!(pair.p2(&view));
        }
    }

    #[test]
    fn lu5_sampled(view in view_strategy(4, T)) {
        // When a unique value tops t occurrences, both pairs must decide it.
        let hist = view.histogram();
        let over: Vec<u64> = hist
            .iter()
            .filter(|(_, c)| **c > T)
            .map(|(v, _)| **v)
            .collect();
        if let [dominant] = over.as_slice() {
            prop_assert_eq!(freq().decide(&view), Some(*dominant));
            prop_assert_eq!(prv().decide(&view), Some(*dominant));
        }
    }

    #[test]
    fn condition_sequences_are_monotone(input in vector_strategy(3), k in 0usize..T) {
        // C_k ⊇ C_{k+1} for all four sequences (§2.3 adaptiveness).
        let f = freq();
        let p = prv();
        if f.in_c1(&input, k + 1) { prop_assert!(f.in_c1(&input, k)); }
        if f.in_c2(&input, k + 1) { prop_assert!(f.in_c2(&input, k)); }
        if p.in_c1(&input, k + 1) { prop_assert!(p.in_c1(&input, k)); }
        if p.in_c2(&input, k + 1) { prop_assert!(p.in_c2(&input, k)); }
    }

    #[test]
    fn c1_is_inside_c2(input in vector_strategy(3), k in 0usize..=T) {
        // One-step inputs are a fortiori two-step inputs: C¹_k ⊆ C²_k.
        let f = freq();
        let p = prv();
        if f.in_c1(&input, k) { prop_assert!(f.in_c2(&input, k)); }
        if p.in_c1(&input, k) { prop_assert!(p.in_c2(&input, k)); }
    }

    #[test]
    fn p1_implies_p2(view in view_strategy(3, T)) {
        let f = freq();
        let p = prv();
        if LegalityPair::<u64>::p1(&f, &view) {
            prop_assert!(LegalityPair::<u64>::p2(&f, &view));
        }
        if p.p1(&view) { prop_assert!(p.p2(&view)); }
    }
}
