//! The privileged-value condition and condition-sequence pair (§3.4).

use crate::condition::Condition;
use crate::error::PairError;
use crate::pair::LegalityPair;
use dex_types::{InputVector, SystemConfig, Value, View};

/// The privileged-value condition `C^prv(m)_d` (§3.4):
///
/// ```text
/// C^prv(m)_d = { I ∈ V^n | #_m(I) > d }
/// ```
///
/// A designated value `m`, known a priori to every process (e.g. `Commit` in
/// atomic commitment), appears more than `d` times. `C^prv(m)_d` is a
/// *d-legal* condition \[10\].
///
/// # Examples
///
/// ```
/// use dex_conditions::{Condition, PrivilegedCondition};
/// use dex_types::InputVector;
///
/// let c = PrivilegedCondition::new("commit".to_string(), 2);
/// let i = InputVector::new(vec!["commit".into(), "commit".into(), "commit".into(), "abort".into()]);
/// assert!(c.contains(&i)); // 3 > 2
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PrivilegedCondition<V> {
    m: V,
    d: usize,
}

impl<V: Value> PrivilegedCondition<V> {
    /// Creates `C^prv(m)_d`.
    pub const fn new(m: V, d: usize) -> Self {
        PrivilegedCondition { m, d }
    }

    /// The privileged value `m`.
    pub const fn privileged(&self) -> &V {
        &self.m
    }

    /// The occurrence threshold `d`.
    pub const fn d(&self) -> usize {
        self.d
    }
}

impl<V: Value> Condition<V> for PrivilegedCondition<V> {
    fn contains(&self, input: &InputVector<V>) -> bool {
        input.count_of(&self.m) > self.d
    }

    fn describe(&self) -> String {
        format!("C^prv({:?})_{}", self.m, self.d)
    }
}

/// The privileged-value legal condition-sequence pair `P_prv` (§3.4):
///
/// * `C¹_k = C^prv(m)_{3t+k}` — one-step sequence,
/// * `C²_k = C^prv(m)_{2t+k}` — two-step sequence,
/// * `P1(J) ≡ #_m(J) > 3t`,
/// * `P2(J) ≡ #_m(J) > 2t`,
/// * `F(J) = m` if `#_m(J) > t`, otherwise the most frequent non-`⊥` value.
///
/// Legal by Theorem 2; requires `n > 5t` to be meaningful. Compared with
/// [`crate::FrequencyPair`], this pair expedites a *complementary* set of
/// inputs: it fires whenever the privileged value is popular enough,
/// regardless of the margin over the runner-up, but never fires for
/// non-privileged values.
///
/// # Examples
///
/// ```
/// use dex_conditions::{LegalityPair, PrivilegedPair};
/// use dex_types::{InputVector, SystemConfig};
///
/// let pair = PrivilegedPair::new(SystemConfig::new(6, 1)?, 1u64)?;
/// let view = InputVector::new(vec![1u64, 1, 1, 1, 0, 0]).to_view();
/// assert!(pair.p1(&view));            // #m = 4 > 3t = 3
/// assert_eq!(pair.decide(&view), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrivilegedPair<V> {
    config: SystemConfig,
    m: V,
}

impl<V: Value> PrivilegedPair<V> {
    /// Creates the pair for a given configuration and privileged value `m`.
    ///
    /// # Errors
    ///
    /// [`PairError::InsufficientResilience`] unless `n > 5t` (§3.4: "the
    /// assumption n > 5t is required to make `P_prv` meaningful").
    pub fn new(config: SystemConfig, m: V) -> Result<Self, PairError> {
        if !config.supports_privileged_pair() {
            return Err(PairError::InsufficientResilience {
                config,
                required_n: 5 * config.t() + 1,
                pair: "PrivilegedPair",
            });
        }
        Ok(PrivilegedPair { config, m })
    }

    /// The configuration this pair was built for.
    pub const fn config(&self) -> SystemConfig {
        self.config
    }

    /// The privileged value `m`, known a priori to every process.
    pub const fn privileged(&self) -> &V {
        &self.m
    }

    /// The one-step condition `C¹_k = C^prv(m)_{3t+k}`.
    pub fn c1(&self, k: usize) -> PrivilegedCondition<V> {
        PrivilegedCondition::new(self.m.clone(), 3 * self.config.t() + k)
    }

    /// The two-step condition `C²_k = C^prv(m)_{2t+k}`.
    pub fn c2(&self, k: usize) -> PrivilegedCondition<V> {
        PrivilegedCondition::new(self.m.clone(), 2 * self.config.t() + k)
    }
}

impl<V: Value> LegalityPair<V> for PrivilegedPair<V> {
    fn name(&self) -> &'static str {
        "prv"
    }

    fn t(&self) -> usize {
        self.config.t()
    }

    fn p1(&self, view: &View<V>) -> bool {
        view.count_of(&self.m) > 3 * self.config.t()
    }

    fn p2(&self, view: &View<V>) -> bool {
        view.count_of(&self.m) > 2 * self.config.t()
    }

    // Each insertion adds at most one occurrence of `m`, so at least
    // (threshold + 1) − #_m(J) further entries are needed before P1/P2 can
    // flip.
    fn p1_deficit(&self, view: &View<V>) -> usize {
        (3 * self.config.t() + 1).saturating_sub(view.count_of(&self.m))
    }

    fn p2_deficit(&self, view: &View<V>) -> usize {
        (2 * self.config.t() + 1).saturating_sub(view.count_of(&self.m))
    }

    fn decide(&self, view: &View<V>) -> Option<V> {
        if view.count_of(&self.m) > self.config.t() {
            Some(self.m.clone())
        } else {
            view.first().cloned()
        }
    }

    fn in_c1(&self, input: &InputVector<V>, k: usize) -> bool {
        self.c1(k).contains(input)
    }

    fn in_c2(&self, input: &InputVector<V>, k: usize) -> bool {
        self.c2(k).contains(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_types::ProcessId;

    fn pair(n: usize, t: usize) -> PrivilegedPair<u64> {
        PrivilegedPair::new(SystemConfig::new(n, t).unwrap(), 1u64).unwrap()
    }

    #[test]
    fn rejects_insufficient_resilience() {
        let cfg = SystemConfig::new(10, 2).unwrap(); // n = 5t is not enough
        assert!(matches!(
            PrivilegedPair::new(cfg, 1u64),
            Err(PairError::InsufficientResilience { required_n: 11, .. })
        ));
        assert!(PrivilegedPair::new(SystemConfig::new(11, 2).unwrap(), 1u64).is_ok());
    }

    #[test]
    fn condition_thresholds_follow_definition() {
        let p = pair(11, 2);
        assert_eq!(p.c1(0).d(), 6);
        assert_eq!(p.c1(2).d(), 8);
        assert_eq!(p.c2(0).d(), 4);
        assert_eq!(p.c2(2).d(), 6);
        assert_eq!(p.c1(0).privileged(), &1);
    }

    #[test]
    fn predicates_count_privileged_value_only() {
        let p = pair(6, 1);
        // 4 copies of m = 1: P1 (4 > 3) and P2 (4 > 2) hold.
        let view = InputVector::new(vec![1u64, 1, 1, 1, 0, 2]).to_view();
        assert!(p.p1(&view));
        assert!(p.p2(&view));
        // 3 copies: only P2.
        let view = InputVector::new(vec![1u64, 1, 1, 0, 0, 2]).to_view();
        assert!(!p.p1(&view));
        assert!(p.p2(&view));
        // Overwhelming *non-privileged* majority never triggers P1/P2.
        let view = InputVector::unanimous(6, 9u64).to_view();
        assert!(!p.p1(&view));
        assert!(!p.p2(&view));
    }

    #[test]
    fn decide_prefers_privileged_above_t() {
        let p = pair(6, 1);
        // m appears twice (> t = 1) but 9 is the most frequent value.
        let view = InputVector::new(vec![1u64, 1, 9, 9, 9, 9]).to_view();
        assert_eq!(p.decide(&view), Some(1));
        // m appears once (≤ t): fall back to most frequent.
        let view = InputVector::new(vec![1u64, 9, 9, 9, 9, 8]).to_view();
        assert_eq!(p.decide(&view), Some(9));
    }

    #[test]
    fn decide_none_only_on_bottom_view() {
        let p = pair(6, 1);
        assert_eq!(p.decide(&View::<u64>::bottom(6)), None);
        let mut v = View::<u64>::bottom(6);
        v.set(ProcessId::new(0), 5);
        assert_eq!(p.decide(&v), Some(5));
    }

    #[test]
    fn sequences_are_monotone_decreasing() {
        let p = pair(11, 2);
        // #m = 7: in C¹_0 (d=6) but not C¹_1 (d=7); in C²_k for all k ≤ 2.
        let mut entries = vec![1u64; 7];
        entries.extend_from_slice(&[0, 0, 0, 0]);
        let input = InputVector::new(entries);
        assert!(p.in_c1(&input, 0));
        assert!(!p.in_c1(&input, 1));
        for k in 0..=2 {
            assert!(p.in_c2(&input, k), "k={k}");
        }
    }

    #[test]
    fn string_values_work() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let p = PrivilegedPair::new(cfg, "commit".to_string()).unwrap();
        let i: InputVector<String> = vec![
            "commit".to_string(),
            "commit".to_string(),
            "commit".to_string(),
            "commit".to_string(),
            "abort".to_string(),
            "abort".to_string(),
        ]
        .into();
        assert!(p.in_c1(&i, 0));
        assert_eq!(p.decide(&i.to_view()), Some("commit".to_string()));
    }
}
