//! The `Condition` abstraction (§2.3).

use dex_types::{InputVector, Value};

/// A condition: a subset of all possible input vectors `V^n` (§2.3).
///
/// Condition-based algorithms guarantee an expedited decision for inputs
/// belonging to the condition. The two concrete families from the paper are
/// [`crate::FrequencyCondition`] (`C^freq_d`) and
/// [`crate::PrivilegedCondition`] (`C^prv(m)_d`); both belong to the class of
/// *d-legal* conditions of Mostefaoui et al. \[10\], which this trait can
/// also express for testing purposes.
///
/// # Examples
///
/// ```
/// use dex_conditions::{Condition, FrequencyCondition};
/// use dex_types::InputVector;
///
/// let c = FrequencyCondition::new(2); // margin > 2
/// let input = InputVector::new(vec![7u64, 7, 7, 7, 1]);
/// assert!(c.contains(&input));        // margin 4 - 1 = 3 > 2
/// ```
pub trait Condition<V: Value> {
    /// Whether `input ∈ C`.
    fn contains(&self, input: &InputVector<V>) -> bool;

    /// A short human-readable description, e.g. `C^freq_4`.
    fn describe(&self) -> String;
}

impl<V: Value, C: Condition<V> + ?Sized> Condition<V> for &C {
    fn contains(&self, input: &InputVector<V>) -> bool {
        (**self).contains(input)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Checks the *d-legality* properties of \[10\] for a condition `C` with a
/// candidate decision function `F`, on a finite set of sample inputs:
///
/// * **T_{C→d}**: `∀I ∈ C : #_{F(I)}(I) > d` — the decided value appears more
///   than `d` times, so it survives `d` missing entries.
/// * **A_{C→d}**: `∀I, I' ∈ C : dist(I, I') ≤ d ⇒ F(I) = F(I')` — close
///   vectors decide alike.
///
/// Returns the first violating input (pair) found, or `Ok(())`.
///
/// This is a *testing* utility: it validates the paper's claim that
/// `C^freq_d` and `C^prv(m)_d` are d-legal on enumerable instances.
///
/// # Errors
///
/// [`DLegalityViolation::Termination`] when some `I ∈ C` has
/// `#_{F(I)}(I) ≤ d`; [`DLegalityViolation::Agreement`] when two vectors in
/// `C` within distance `d` decide differently.
pub fn check_d_legality<V, C, F>(
    condition: &C,
    decide: F,
    d: usize,
    samples: &[InputVector<V>],
) -> Result<(), DLegalityViolation<V>>
where
    V: Value,
    C: Condition<V>,
    F: Fn(&InputVector<V>) -> V,
{
    let members: Vec<&InputVector<V>> = samples
        .iter()
        .filter(|input| condition.contains(input))
        .collect();
    for input in &members {
        let v = decide(input);
        if input.count_of(&v) <= d {
            return Err(DLegalityViolation::Termination {
                input: (*input).clone(),
                decided: v,
            });
        }
    }
    for (i, a) in members.iter().enumerate() {
        for b in &members[i + 1..] {
            if a.dist(b) <= d && decide(a) != decide(b) {
                return Err(DLegalityViolation::Agreement {
                    left: (*a).clone(),
                    right: (*b).clone(),
                });
            }
        }
    }
    Ok(())
}

/// A violation of the d-legality properties found by [`check_d_legality`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DLegalityViolation<V> {
    /// `#_{F(I)}(I) ≤ d` for a member `I` of the condition.
    Termination {
        /// The violating input vector.
        input: InputVector<V>,
        /// The value `F(I)` that appears too few times.
        decided: V,
    },
    /// Two members within distance `d` decide differently.
    Agreement {
        /// First vector.
        left: InputVector<V>,
        /// Second vector.
        right: InputVector<V>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyCondition;
    use crate::PrivilegedCondition;
    use dex_types::InputVector;

    fn all_vectors(n: usize, domain: &[u64]) -> Vec<InputVector<u64>> {
        let mut out = Vec::new();
        let mut idx = vec![0usize; n];
        loop {
            out.push(InputVector::new(idx.iter().map(|&i| domain[i]).collect()));
            let mut pos = 0;
            loop {
                if pos == n {
                    return out;
                }
                idx[pos] += 1;
                if idx[pos] < domain.len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    }

    #[test]
    fn frequency_condition_is_d_legal() {
        // The paper cites [10]: C^freq_d is d-legal with F = 1st.
        let samples = all_vectors(5, &[0, 1, 2]);
        for d in 0..4 {
            let c = FrequencyCondition::new(d);
            check_d_legality(
                &c,
                |input: &InputVector<u64>| *input.to_view().first().unwrap(),
                d,
                &samples,
            )
            .unwrap_or_else(|e| panic!("C^freq_{d} not d-legal: {e:?}"));
        }
    }

    #[test]
    fn privileged_condition_is_d_legal() {
        // C^prv(m)_d is d-legal with F = m.
        let samples = all_vectors(5, &[0, 1, 2]);
        for d in 0..4 {
            let c = PrivilegedCondition::new(1u64, d);
            check_d_legality(&c, |_| 1u64, d, &samples)
                .unwrap_or_else(|e| panic!("C^prv(1)_{d} not d-legal: {e:?}"));
        }
    }

    #[test]
    fn d_legality_detects_termination_violation() {
        // A bogus condition containing everything fails termination for d >= n.
        #[derive(Debug)]
        struct All;
        impl Condition<u64> for All {
            fn contains(&self, _: &InputVector<u64>) -> bool {
                true
            }
            fn describe(&self) -> String {
                "All".into()
            }
        }
        let samples = all_vectors(3, &[0, 1]);
        let err = check_d_legality(&All, |_| 0u64, 2, &samples).unwrap_err();
        assert!(matches!(err, DLegalityViolation::Termination { .. }));
    }

    #[test]
    fn d_legality_detects_agreement_violation() {
        // Majority always appears more than d = 1 times for n = 3, so
        // termination holds, but majorities of close vectors disagree:
        // (0,0,1) -> 0 and (0,1,1) -> 1 at distance 1.
        #[derive(Debug)]
        struct All;
        impl Condition<u64> for All {
            fn contains(&self, _: &InputVector<u64>) -> bool {
                true
            }
            fn describe(&self) -> String {
                "All".into()
            }
        }
        let samples = all_vectors(3, &[0, 1]);
        let err = check_d_legality(
            &All,
            |i: &InputVector<u64>| *i.to_view().first().unwrap(),
            1,
            &samples,
        )
        .unwrap_err();
        assert!(matches!(err, DLegalityViolation::Agreement { .. }));
    }

    #[test]
    fn reference_to_condition_is_condition() {
        let c = FrequencyCondition::new(1);
        let r: &FrequencyCondition = &c;
        let input = InputVector::new(vec![1u64, 1, 1]);
        assert!(Condition::<u64>::contains(&r, &input));
        assert_eq!(
            Condition::<u64>::describe(&r),
            Condition::<u64>::describe(&c)
        );
    }
}
