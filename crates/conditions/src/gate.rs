//! Watermark gating for the per-message predicate hot path.
//!
//! Fig. 1 re-evaluates `P1(J1)`/`P2(J2)` after every message reception, but
//! most receptions cannot possibly flip a predicate: a view that just
//! reached 5 entries can never satisfy a predicate needing a margin of 9,
//! and after a failed test the [`LegalityPair::p1_deficit`] bound tells us
//! how many *more* entries are required before the next test can succeed.
//!
//! [`DecisionGate`] turns that bound into a monotone watermark on `|J|`.
//! This is sound only for **grow-only** views — exactly what the algorithm
//! maintains (entries are written once, first value wins, never cleared).

use crate::pair::LegalityPair;
use dex_types::{Value, View};

/// A skip-until watermark for one predicate (`P1` or `P2`) over one view.
///
/// The gate starts at the quorum size `n − t` (Fig. 1 evaluates predicates
/// only on views with `|J| ≥ n − t`) and, after every failed evaluation,
/// advances to `|J| +` the pair's deficit bound, so intermediate receptions
/// skip the predicate entirely — O(1) comparisons instead of predicate
/// work.
///
/// # Examples
///
/// ```
/// use dex_conditions::{DecisionGate, FrequencyPair};
/// use dex_types::{ProcessId, SystemConfig, View};
///
/// let cfg = SystemConfig::new(13, 2)?;
/// let pair = FrequencyPair::new(cfg)?;
/// let mut gate = DecisionGate::new(cfg.quorum());
/// let mut view = View::<u64>::bottom(13);
/// let mut fired = false;
/// for i in 0..11 {
///     view.set(ProcessId::new(i), 1);
///     fired = gate.try_p1(&pair, &view);
/// }
/// // Margin 11 > 4t = 8: the predicate fired once the view became quorate.
/// assert!(fired);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DecisionGate {
    /// Evaluate only once `|J|` reaches this watermark.
    skip_until: usize,
    /// Number of actual predicate evaluations (diagnostics / tests).
    evals: usize,
    /// Number of receptions short-circuited without evaluating.
    skips: usize,
}

impl DecisionGate {
    /// A gate that first evaluates at `|J| = quorum` (use `n − t`).
    pub fn new(quorum: usize) -> Self {
        DecisionGate {
            skip_until: quorum,
            evals: 0,
            skips: 0,
        }
    }

    /// Rewinds the watermark to `quorum` for a recycled view. The eval/skip
    /// diagnostics keep accumulating across slots — they count work done by
    /// this gate object, not by one protocol instance.
    pub fn reset(&mut self, quorum: usize) {
        self.skip_until = quorum;
    }

    /// Evaluates `pair.p1(view)`, unless the watermark proves the predicate
    /// cannot yet hold. On a failed evaluation the watermark advances by
    /// the pair's [`LegalityPair::p1_deficit`] bound.
    pub fn try_p1<V: Value, P: LegalityPair<V> + ?Sized>(
        &mut self,
        pair: &P,
        view: &View<V>,
    ) -> bool {
        self.try_with(view, |v| pair.p1(v), |v| pair.p1_deficit(v))
    }

    /// The [`Self::try_p1`] analogue for `P2`.
    pub fn try_p2<V: Value, P: LegalityPair<V> + ?Sized>(
        &mut self,
        pair: &P,
        view: &View<V>,
    ) -> bool {
        self.try_with(view, |v| pair.p2(v), |v| pair.p2_deficit(v))
    }

    fn try_with<V: Value>(
        &mut self,
        view: &View<V>,
        predicate: impl FnOnce(&View<V>) -> bool,
        deficit: impl FnOnce(&View<V>) -> usize,
    ) -> bool {
        let len = view.len_non_default();
        if len < self.skip_until {
            self.skips += 1;
            return false;
        }
        self.evals += 1;
        if predicate(view) {
            true
        } else {
            // deficit must be ≥ 1 after a failed test; clamp defensively so
            // a buggy implementation degrades to test-every-message rather
            // than a livelock or a missed decision.
            self.skip_until = len + deficit(view).max(1);
            false
        }
    }

    /// How many times the predicate was actually evaluated.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// How many receptions were short-circuited without evaluation.
    pub fn skips(&self) -> usize {
        self.skips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyPair, PrivilegedPair};
    use dex_types::{ProcessId, SystemConfig};

    #[test]
    fn gate_fires_exactly_when_ungated_predicate_does() {
        // Feed adversarial-ish sequences and check the gated decision point
        // matches evaluating p1/p2 on every message.
        let cfg = SystemConfig::new(13, 2).unwrap();
        let pair = FrequencyPair::new(cfg).unwrap();
        for pattern in [
            vec![1u64; 13],
            vec![1, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 1, 1],
            vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9],
        ] {
            let mut gated = DecisionGate::new(cfg.quorum());
            let mut view = View::<u64>::bottom(13);
            let mut gated_fired_at = None;
            let mut plain_fired_at = None;
            for (i, v) in pattern.iter().enumerate() {
                view.set(ProcessId::new(i), *v);
                if gated_fired_at.is_none() && gated.try_p1(&pair, &view) {
                    gated_fired_at = Some(i);
                }
                let quorate = view.len_non_default() >= cfg.quorum();
                if plain_fired_at.is_none() && quorate && pair.p1(&view) {
                    plain_fired_at = Some(i);
                }
            }
            assert_eq!(gated_fired_at, plain_fired_at, "pattern {pattern:?}");
        }
    }

    #[test]
    fn gate_skips_below_quorum_and_after_failures() {
        let cfg = SystemConfig::new(13, 2).unwrap();
        let pair = FrequencyPair::new(cfg).unwrap();
        let mut gate = DecisionGate::new(cfg.quorum());
        let mut view = View::<u64>::bottom(13);
        // Alternate two values: the margin stays ≤ 1, so after the first
        // quorate failure the deficit pushes the watermark past n and no
        // further evaluation happens.
        for i in 0..13 {
            view.set(ProcessId::new(i), (i % 2) as u64);
            assert!(!gate.try_p1(&pair, &view));
        }
        assert_eq!(gate.evals(), 1, "one failed test, then pure skips");
        assert_eq!(gate.skips(), 12);
    }

    #[test]
    fn privileged_gate_counts_only_m() {
        let cfg = SystemConfig::new(11, 2).unwrap();
        let pair = PrivilegedPair::new(cfg, 1u64).unwrap();
        let mut gate = DecisionGate::new(cfg.quorum());
        let mut view = View::<u64>::bottom(11);
        // 9 non-privileged entries: quorate but #m = 0, deficit 3t+1 = 7
        // pushes the watermark out of reach.
        for i in 0..9 {
            view.set(ProcessId::new(i), 5);
            assert!(!gate.try_p1(&pair, &view));
        }
        assert_eq!(gate.evals(), 1);
        // Two privileged entries are not enough to re-trigger a test.
        view.set(ProcessId::new(9), 1);
        view.set(ProcessId::new(10), 1);
        assert!(!gate.try_p1(&pair, &view));
        assert_eq!(gate.evals(), 1);
    }

    #[test]
    fn default_deficit_degrades_to_per_message_testing() {
        // A pair relying on the default deficit (1) evaluates on every
        // quorate reception but still fires at the right moment.
        struct EveryMessage;
        impl LegalityPair<u64> for EveryMessage {
            fn name(&self) -> &'static str {
                "every"
            }
            fn t(&self) -> usize {
                1
            }
            fn p1(&self, view: &View<u64>) -> bool {
                view.count_of(&7) >= 6
            }
            fn p2(&self, _view: &View<u64>) -> bool {
                false
            }
            fn decide(&self, view: &View<u64>) -> Option<u64> {
                view.first().cloned()
            }
            fn in_c1(&self, _: &dex_types::InputVector<u64>, _: usize) -> bool {
                false
            }
            fn in_c2(&self, _: &dex_types::InputVector<u64>, _: usize) -> bool {
                false
            }
        }
        let mut gate = DecisionGate::new(4);
        let mut view = View::<u64>::bottom(7);
        let mut fired = None;
        for i in 0..7 {
            view.set(ProcessId::new(i), 7);
            if fired.is_none() && gate.try_p1(&EveryMessage, &view) {
                fired = Some(i);
            }
        }
        assert_eq!(fired, Some(5), "fires on the sixth 7");
        assert_eq!(gate.evals(), 3, "evaluated at |J| = 4, 5, 6");
    }
}
