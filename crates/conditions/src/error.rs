//! Errors raised when constructing condition-sequence pairs.

use core::fmt;
use dex_types::SystemConfig;
use std::error::Error;

/// Error constructing a legality pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairError {
    /// The system configuration does not satisfy the resilience bound the
    /// pair requires (`n > 6t` for the frequency pair, `n > 5t` for the
    /// privileged pair).
    InsufficientResilience {
        /// The offered configuration.
        config: SystemConfig,
        /// Minimum number of processes required for this `t`.
        required_n: usize,
        /// Name of the pair that was being constructed.
        pair: &'static str,
    },
}

impl fmt::Display for PairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairError::InsufficientResilience {
                config,
                required_n,
                pair,
            } => write!(
                f,
                "{pair} requires n >= {required_n} for t = {}, got n = {}",
                config.t(),
                config.n()
            ),
        }
    }
}

impl Error for PairError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_pair_and_bound() {
        let e = PairError::InsufficientResilience {
            config: SystemConfig::new(6, 1).unwrap(),
            required_n: 7,
            pair: "FrequencyPair",
        };
        let msg = e.to_string();
        assert!(msg.contains("FrequencyPair"));
        assert!(msg.contains("n >= 7"));
        assert!(msg.contains("n = 6"));
    }
}
