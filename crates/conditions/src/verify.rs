//! Exhaustive machine-checking of the legality criteria (§3.2).
//!
//! The paper proves Theorems 1 and 2 (legality of `P_freq` and `P_prv`) by
//! hand. This module re-verifies them mechanically on finite instances: it
//! enumerates every input vector in `V^n` and every view in `V^n_t` over a
//! small ordered value domain and checks each criterion directly against its
//! quantifier structure. A single violation is returned with a concrete
//! witness, which makes the checker double as a debugging tool for anyone
//! designing *new* condition-sequence pairs.
//!
//! The existential preconditions of LA3/LA4 are decided in closed form
//! rather than by enumeration:
//!
//! * `∃I, I' : J ≤ I ∧ J' ≤ I' ∧ dist(I, I') ≤ t` holds **iff** the number
//!   of positions where `J` and `J'` are both non-`⊥` and differ is `≤ t`
//!   (all other positions can be completed identically).
//! * `∃I : J ≤ I ∧ J' ≤ I` holds **iff** `J` and `J'` never disagree on a
//!   non-`⊥` entry ([`View::is_compatible_with`]).
//!
//! # Examples
//!
//! ```
//! use dex_conditions::{verify, FrequencyPair};
//! use dex_types::SystemConfig;
//!
//! let pair = FrequencyPair::new(SystemConfig::new(7, 1)?)?;
//! let report = verify::check_legality(&pair, 7, &[0u64, 1]).expect("Theorem 1");
//! assert!(report.lt1_checked > 0 && report.la3_checked > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Verifier errors deliberately carry the whole counterexample (view plus
// witness input vector); they occur once, on a cold path, and boxing them
// would only obscure the diagnostics.
#![allow(clippy::result_large_err)]

use crate::pair::LegalityPair;
use dex_types::{InputVector, Value, View};

/// Enumerates every input vector in `V^n` over `domain`.
///
/// # Panics
///
/// Panics if `domain` is empty or `n == 0`.
pub fn all_input_vectors<V: Value>(n: usize, domain: &[V]) -> Vec<InputVector<V>> {
    assert!(n > 0 && !domain.is_empty());
    let mut out = Vec::with_capacity(domain.len().pow(n as u32));
    let mut idx = vec![0usize; n];
    loop {
        out.push(InputVector::new(
            idx.iter().map(|&i| domain[i].clone()).collect(),
        ));
        let mut pos = 0;
        loop {
            if pos == n {
                return out;
            }
            idx[pos] += 1;
            if idx[pos] < domain.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Enumerates every view in `V^n_k` (at most `k` entries equal to `⊥`) over
/// `domain`.
///
/// # Panics
///
/// Panics if `domain` is empty or `n == 0`.
pub fn all_views<V: Value>(n: usize, domain: &[V], k: usize) -> Vec<View<V>> {
    assert!(n > 0 && !domain.is_empty());
    // Entry index domain.len() encodes ⊥.
    let arity = domain.len() + 1;
    let mut out = Vec::new();
    let mut idx = vec![0usize; n];
    loop {
        let bottoms = idx.iter().filter(|&&i| i == domain.len()).count();
        if bottoms <= k {
            out.push(View::from_options(
                idx.iter()
                    .map(|&i| {
                        if i == domain.len() {
                            None
                        } else {
                            Some(domain[i].clone())
                        }
                    })
                    .collect(),
            ));
        }
        let mut pos = 0;
        loop {
            if pos == n {
                return out;
            }
            idx[pos] += 1;
            if idx[pos] < arity {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// A counterexample to one of the legality criteria.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LegalityViolation<V> {
    /// LT1 fails: a view close to `C¹_k` does not satisfy `P1`.
    Lt1 {
        /// Fault count `k` at which the implication failed.
        k: usize,
        /// The view `J ∈ V^n_k`.
        view: View<V>,
        /// An input `I ∈ C¹_k` with `dist(J, I) ≤ k`.
        witness: InputVector<V>,
    },
    /// LT2 fails: a view close to `C²_k` does not satisfy `P2`.
    Lt2 {
        /// Fault count `k` at which the implication failed.
        k: usize,
        /// The view `J ∈ V^n_k`.
        view: View<V>,
        /// An input `I ∈ C²_k` with `dist(J, I) ≤ k`.
        witness: InputVector<V>,
    },
    /// LA3 fails: `P1(J)` holds, `J` and `J'` have linkable completions, yet
    /// `F(J) ≠ F(J')`.
    La3 {
        /// The one-step view.
        view: View<V>,
        /// The conflicting view.
        other: View<V>,
    },
    /// LA4 fails: `P2(J)` holds, `J` and `J'` are compatible, yet
    /// `F(J) ≠ F(J')`.
    La4 {
        /// The two-step view.
        view: View<V>,
        /// The conflicting view.
        other: View<V>,
    },
    /// LU5 fails: a unique value occurs more than `t` times but `F` decides
    /// something else.
    Lu5 {
        /// The view.
        view: View<V>,
        /// The value occurring more than `t` times.
        dominant: V,
        /// What `F` decided instead.
        decided: Option<V>,
    },
}

/// Statistics from a successful legality check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LegalityReport {
    /// Number of (k, view, witness) implications verified for LT1.
    pub lt1_checked: usize,
    /// Number of (k, view, witness) implications verified for LT2.
    pub lt2_checked: usize,
    /// Number of linkable view pairs with `P1` verified for LA3.
    pub la3_checked: usize,
    /// Number of compatible view pairs with `P2` verified for LA4.
    pub la4_checked: usize,
    /// Number of dominated views verified for LU5.
    pub lu5_checked: usize,
}

/// Checks LT1 exhaustively: for every `k ≤ t`, every `J ∈ V^n_k` and every
/// `I ∈ C¹_k` with `dist(J, I) ≤ k`, the predicate `P1(J)` must hold.
///
/// # Errors
///
/// Returns the first [`LegalityViolation::Lt1`] counterexample.
pub fn check_lt1<V: Value, P: LegalityPair<V>>(
    pair: &P,
    n: usize,
    domain: &[V],
) -> Result<usize, LegalityViolation<V>> {
    let vectors = all_input_vectors(n, domain);
    let mut checked = 0;
    for k in 0..=pair.t() {
        let in_c1: Vec<&InputVector<V>> = vectors.iter().filter(|i| pair.in_c1(i, k)).collect();
        for view in all_views(n, domain, k) {
            for input in &in_c1 {
                if view.dist(&input.to_view()) <= k {
                    checked += 1;
                    if !pair.p1(&view) {
                        return Err(LegalityViolation::Lt1 {
                            k,
                            view,
                            witness: (*input).clone(),
                        });
                    }
                    break; // one witness suffices; P1(J) already verified
                }
            }
        }
    }
    Ok(checked)
}

/// Checks LT2 exhaustively (the two-step analogue of [`check_lt1`]).
///
/// # Errors
///
/// Returns the first [`LegalityViolation::Lt2`] counterexample.
pub fn check_lt2<V: Value, P: LegalityPair<V>>(
    pair: &P,
    n: usize,
    domain: &[V],
) -> Result<usize, LegalityViolation<V>> {
    let vectors = all_input_vectors(n, domain);
    let mut checked = 0;
    for k in 0..=pair.t() {
        let in_c2: Vec<&InputVector<V>> = vectors.iter().filter(|i| pair.in_c2(i, k)).collect();
        for view in all_views(n, domain, k) {
            for input in &in_c2 {
                if view.dist(&input.to_view()) <= k {
                    checked += 1;
                    if !pair.p2(&view) {
                        return Err(LegalityViolation::Lt2 {
                            k,
                            view,
                            witness: (*input).clone(),
                        });
                    }
                    break;
                }
            }
        }
    }
    Ok(checked)
}

/// Whether completions `I ≥ J`, `I' ≥ J'` with `dist(I, I') ≤ t` exist:
/// true iff at most `t` positions have both views non-`⊥` and different.
fn linkable<V: Value>(j1: &View<V>, j2: &View<V>, t: usize) -> bool {
    j1.as_options()
        .iter()
        .zip(j2.as_options())
        .filter(|(a, b)| a.is_some() && b.is_some() && a != b)
        .count()
        <= t
}

/// Checks LA3 exhaustively over all pairs of views in `V^n_t`.
///
/// # Errors
///
/// Returns the first [`LegalityViolation::La3`] counterexample.
pub fn check_la3<V: Value, P: LegalityPair<V>>(
    pair: &P,
    n: usize,
    domain: &[V],
) -> Result<usize, LegalityViolation<V>> {
    let t = pair.t();
    let views = all_views(n, domain, t);
    let p1_views: Vec<&View<V>> = views.iter().filter(|j| pair.p1(j)).collect();
    let mut checked = 0;
    for j in &p1_views {
        let fj = pair.decide(j);
        for other in &views {
            if linkable(j, other, t) {
                checked += 1;
                if pair.decide(other) != fj {
                    return Err(LegalityViolation::La3 {
                        view: (*j).clone(),
                        other: other.clone(),
                    });
                }
            }
        }
    }
    Ok(checked)
}

/// Checks LA4 exhaustively over all compatible pairs of views in `V^n_t`.
///
/// # Errors
///
/// Returns the first [`LegalityViolation::La4`] counterexample.
pub fn check_la4<V: Value, P: LegalityPair<V>>(
    pair: &P,
    n: usize,
    domain: &[V],
) -> Result<usize, LegalityViolation<V>> {
    let t = pair.t();
    let views = all_views(n, domain, t);
    let p2_views: Vec<&View<V>> = views.iter().filter(|j| pair.p2(j)).collect();
    let mut checked = 0;
    for j in &p2_views {
        let fj = pair.decide(j);
        for other in &views {
            if j.is_compatible_with(other) {
                checked += 1;
                if pair.decide(other) != fj {
                    return Err(LegalityViolation::La4 {
                        view: (*j).clone(),
                        other: other.clone(),
                    });
                }
            }
        }
    }
    Ok(checked)
}

/// Checks LU5: for every view `J ∈ V^n_t` in which a **unique** value `a`
/// occurs more than `t` times, `F(J) = a`.
///
/// This is the form Lemma 3 (Unanimity) consumes: when all correct processes
/// propose `v` and `f ≤ t`, no other value can top `t` occurrences, so the
/// decision must be `v`.
///
/// # Errors
///
/// Returns the first [`LegalityViolation::Lu5`] counterexample.
pub fn check_lu5<V: Value, P: LegalityPair<V>>(
    pair: &P,
    n: usize,
    domain: &[V],
) -> Result<usize, LegalityViolation<V>> {
    let t = pair.t();
    let mut checked = 0;
    for view in all_views(n, domain, t) {
        // A *unique* value tops `t` occurrences exactly when the most
        // frequent value does but the runner-up does not — two O(1) tally
        // lookups instead of a histogram scan.
        let dominant = match (view.first_with_count(), view.second_with_count()) {
            (Some((v1, c1)), second) if c1 > t && second.is_none_or(|(_, c2)| c2 <= t) => {
                Some(v1.clone())
            }
            _ => None,
        };
        if let Some(dominant) = dominant {
            checked += 1;
            let decided = pair.decide(&view);
            if decided.as_ref() != Some(&dominant) {
                return Err(LegalityViolation::Lu5 {
                    view,
                    dominant,
                    decided,
                });
            }
        }
    }
    Ok(checked)
}

/// Runs all five legality checks; the mechanical counterpart of
/// Theorems 1 and 2.
///
/// # Errors
///
/// Returns the first violation discovered, in LT1 → LT2 → LA3 → LA4 → LU5
/// order.
pub fn check_legality<V: Value, P: LegalityPair<V>>(
    pair: &P,
    n: usize,
    domain: &[V],
) -> Result<LegalityReport, LegalityViolation<V>> {
    Ok(LegalityReport {
        lt1_checked: check_lt1(pair, n, domain)?,
        lt2_checked: check_lt2(pair, n, domain)?,
        la3_checked: check_la3(pair, n, domain)?,
        la4_checked: check_la4(pair, n, domain)?,
        lu5_checked: check_lu5(pair, n, domain)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyPair, PrivilegedPair};
    use dex_types::SystemConfig;

    #[test]
    fn enumeration_counts_are_exact() {
        assert_eq!(all_input_vectors(3, &[0u64, 1]).len(), 8);
        // Views with ≤1 ⊥ over |V|=2, n=3: 2^3 + 3·2^2 = 20.
        assert_eq!(all_views(3, &[0u64, 1], 1).len(), 20);
        // k = 0 means complete views only.
        assert_eq!(all_views(3, &[0u64, 1], 0).len(), 8);
    }

    #[test]
    fn theorem1_frequency_pair_is_legal_n7_t1() {
        let pair = FrequencyPair::new(SystemConfig::new(7, 1).unwrap()).unwrap();
        let report = check_legality(&pair, 7, &[0u64, 1]).expect("Theorem 1 must hold");
        assert!(report.lt1_checked > 0);
        assert!(report.lt2_checked > 0);
        assert!(report.la3_checked > 0);
        assert!(report.la4_checked > 0);
        assert!(report.lu5_checked > 0);
    }

    #[test]
    fn theorem2_privileged_pair_is_legal_n6_t1() {
        let pair = PrivilegedPair::new(SystemConfig::new(6, 1).unwrap(), 1u64).unwrap();
        let report = check_legality(&pair, 6, &[0u64, 1]).expect("Theorem 2 must hold");
        assert!(report.lu5_checked > 0);
    }

    #[test]
    fn theorem2_privileged_pair_is_legal_three_values() {
        let pair = PrivilegedPair::new(SystemConfig::new(6, 1).unwrap(), 2u64).unwrap();
        check_legality(&pair, 6, &[0u64, 1, 2]).expect("Theorem 2 must hold for |V| = 3");
    }

    /// A deliberately broken pair: P1 threshold weakened from 4t to t.
    /// LA3 must catch it (one-step decisions can clash with other views).
    #[derive(Clone, Debug)]
    struct BrokenPair {
        inner: FrequencyPair,
    }

    impl LegalityPair<u64> for BrokenPair {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn t(&self) -> usize {
            LegalityPair::<u64>::t(&self.inner)
        }
        fn p1(&self, view: &View<u64>) -> bool {
            view.frequency_margin() > self.t()
        }
        fn p2(&self, view: &View<u64>) -> bool {
            LegalityPair::<u64>::p2(&self.inner, view)
        }
        fn decide(&self, view: &View<u64>) -> Option<u64> {
            LegalityPair::<u64>::decide(&self.inner, view)
        }
        fn in_c1(&self, input: &InputVector<u64>, k: usize) -> bool {
            self.inner.in_c1(input, k)
        }
        fn in_c2(&self, input: &InputVector<u64>, k: usize) -> bool {
            self.inner.in_c2(input, k)
        }
    }

    #[test]
    fn checker_catches_weakened_p1() {
        let broken = BrokenPair {
            inner: FrequencyPair::new(SystemConfig::new(7, 1).unwrap()).unwrap(),
        };
        let err = check_la3(&broken, 7, &[0u64, 1]).unwrap_err();
        assert!(matches!(err, LegalityViolation::La3 { .. }));
    }

    /// A pair whose F ignores dominance: LU5 must catch it.
    #[derive(Clone, Debug)]
    struct ConstantDecider {
        inner: FrequencyPair,
    }

    impl LegalityPair<u64> for ConstantDecider {
        fn name(&self) -> &'static str {
            "const"
        }
        fn t(&self) -> usize {
            LegalityPair::<u64>::t(&self.inner)
        }
        fn p1(&self, view: &View<u64>) -> bool {
            LegalityPair::<u64>::p1(&self.inner, view)
        }
        fn p2(&self, view: &View<u64>) -> bool {
            LegalityPair::<u64>::p2(&self.inner, view)
        }
        fn decide(&self, _: &View<u64>) -> Option<u64> {
            Some(0)
        }
        fn in_c1(&self, input: &InputVector<u64>, k: usize) -> bool {
            self.inner.in_c1(input, k)
        }
        fn in_c2(&self, input: &InputVector<u64>, k: usize) -> bool {
            self.inner.in_c2(input, k)
        }
    }

    #[test]
    fn checker_catches_non_unanimous_decider() {
        let broken = ConstantDecider {
            inner: FrequencyPair::new(SystemConfig::new(7, 1).unwrap()).unwrap(),
        };
        let err = check_lu5(&broken, 7, &[0u64, 1]).unwrap_err();
        match err {
            LegalityViolation::Lu5 {
                dominant, decided, ..
            } => {
                assert_eq!(dominant, 1);
                assert_eq!(decided, Some(0));
            }
            other => panic!("expected Lu5, got {other:?}"),
        }
    }

    /// LT1 violation: a pair claiming a too-generous C¹ sequence.
    #[derive(Clone, Debug)]
    struct OverpromisingPair {
        inner: FrequencyPair,
    }

    impl LegalityPair<u64> for OverpromisingPair {
        fn name(&self) -> &'static str {
            "overpromise"
        }
        fn t(&self) -> usize {
            LegalityPair::<u64>::t(&self.inner)
        }
        fn p1(&self, view: &View<u64>) -> bool {
            LegalityPair::<u64>::p1(&self.inner, view)
        }
        fn p2(&self, view: &View<u64>) -> bool {
            LegalityPair::<u64>::p2(&self.inner, view)
        }
        fn decide(&self, view: &View<u64>) -> Option<u64> {
            LegalityPair::<u64>::decide(&self.inner, view)
        }
        fn in_c1(&self, input: &InputVector<u64>, _k: usize) -> bool {
            // Claims one-step termination for margin > 2t — too generous.
            input.to_view().frequency_margin() > 2 * self.t()
        }
        fn in_c2(&self, input: &InputVector<u64>, k: usize) -> bool {
            self.inner.in_c2(input, k)
        }
    }

    #[test]
    fn checker_catches_overpromising_c1() {
        let broken = OverpromisingPair {
            inner: FrequencyPair::new(SystemConfig::new(7, 1).unwrap()).unwrap(),
        };
        let err = check_lt1(&broken, 7, &[0u64, 1]).unwrap_err();
        assert!(matches!(err, LegalityViolation::Lt1 { .. }));
    }
}
