//! Adaptive condition sequences (§2.3).

use crate::condition::Condition;
use dex_types::{InputVector, Value};

/// A condition sequence `(C_0, C_1, …, C_t)` with `C_k ⊇ C_{k+1}` (§2.3).
///
/// The `k`-th condition is the set of input vectors for which the expedited
/// decision is guaranteed when the *actual* number of faults is `k`. The
/// containment requirement formalises adaptiveness: fewer faults admit more
/// inputs.
///
/// This type is a generic container over any [`Condition`] family; the pairs
/// in this crate build their sequences on the fly (e.g.
/// [`crate::FrequencyPair::c1`]), but the explicit sequence form is useful
/// for testing monotonicity and for exploring custom pairs.
///
/// # Examples
///
/// ```
/// use dex_conditions::{ConditionSequence, FrequencyCondition};
///
/// // The one-step sequence of P_freq for t = 2: d = 8, 10, 12.
/// let seq = ConditionSequence::new((0..=2).map(|k| FrequencyCondition::new(8 + 2 * k)));
/// assert_eq!(seq.t(), 2);
/// assert_eq!(seq.condition(1).d(), 10);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConditionSequence<C> {
    conditions: Vec<C>,
}

impl<C> ConditionSequence<C> {
    /// Builds a sequence from conditions `C_0 … C_t` in order.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty: a sequence must define at least
    /// `C_0`.
    pub fn new<I: IntoIterator<Item = C>>(conditions: I) -> Self {
        let conditions: Vec<C> = conditions.into_iter().collect();
        assert!(
            !conditions.is_empty(),
            "a condition sequence needs at least C_0"
        );
        ConditionSequence { conditions }
    }

    /// The failure bound `t` (sequence length minus one).
    pub fn t(&self) -> usize {
        self.conditions.len() - 1
    }

    /// The condition `C_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > t`.
    pub fn condition(&self, k: usize) -> &C {
        &self.conditions[k]
    }

    /// Iterates over `(k, C_k)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &C)> {
        self.conditions.iter().enumerate()
    }
}

impl<C> ConditionSequence<C> {
    /// Checks `I ∈ C_k` for a concrete input.
    pub fn contains<V>(&self, input: &InputVector<V>, k: usize) -> bool
    where
        V: Value,
        C: Condition<V>,
    {
        self.condition(k).contains(input)
    }

    /// Verifies the adaptiveness requirement `C_k ⊇ C_{k+1}` on a sample of
    /// inputs: no sampled input may be in `C_{k+1}` but outside `C_k`.
    ///
    /// Returns the first violation `(k, input_index)` if any.
    pub fn check_monotone_on<V>(&self, samples: &[InputVector<V>]) -> Result<(), (usize, usize)>
    where
        V: Value,
        C: Condition<V>,
    {
        for k in 0..self.t() {
            for (idx, input) in samples.iter().enumerate() {
                if self.contains(input, k + 1) && !self.contains(input, k) {
                    return Err((k, idx));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyCondition, PrivilegedCondition};

    #[test]
    #[should_panic(expected = "at least C_0")]
    fn empty_sequence_panics() {
        let _ = ConditionSequence::<FrequencyCondition>::new(std::iter::empty());
    }

    #[test]
    fn indexing_and_t() {
        let seq = ConditionSequence::new(vec![
            FrequencyCondition::new(4),
            FrequencyCondition::new(6),
            FrequencyCondition::new(8),
        ]);
        assert_eq!(seq.t(), 2);
        assert_eq!(seq.condition(0).d(), 4);
        assert_eq!(seq.condition(2).d(), 8);
        assert_eq!(seq.iter().count(), 3);
    }

    #[test]
    fn freq_sequences_are_monotone() {
        let seq = ConditionSequence::new((0..=2).map(|k| FrequencyCondition::new(4 + 2 * k)));
        let samples: Vec<InputVector<u64>> = (0..=9)
            .map(|ones| {
                let mut v = vec![1u64; ones];
                v.extend(vec![0u64; 9 - ones]);
                InputVector::new(v)
            })
            .collect();
        seq.check_monotone_on(&samples).unwrap();
    }

    #[test]
    fn prv_sequences_are_monotone() {
        let seq = ConditionSequence::new((0..=2).map(|k| PrivilegedCondition::new(1u64, 4 + k)));
        let samples: Vec<InputVector<u64>> = (0..=9)
            .map(|ones| {
                let mut v = vec![1u64; ones];
                v.extend(vec![0u64; 9 - ones]);
                InputVector::new(v)
            })
            .collect();
        seq.check_monotone_on(&samples).unwrap();
    }

    #[test]
    fn monotonicity_violation_is_reported() {
        // A deliberately backwards sequence: C_0 ⊂ C_1.
        let seq =
            ConditionSequence::new(vec![FrequencyCondition::new(8), FrequencyCondition::new(2)]);
        let samples = vec![InputVector::new(vec![1u64, 1, 1, 1, 1, 0, 0, 0, 0])];
        // margin = 1: in C_1 (d=2? no, margin 1 ≤ 2)... use margin 4 sample:
        let samples2 = vec![InputVector::new(vec![1u64, 1, 1, 1, 1, 1, 0, 0])];
        // margin = 6 - 2 = 4 > 2 (in C_1) but 4 ≤ 8 (not in C_0).
        assert!(seq.check_monotone_on(&samples).is_ok() || samples.is_empty());
        assert_eq!(seq.check_monotone_on(&samples2), Err((0, 0)));
    }
}
