//! The frequency-based condition and condition-sequence pair (§3.3).

use crate::condition::Condition;
use crate::error::PairError;
use crate::pair::LegalityPair;
use dex_types::{InputVector, SystemConfig, Value, View};

/// The frequency-based condition `C^freq_d` (§3.3):
///
/// ```text
/// C^freq_d = { I ∈ V^n | #_{1st(I)}(I) − #_{2nd(I)}(I) > d }
/// ```
///
/// i.e. the most frequent value beats the runner-up by a margin larger than
/// `d`. `C^freq_d` is a *d-legal* condition \[10\].
///
/// # Examples
///
/// ```
/// use dex_conditions::{Condition, FrequencyCondition};
/// use dex_types::InputVector;
///
/// let c = FrequencyCondition::new(2);
/// assert!(c.contains(&InputVector::new(vec![1u64, 1, 1, 1, 1, 2, 2])));  // 5-2 = 3 > 2
/// assert!(!c.contains(&InputVector::new(vec![1u64, 1, 1, 1, 2, 2, 2]))); // 4-3 = 1 ≤ 2
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FrequencyCondition {
    d: usize,
}

impl FrequencyCondition {
    /// Creates `C^freq_d`.
    pub const fn new(d: usize) -> Self {
        FrequencyCondition { d }
    }

    /// The margin parameter `d`.
    pub const fn d(&self) -> usize {
        self.d
    }
}

impl<V: Value> Condition<V> for FrequencyCondition {
    fn contains(&self, input: &InputVector<V>) -> bool {
        input.to_view().frequency_margin() > self.d
    }

    fn describe(&self) -> String {
        format!("C^freq_{}", self.d)
    }
}

/// The frequency-based legal condition-sequence pair `P_freq` (§3.3):
///
/// * `C¹_k = C^freq_{4t+2k}` — one-step sequence,
/// * `C²_k = C^freq_{2t+2k}` — two-step sequence,
/// * `P1(J) ≡ #_{1st(J)}(J) − #_{2nd(J)}(J) > 4t`,
/// * `P2(J) ≡ #_{1st(J)}(J) − #_{2nd(J)}(J) > 2t`,
/// * `F(J) = 1st(J)`.
///
/// Legal by Theorem 1; requires `n > 6t` to be meaningful (the one-step
/// margin `4t + 2k` must fit into a view of `n − t` known entries).
///
/// # Examples
///
/// ```
/// use dex_conditions::{FrequencyPair, LegalityPair};
/// use dex_types::{InputVector, SystemConfig};
///
/// let pair = FrequencyPair::new(SystemConfig::new(13, 2)?)?;
/// let input = InputVector::new(vec![5u64; 13]);
/// // Unanimous input is in C¹_k for every k ≤ t (margin 13 > 4t + 2k = 8 + 2k).
/// assert!(pair.in_c1(&input, 0));
/// assert!(pair.in_c1(&input, 2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrequencyPair {
    config: SystemConfig,
}

impl FrequencyPair {
    /// Creates the pair for a given system configuration.
    ///
    /// # Errors
    ///
    /// [`PairError::InsufficientResilience`] unless `n > 6t` (§3.3: "the
    /// stronger assumption n > 6t is required to construct `P_freq`").
    pub fn new(config: SystemConfig) -> Result<Self, PairError> {
        if !config.supports_frequency_pair() {
            return Err(PairError::InsufficientResilience {
                config,
                required_n: 6 * config.t() + 1,
                pair: "FrequencyPair",
            });
        }
        Ok(FrequencyPair { config })
    }

    /// The configuration this pair was built for.
    pub const fn config(&self) -> SystemConfig {
        self.config
    }

    /// The one-step condition `C¹_k = C^freq_{4t+2k}`.
    pub fn c1(&self, k: usize) -> FrequencyCondition {
        FrequencyCondition::new(4 * self.config.t() + 2 * k)
    }

    /// The two-step condition `C²_k = C^freq_{2t+2k}`.
    pub fn c2(&self, k: usize) -> FrequencyCondition {
        FrequencyCondition::new(2 * self.config.t() + 2 * k)
    }
}

impl<V: Value> LegalityPair<V> for FrequencyPair {
    fn name(&self) -> &'static str {
        "freq"
    }

    fn t(&self) -> usize {
        self.config.t()
    }

    fn p1(&self, view: &View<V>) -> bool {
        view.frequency_margin() > 4 * self.config.t()
    }

    fn p2(&self, view: &View<V>) -> bool {
        view.frequency_margin() > 2 * self.config.t()
    }

    // Adding one non-⊥ entry increments a single occurrence count, so the
    // frequency margin rises by at most 1 per insertion: at least
    // (threshold + 1) − margin further entries are needed before P1/P2 can
    // flip.
    fn p1_deficit(&self, view: &View<V>) -> usize {
        (4 * self.config.t() + 1).saturating_sub(view.frequency_margin())
    }

    fn p2_deficit(&self, view: &View<V>) -> usize {
        (2 * self.config.t() + 1).saturating_sub(view.frequency_margin())
    }

    fn decide(&self, view: &View<V>) -> Option<V> {
        view.first().cloned()
    }

    fn in_c1(&self, input: &InputVector<V>, k: usize) -> bool {
        self.c1(k).contains(input)
    }

    fn in_c2(&self, input: &InputVector<V>, k: usize) -> bool {
        self.c2(k).contains(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(n: usize, t: usize) -> FrequencyPair {
        FrequencyPair::new(SystemConfig::new(n, t).unwrap()).unwrap()
    }

    #[test]
    fn rejects_insufficient_resilience() {
        // n = 6t is not enough.
        let cfg = SystemConfig::new(12, 2).unwrap();
        assert!(matches!(
            FrequencyPair::new(cfg),
            Err(PairError::InsufficientResilience { required_n: 13, .. })
        ));
        // n = 6t + 1 is the minimum.
        assert!(FrequencyPair::new(SystemConfig::new(13, 2).unwrap()).is_ok());
    }

    #[test]
    fn condition_thresholds_follow_definition() {
        let p = pair(13, 2);
        assert_eq!(p.c1(0).d(), 8);
        assert_eq!(p.c1(2).d(), 12);
        assert_eq!(p.c2(0).d(), 4);
        assert_eq!(p.c2(2).d(), 8);
    }

    #[test]
    fn sequences_are_monotone_decreasing() {
        // C_k ⊇ C_{k+1}: a larger d means fewer inputs.
        let p = pair(13, 2);
        let borderline = InputVector::new(vec![1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2]);
        // margin = 10 - 3 = 7: in C²_0 (d=4) and C²_1 (d=6) but not C²_2 (d=8).
        assert!(p.in_c2(&borderline, 0));
        assert!(p.in_c2(&borderline, 1));
        assert!(!p.in_c2(&borderline, 2));
        // Never in any C¹_k (7 ≤ 8).
        assert!(!p.in_c1(&borderline, 0));
    }

    #[test]
    fn p1_implies_p2() {
        // 4t > 2t, so P1 is strictly stronger.
        let p = pair(7, 1);
        let mut view = InputVector::unanimous(7, 1u64).to_view();
        assert!(LegalityPair::<u64>::p1(&p, &view));
        assert!(LegalityPair::<u64>::p2(&p, &view));
        // Drop margin to 3: P2 holds (3 > 2) but P1 fails (3 ≤ 4).
        view.set(dex_types::ProcessId::new(0), 2);
        view.set(dex_types::ProcessId::new(1), 2);
        assert_eq!(view.frequency_margin(), 3);
        assert!(!LegalityPair::<u64>::p1(&p, &view));
        assert!(LegalityPair::<u64>::p2(&p, &view));
    }

    #[test]
    fn decide_is_first_value() {
        let p = pair(7, 1);
        let view = InputVector::new(vec![4u64, 4, 4, 9, 9, 9, 9]).to_view();
        assert_eq!(LegalityPair::<u64>::decide(&p, &view), Some(9));
        let empty = View::<u64>::bottom(7);
        assert_eq!(LegalityPair::<u64>::decide(&p, &empty), None);
    }

    #[test]
    fn p_predicates_on_partial_views() {
        let p = pair(7, 1);
        // View with one ⊥ and margin exactly 4t+1 = 5.
        let view = View::from_options(vec![
            Some(1u64),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            None,
        ]);
        assert_eq!(view.frequency_margin(), 6);
        assert!(LegalityPair::<u64>::p1(&p, &view));
    }

    #[test]
    fn describe_names_condition() {
        let c = FrequencyCondition::new(4);
        assert_eq!(Condition::<u64>::describe(&c), "C^freq_4");
    }

    #[test]
    fn unanimous_inputs_always_in_c1_when_margin_fits() {
        // n = 6t+1: unanimous margin n = 6t+1 > 4t + 2k ⟺ 2t + 1 > 2k ⟺ k ≤ t.
        for t in 1..4 {
            let n = 6 * t + 1;
            let p = pair(n, t);
            let unanimous = InputVector::unanimous(n, 42u64);
            for k in 0..=t {
                assert!(p.in_c1(&unanimous, k), "t={t}, k={k}");
            }
        }
    }
}
