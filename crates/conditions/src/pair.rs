//! The `LegalityPair` abstraction: `(S¹, S²)` with `P1`, `P2`, `F` (§3.2).

use dex_types::{InputVector, Value, View};

/// A condition-sequence pair `(S¹, S²)` together with the predicates `P1`,
/// `P2` and decision function `F` that witness its legality (§3.2).
///
/// `S¹ = (C¹_0, …, C¹_t)` characterises one-step decisions and
/// `S² = (C²_0, …, C²_t)` two-step decisions. The five legality criteria
/// relate the pieces:
///
/// * **LT1** `∀k ≤ t, ∀J ∈ V^n_k : (∃I ∈ C¹_k, dist(J, I) ≤ k) ⇒ P1(J)`
/// * **LT2** likewise for `C²_k` / `P2`
/// * **LA3** `P1(J) ∧ (∃I ≥ J, I' ≥ J', dist(I, I') ≤ t) ⇒ F(J) = F(J')`
/// * **LA4** `P2(J) ∧ (∃I ≥ J, I ≥ J') ⇒ F(J) = F(J')`
/// * **LU5** a unique value occurring more than `t` times is decided
///
/// Implementations **must** uphold these criteria — Algorithm DEX's safety
/// (Lemmas 2–5) depends on them. Both provided implementations are verified
/// exhaustively in [`crate::verify`].
///
/// The trait is object-safe so the harness can treat pairs uniformly.
pub trait LegalityPair<V: Value>: Send + Sync {
    /// A short name for reports, e.g. `"freq"` or `"prv"`.
    fn name(&self) -> &'static str;

    /// The failure bound `t` this pair was configured with.
    fn t(&self) -> usize;

    /// The predicate `P1`: does view `J` contain sufficient information for a
    /// **one-step** decision?
    fn p1(&self, view: &View<V>) -> bool;

    /// The predicate `P2`: does view `J` contain sufficient information for a
    /// **two-step** decision?
    fn p2(&self, view: &View<V>) -> bool;

    /// Assuming `P1(view)` is false, a lower bound on how many *additional*
    /// non-`⊥` entries must be added to `view` before `P1` can possibly
    /// become true. Used by [`crate::DecisionGate`] to skip re-evaluating
    /// `P1` while the view cannot have changed enough to flip it.
    ///
    /// Must be ≥ 1 when `P1(view)` is false, and must stay a valid lower
    /// bound for *grow-only* views (entries are added, never changed or
    /// cleared). The default is the always-sound bound 1 (re-test after
    /// every insertion).
    fn p1_deficit(&self, _view: &View<V>) -> usize {
        1
    }

    /// The [`Self::p1_deficit`] analogue for `P2`.
    fn p2_deficit(&self, _view: &View<V>) -> usize {
        1
    }

    /// The decision function `F`. Returns `None` only for the all-`⊥` view,
    /// which never occurs in the algorithm (views are only evaluated once
    /// `|J| ≥ n − t ≥ 1`).
    fn decide(&self, view: &View<V>) -> Option<V>;

    /// Membership test `I ∈ C¹_k` — the condition valid when the actual
    /// number of failures is `k` (one-step sequence).
    fn in_c1(&self, input: &InputVector<V>, k: usize) -> bool;

    /// Membership test `I ∈ C²_k` (two-step sequence).
    fn in_c2(&self, input: &InputVector<V>, k: usize) -> bool;
}

impl<V: Value, P: LegalityPair<V> + ?Sized> LegalityPair<V> for &P {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn t(&self) -> usize {
        (**self).t()
    }
    fn p1(&self, view: &View<V>) -> bool {
        (**self).p1(view)
    }
    fn p2(&self, view: &View<V>) -> bool {
        (**self).p2(view)
    }
    fn p1_deficit(&self, view: &View<V>) -> usize {
        (**self).p1_deficit(view)
    }
    fn p2_deficit(&self, view: &View<V>) -> usize {
        (**self).p2_deficit(view)
    }
    fn decide(&self, view: &View<V>) -> Option<V> {
        (**self).decide(view)
    }
    fn in_c1(&self, input: &InputVector<V>, k: usize) -> bool {
        (**self).in_c1(input, k)
    }
    fn in_c2(&self, input: &InputVector<V>, k: usize) -> bool {
        (**self).in_c2(input, k)
    }
}

impl<V: Value, P: LegalityPair<V> + ?Sized> LegalityPair<V> for std::sync::Arc<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn t(&self) -> usize {
        (**self).t()
    }
    fn p1(&self, view: &View<V>) -> bool {
        (**self).p1(view)
    }
    fn p2(&self, view: &View<V>) -> bool {
        (**self).p2(view)
    }
    fn p1_deficit(&self, view: &View<V>) -> usize {
        (**self).p1_deficit(view)
    }
    fn p2_deficit(&self, view: &View<V>) -> usize {
        (**self).p2_deficit(view)
    }
    fn decide(&self, view: &View<V>) -> Option<V> {
        (**self).decide(view)
    }
    fn in_c1(&self, input: &InputVector<V>, k: usize) -> bool {
        (**self).in_c1(input, k)
    }
    fn in_c2(&self, input: &InputVector<V>, k: usize) -> bool {
        (**self).in_c2(input, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyPair;
    use dex_types::SystemConfig;
    use std::sync::Arc;

    #[test]
    fn trait_is_object_safe() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let pair: Box<dyn LegalityPair<u64>> = Box::new(FrequencyPair::new(cfg).unwrap());
        assert_eq!(pair.name(), "freq");
        assert_eq!(pair.t(), 1);
    }

    #[test]
    fn references_and_arcs_delegate() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let pair = FrequencyPair::new(cfg).unwrap();
        let view = InputVector::unanimous(7, 3u64).to_view();

        let by_ref: &FrequencyPair = &pair;
        assert!(LegalityPair::<u64>::p1(&by_ref, &view));

        let by_arc = Arc::new(FrequencyPair::new(cfg).unwrap());
        assert!(LegalityPair::<u64>::p1(&by_arc, &view));
        assert_eq!(LegalityPair::<u64>::decide(&by_arc, &view), Some(3));
    }
}
