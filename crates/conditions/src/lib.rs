//! The condition-based machinery of the DEX paper (§2.3, §3).
//!
//! The *condition-based approach* designates a set of input vectors — a
//! **condition** — for which a consensus algorithm guarantees an expedited
//! decision. The paper's innovation is twofold:
//!
//! 1. **Adaptiveness** — instead of one condition, a *condition sequence*
//!    `(C_0 ⊇ C_1 ⊇ … ⊇ C_t)`, where `C_k` applies when the *actual* number
//!    of failures is `k`. Fewer failures ⇒ more inputs decide fast.
//! 2. **Double expedition** — a *pair* of condition sequences `(S¹, S²)`
//!    driving a one-step and a two-step decision scheme concurrently.
//!
//! A pair is **legal** (§3.2) when predicates `P1`, `P2` and a decision
//! function `F` exist satisfying the five criteria LT1, LT2, LA3, LA4, LU5.
//! The paper exhibits two legal pairs, both provided here:
//!
//! * [`FrequencyPair`] (§3.3, Theorem 1): `C¹_k = C^freq_{4t+2k}`,
//!   `C²_k = C^freq_{2t+2k}` — needs `n > 6t`.
//! * [`PrivilegedPair`] (§3.4, Theorem 2): `C¹_k = C^prv(m)_{3t+k}`,
//!   `C²_k = C^prv(m)_{2t+k}` — needs `n > 5t`.
//!
//! The [`verify`] module machine-checks the theorems by exhaustively
//! enumerating small instances and testing every legality criterion — a
//! model-checking companion to the paper's hand proofs.
//!
//! # Examples
//!
//! ```
//! use dex_conditions::{FrequencyPair, LegalityPair};
//! use dex_types::{InputVector, SystemConfig, View};
//!
//! let cfg = SystemConfig::new(7, 1)?; // n = 6t + 1
//! let pair = FrequencyPair::new(cfg)?;
//!
//! // A unanimous view passes the one-step predicate (margin 7 > 4t = 4)…
//! let unanimous = InputVector::unanimous(7, 1u64).to_view();
//! assert!(pair.p1(&unanimous));
//! assert_eq!(pair.decide(&unanimous), Some(1));
//!
//! // …while a 5-vs-2 split only passes the two-step predicate (margin 3 > 2t = 2).
//! let split = InputVector::new(vec![1u64, 1, 1, 1, 1, 9, 9]).to_view();
//! assert!(!pair.p1(&split));
//! assert!(pair.p2(&split));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod condition;
mod error;
mod frequency;
mod gate;
mod generic;
mod pair;
mod privileged;
mod sequence;
pub mod verify;

pub use condition::{check_d_legality, Condition, DLegalityViolation};
pub use error::PairError;
pub use frequency::{FrequencyCondition, FrequencyPair};
pub use gate::DecisionGate;
pub use generic::{ConditionFamily, FamilyPair};
pub use pair::LegalityPair;
pub use privileged::{PrivilegedCondition, PrivilegedPair};
pub use sequence::ConditionSequence;
