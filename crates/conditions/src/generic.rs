//! Building new condition-sequence pairs from arbitrary d-legal condition
//! families.
//!
//! Theorem 3 quantifies over *any* legal pair, not just the two examples of
//! §3.3/§3.4. This module provides the scaffolding to define new pairs:
//!
//! 1. implement [`ConditionFamily`] — a `d`-indexed family of conditions
//!    `C_d` with a membership *score* (the family is `{I | score(I) > d}`),
//!    plus the predicates/decision function shape;
//! 2. wrap it in [`FamilyPair`] with one-step/two-step threshold functions
//!    `d¹(t, k)` and `d²(t, k)`;
//! 3. machine-check legality with [`crate::verify::check_legality`] before
//!    trusting it — the checker exists precisely so new pairs don't rely on
//!    hand-waving.
//!
//! The paper's two pairs are expressible in this scheme (score = frequency
//! margin with thresholds `4t + 2k` / `2t + 2k`; score = `#m` with
//! thresholds `3t + k` / `2t + k`), and `examples/custom_pair.rs` walks
//! through defining and verifying a brand-new one.

use crate::pair::LegalityPair;
use dex_types::{InputVector, SystemConfig, Value, View};

/// A `d`-indexed condition family `C_d = { I | score(I) > d }` together
/// with the decision function used when the family's predicate holds.
///
/// The score must be **monotone under entry removal in a bounded way** for
/// the resulting pair to stand a chance of being legal; the legality
/// checker is the arbiter either way.
pub trait ConditionFamily<V: Value>: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The membership score of a complete input vector (`I ∈ C_d ⇔
    /// score(I) > d`).
    fn score_input(&self, input: &InputVector<V>) -> usize;

    /// The score of a (possibly partial) view, used by the predicates.
    fn score_view(&self, view: &View<V>) -> usize;

    /// The decision function `F` (must satisfy LU5 for the pair to be
    /// legal). `None` only on the all-`⊥` view.
    fn decide(&self, view: &View<V>) -> Option<V>;
}

/// A legality-pair built from a [`ConditionFamily`] and two threshold
/// functions:
///
/// * `C¹_k = C_{d1(t, k)}`, `P1(J) ≡ score(J) > d1(t, 0) = d1_base`,
/// * `C²_k = C_{d2(t, k)}`, `P2(J) ≡ score(J) > d2_base`.
///
/// Thresholds are affine in `k`: `d(t, k) = base(t) + slope · k`, matching
/// the shape of both published pairs.
pub struct FamilyPair<F> {
    config: SystemConfig,
    family: F,
    d1_base: usize,
    d1_slope: usize,
    d2_base: usize,
    d2_slope: usize,
}

impl<F> FamilyPair<F> {
    /// Creates the pair. `d1_base`/`d2_base` are the `k = 0` thresholds
    /// (also used as the view predicates); the slopes scale with the fault
    /// count `k`.
    pub fn new(
        config: SystemConfig,
        family: F,
        d1_base: usize,
        d1_slope: usize,
        d2_base: usize,
        d2_slope: usize,
    ) -> Self {
        FamilyPair {
            config,
            family,
            d1_base,
            d1_slope,
            d2_base,
            d2_slope,
        }
    }

    /// The configuration this pair was built for.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// The wrapped family.
    pub fn family(&self) -> &F {
        &self.family
    }
}

impl<V: Value, F: ConditionFamily<V>> LegalityPair<V> for FamilyPair<F> {
    fn name(&self) -> &'static str {
        self.family.name()
    }

    fn t(&self) -> usize {
        self.config.t()
    }

    fn p1(&self, view: &View<V>) -> bool {
        self.family.score_view(view) > self.d1_base
    }

    fn p2(&self, view: &View<V>) -> bool {
        self.family.score_view(view) > self.d2_base
    }

    fn decide(&self, view: &View<V>) -> Option<V> {
        self.family.decide(view)
    }

    fn in_c1(&self, input: &InputVector<V>, k: usize) -> bool {
        self.family.score_input(input) > self.d1_base + self.d1_slope * k
    }

    fn in_c2(&self, input: &InputVector<V>, k: usize) -> bool {
        self.family.score_input(input) > self.d2_base + self.d2_slope * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    /// The frequency family expressed through the generic scaffolding.
    struct FreqFamily;

    impl ConditionFamily<u64> for FreqFamily {
        fn name(&self) -> &'static str {
            "freq-generic"
        }
        fn score_input(&self, input: &InputVector<u64>) -> usize {
            input.to_view().frequency_margin()
        }
        fn score_view(&self, view: &View<u64>) -> usize {
            view.frequency_margin()
        }
        fn decide(&self, view: &View<u64>) -> Option<u64> {
            view.first().copied()
        }
    }

    #[test]
    fn generic_frequency_pair_reproduces_theorem1() {
        // d¹ = 4t + 2k, d² = 2t + 2k for n = 7, t = 1.
        let cfg = SystemConfig::new(7, 1).unwrap();
        let pair = FamilyPair::new(cfg, FreqFamily, 4, 2, 2, 2);
        verify::check_legality(&pair, 7, &[0u64, 1])
            .expect("the generic wrapping of P_freq must be legal");
    }

    #[test]
    fn weakened_thresholds_are_caught_by_the_checker() {
        // d¹ = 2t: the one-step predicate is too permissive; LA3 breaks.
        let cfg = SystemConfig::new(7, 1).unwrap();
        let pair = FamilyPair::new(cfg, FreqFamily, 2, 2, 2, 2);
        assert!(verify::check_legality(&pair, 7, &[0u64, 1]).is_err());
    }

    #[test]
    fn membership_uses_affine_thresholds() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let pair = FamilyPair::new(cfg, FreqFamily, 4, 2, 2, 2);
        // margin 5: in C¹_0 (5 > 4) but not C¹_1 (5 ≤ 6).
        let input = InputVector::new(vec![1u64, 1, 1, 1, 1, 1, 0]);
        assert!(pair.in_c1(&input, 0));
        assert!(!pair.in_c1(&input, 1));
        assert!(pair.in_c2(&input, 1)); // 5 > 4
    }
}
