//! Loopback listener with `SO_REUSEADDR`.
//!
//! The kill-9 schedule respawns a child that must rebind the port its
//! previous incarnation owned. Connections accepted on a listening port
//! share that port as their local endpoint, and whichever side closes
//! first leaves a kernel `TIME_WAIT` entry that survives the process —
//! so a plain `TcpListener::bind` by the respawned child can fail with
//! `EADDRINUSE` for a minute. `SO_REUSEADDR` is the standard fix, but the
//! standard library does not expose it, so on Linux the socket is built
//! through a minimal `libc`-free FFI shim (the workspace vendors no libc
//! crate) and handed to [`TcpListener`] as a raw fd. Everywhere else the
//! plain bind is used and a fast respawn may have to retry.

use std::io;
use std::net::TcpListener;

/// Binds `127.0.0.1:port` for listening, with `SO_REUSEADDR` where the
/// platform shim supports it.
pub fn bind_reusable(port: u16) -> io::Result<TcpListener> {
    bind_reusable_on(port, true)
}

/// Binds `port` for listening on either the loopback interface
/// (`loopback = true`, the single-host default) or all interfaces
/// (`0.0.0.0`, required when an explicit address table spans hosts),
/// with `SO_REUSEADDR` where the platform shim supports it.
pub fn bind_reusable_on(port: u16, loopback: bool) -> io::Result<TcpListener> {
    let ip: [u8; 4] = if loopback {
        [127, 0, 0, 1]
    } else {
        [0, 0, 0, 0]
    };
    #[cfg(target_os = "linux")]
    {
        linux::bind_reuseaddr(port, ip)
    }
    #[cfg(not(target_os = "linux"))]
    {
        TcpListener::bind((std::net::Ipv4Addr::from(ip), port))
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::TcpListener;
    use std::os::fd::{FromRawFd, RawFd};

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    /// Close-on-exec at creation, so cluster children never inherit each
    /// other's listening sockets through `Command::spawn`.
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// `struct sockaddr_in` (fields in network byte order where the ABI
    /// says so).
    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn last_error(fd: Option<RawFd>) -> io::Error {
        let err = io::Error::last_os_error();
        if let Some(fd) = fd {
            // SAFETY: `fd` came from a successful `socket` call above and
            // has not been handed to any owning wrapper yet.
            unsafe { close(fd) };
        }
        err
    }

    pub fn bind_reuseaddr(port: u16, ip: [u8; 4]) -> io::Result<TcpListener> {
        // SAFETY: plain syscall wrappers on owned values; the fd's
        // ownership moves linearly from `socket` either into
        // `TcpListener::from_raw_fd` or into `close` on the error paths.
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(last_error(None));
            }
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0 {
                return Err(last_error(Some(fd)));
            }
            let addr = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: port.to_be(),
                sin_addr: u32::from_be_bytes(ip).to_be(),
                sin_zero: [0; 8],
            };
            if bind(fd, &addr, core::mem::size_of::<SockAddrIn>() as u32) < 0 {
                return Err(last_error(Some(fd)));
            }
            if listen(fd, 128) < 0 {
                return Err(last_error(Some(fd)));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn test_port() -> u16 {
        // Processes running the suite concurrently must not collide.
        20000 + (std::process::id() % 20000) as u16
    }

    #[test]
    fn rebinding_after_drop_succeeds_immediately() {
        let port = test_port();
        let first = bind_reusable(port).expect("first bind");
        // Open (and abruptly drop) a connection so the port has seen
        // traffic — the TIME_WAIT scenario a respawned child faces.
        let client = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        let (mut accepted, _) = first.accept().expect("accept");
        accepted.write_all(b"x").expect("write");
        drop(accepted);
        let mut byte = [0u8; 1];
        let _ = client.try_clone().and_then(|mut c| c.read(&mut byte));
        drop(client);
        drop(first);
        let again = bind_reusable(port).expect("rebind with SO_REUSEADDR");
        assert_eq!(
            again.local_addr().expect("addr").port(),
            port,
            "same port reacquired"
        );
    }
}
