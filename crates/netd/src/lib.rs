//! `dex-netd` — the real-deployment runtime: one OS process per
//! consensus participant, localhost TCP between them.
//!
//! The third point on the repo's runtime spectrum, selected through the
//! unified [`RuntimeSpec`](dex_harness::spec::RuntimeSpec) surface:
//!
//! | runtime       | processes      | transport          | clock        |
//! |---------------|----------------|--------------------|--------------|
//! | `simnet`      | one, simulated | in-memory queue    | virtual      |
//! | `threadnet`   | OS threads     | crossbeam channels | wall (µs)    |
//! | **`netd`**    | **OS processes** | **TCP + wire codec** | wall (µs) |
//!
//! The same [`Actor`](dex_simnet::Actor) implementations run on all
//! three; netd adds what a real deployment adds — serialization
//! ([`codec`]), framing with torn-tail tolerance ([`frame`]), connection
//! management with reconnect/backoff/buffering ([`conn`]) — and what a
//! real deployment threatens: the cluster harness ([`cluster`]) kills a
//! child with an actual `SIGKILL` and requires the respawned process to
//! recover through its [`FileWal`](dex_replication::FileWal) and the
//! catch-up protocol. No async runtime is involved; the event loop
//! ([`endpoint`]) and the per-peer writers are plain blocking threads,
//! because the workspace vendors its dependencies and tokio is not one
//! of them.

#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod codec;
pub mod conn;
pub mod endpoint;
pub mod frame;
pub mod listener;

pub use chaos::{ChaosRuntime, TearPoint, Verdict};
pub use cluster::{run_cluster, ClusterOpts, Phase};
pub use codec::WireCodec;
pub use conn::Mesh;
pub use endpoint::Endpoint;
pub use frame::{FrameBuf, FrameError, MAX_FRAME};
