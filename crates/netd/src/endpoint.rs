//! The per-process event loop: one [`Actor`] plugged onto a [`Mesh`].
//!
//! This is the netd counterpart of a `dex-threadnet` worker thread, with
//! TCP in place of crossbeam channels. The contract is identical —
//! simulator actors run unmodified:
//!
//! * deliveries construct a [`Context`] at the frame's causal depth and
//!   the current wall clock (virtual units = microseconds, as in
//!   threadnet);
//! * outbox/outbox-at/timer buffers are drained after every handler;
//! * timers live in a local wall-clock list, never on the wire;
//! * the wire ledger is kept through the shared [`NetStats`] hooks, so
//!   `--stats` breakdowns are comparable across all three runtimes line
//!   for line. A `Dest::All` multicast is encoded **once** and the frame
//!   allocation is shared across peer sockets, so `payload_clones`
//!   honestly reports zero on this runtime.
//!
//! Self-addressed traffic (a multicast's own copy, explicit self-sends)
//! never touches a socket: it loops through a local queue, preserving the
//! simulator's semantics that a process always hears itself.

use crate::chaos::ChaosRuntime;
use crate::codec::WireCodec;
use crate::conn::{Delivery, Mesh};
use crate::frame::{class_byte, encode_frame};
use dex_harness::spec::AddressTable;
use dex_simnet::{Actor, Context, NetStats, Recoverable, Time};
use dex_types::{Dest, ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A timer armed by the local actor.
struct PendingTimer<M> {
    due: Instant,
    depth: StepDepth,
    payload: M,
}

/// One consensus process: actor + mesh + timers + wire ledger.
pub struct Endpoint<A: Actor>
where
    A::Msg: WireCodec + Clone,
{
    actor: A,
    me: ProcessId,
    n: usize,
    mesh: Mesh,
    start: Instant,
    rng: StdRng,
    timers: Vec<PendingTimer<A::Msg>>,
    local: VecDeque<(StepDepth, A::Msg)>,
    wire: NetStats,
    delivered: u64,
    chaos: Option<Arc<ChaosRuntime>>,
    /// Frames whose payload failed to decode (hostile or torn peer).
    pub decode_failures: u64,
}

impl<A: Actor> Endpoint<A>
where
    A::Msg: WireCodec + Clone,
{
    /// Binds the mesh for process `me` of `n` on `port_base` and wraps
    /// `actor` around it. No protocol traffic flows until [`Self::boot`]
    /// or [`Self::boot_restart`].
    pub fn new(
        actor: A,
        me: ProcessId,
        n: usize,
        port_base: u16,
        seed: u64,
    ) -> std::io::Result<Self> {
        Endpoint::with_net(actor, me, AddressTable::localhost(n, port_base), seed, None)
    }

    /// The general form of [`Endpoint::new`]: binds against an explicit
    /// address table (`n = addrs.len()`) and optionally routes all
    /// outbound traffic through a [`ChaosRuntime`]. The chaos runtime is
    /// shared with the mesh: the endpoint consults it only for the local
    /// process's crash-silence windows ([`ChaosRuntime::self_resume_at`]),
    /// the mesh for everything link-level.
    pub fn with_net(
        actor: A,
        me: ProcessId,
        addrs: AddressTable,
        seed: u64,
        chaos: Option<Arc<ChaosRuntime>>,
    ) -> std::io::Result<Self> {
        let n = addrs.len();
        Ok(Endpoint {
            actor,
            me,
            n,
            mesh: Mesh::with_net(me, addrs, chaos.clone())?,
            start: Instant::now(),
            rng: StdRng::seed_from_u64(seed.wrapping_add(me.index() as u64)),
            timers: Vec::new(),
            local: VecDeque::new(),
            wire: NetStats::default(),
            delivered: 0,
            chaos,
            decode_failures: 0,
        })
    }

    /// Runs the actor's `on_start` and flushes its opening traffic.
    pub fn boot(&mut self) {
        let mut ctx =
            Context::external(self.me, self.n, Time::ZERO, StepDepth::ZERO, &mut self.rng);
        self.actor.on_start(&mut ctx);
        let out = ctx.take_outbox();
        let out_at = ctx.take_outbox_at();
        let armed = ctx.take_timers();
        drop(ctx);
        self.flush(out, out_at, armed, StepDepth::ONE);
    }

    /// Boots through the crash-recovery path instead of `on_start`: the
    /// respawned incarnation of a killed process restores durable state
    /// and emits its recovery traffic (WAL-replayed proposals, catch-up
    /// requests).
    pub fn boot_restart(&mut self)
    where
        A: Recoverable,
    {
        let mut ctx =
            Context::external(self.me, self.n, Time::ZERO, StepDepth::ZERO, &mut self.rng);
        self.actor.restart(&mut ctx);
        let out = ctx.take_outbox();
        let out_at = ctx.take_outbox_at();
        let armed = ctx.take_timers();
        drop(ctx);
        self.flush(out, out_at, armed, StepDepth::ONE);
    }

    /// Processes one unit of work — a due timer, a queued self-delivery,
    /// or (waiting up to `idle`) one frame from the mesh. Returns whether
    /// anything was handled.
    pub fn pump(&mut self, idle: Duration) -> bool {
        // A process inside its own crash-silence window is not scheduled:
        // stall (bounded by `idle`) without handling timers, local
        // traffic, or sockets. Inbound frames queue in the mesh channel
        // and flush after recovery — the simulator's deferred in-window
        // delivery, on real sockets.
        if let Some(resume) = self.chaos.as_ref().and_then(|c| c.self_resume_at()) {
            let nap = resume
                .saturating_duration_since(Instant::now())
                .min(idle)
                .max(Duration::from_millis(1));
            thread::sleep(nap);
            return false;
        }
        // Due timers first, earliest first.
        let now = Instant::now();
        let due_idx = self
            .timers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.due <= now)
            .min_by_key(|(_, t)| t.due)
            .map(|(idx, _)| idx);
        if let Some(idx) = due_idx {
            let timer = self.timers.remove(idx);
            self.deliver(self.me, timer.depth, timer.payload);
            return true;
        }
        // Local (self-addressed) traffic next.
        if let Some((depth, msg)) = self.local.pop_front() {
            self.deliver(self.me, depth, msg);
            return true;
        }
        // Then the sockets, but never sleep past the next timer.
        let wait = self
            .timers
            .iter()
            .map(|t| t.due.saturating_duration_since(now))
            .min()
            .unwrap_or(idle)
            .min(idle);
        match self.mesh.recv_timeout(wait) {
            Some(Delivery {
                from,
                depth,
                payload,
                ..
            }) => match A::Msg::from_bytes(&payload) {
                Some(msg) => {
                    self.deliver(from, depth, msg);
                    true
                }
                None => {
                    self.decode_failures += 1;
                    true
                }
            },
            None => false,
        }
    }

    fn deliver(&mut self, from: ProcessId, depth: StepDepth, msg: A::Msg) {
        self.wire.note_delivery(depth);
        self.delivered += 1;
        let now = Time::new(self.start.elapsed().as_micros() as u64);
        let mut ctx = Context::external(self.me, self.n, now, depth, &mut self.rng);
        self.actor.on_message(from, &msg, &mut ctx);
        let out = ctx.take_outbox();
        let out_at = ctx.take_outbox_at();
        let armed = ctx.take_timers();
        drop(ctx);
        self.flush(out, out_at, armed, depth.next());
    }

    fn flush(
        &mut self,
        out: Vec<(Dest, A::Msg)>,
        out_at: Vec<(Dest, A::Msg, StepDepth)>,
        armed: Vec<(u64, A::Msg)>,
        next_depth: StepDepth,
    ) {
        for (dest, payload) in out {
            self.dispatch(dest, payload, next_depth);
        }
        for (dest, payload, depth) in out_at {
            self.dispatch(dest, payload, depth);
        }
        let armed_at = Instant::now();
        for (delay, payload) in armed {
            self.wire.note_timer::<A>(&payload, next_depth);
            self.timers.push(PendingTimer {
                due: armed_at + Duration::from_micros(delay),
                depth: next_depth,
                payload,
            });
        }
    }

    /// Puts one logical send on the wire: ledger once, encode once, share
    /// the frame allocation across the fan-out.
    fn dispatch(&mut self, dest: Dest, payload: A::Msg, depth: StepDepth) {
        self.wire.note_send::<A>(self.n, &dest, &payload, depth, 0);
        match dest {
            Dest::To(to) if to == self.me => {
                self.local.push_back((depth, payload));
            }
            Dest::To(to) => {
                let frame: Arc<[u8]> = encode_frame(
                    class_byte(A::msg_class(&payload)),
                    depth.get(),
                    &payload.to_bytes(),
                )
                .into();
                self.mesh.send(to, frame);
            }
            Dest::All => {
                let frame: Arc<[u8]> = encode_frame(
                    class_byte(A::msg_class(&payload)),
                    depth.get(),
                    &payload.to_bytes(),
                )
                .into();
                for j in 0..self.n {
                    let to = ProcessId::new(j);
                    if to != self.me {
                        self.mesh.send(to, Arc::clone(&frame));
                    }
                }
                self.local.push_back((depth, payload));
            }
        }
    }

    /// The wrapped actor.
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// The wire ledger so far.
    pub fn stats(&self) -> &NetStats {
        &self.wire
    }

    /// Deliveries handled so far (timer firings included).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Microseconds since the endpoint came up.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Live peer connections (diagnostic).
    pub fn connected(&self) -> usize {
        self.mesh.connected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The threadnet doc-example actor, now crossing real sockets.
    struct Counter {
        got: usize,
        armed: bool,
    }

    impl Actor for Counter {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(1);
        }

        fn on_message(&mut self, _from: ProcessId, msg: &u64, ctx: &mut Context<'_, u64>) {
            self.got += 1;
            if *msg == 1 && ctx.me() == ProcessId::new(0) && !self.armed {
                self.armed = true;
                ctx.send_self_after(500, 99); // exercise the timer path
            }
        }
    }

    fn test_port_base() -> u16 {
        28000 + (std::process::id() % 20000) as u16
    }

    #[test]
    fn endpoints_run_a_broadcast_round_over_tcp() {
        let base = test_port_base();
        let n = 3;
        let mut handles = Vec::new();
        for i in 0..n {
            handles.push(std::thread::spawn(move || {
                let mut ep = Endpoint::new(
                    Counter {
                        got: 0,
                        armed: false,
                    },
                    ProcessId::new(i),
                    n,
                    base,
                    7,
                )
                .expect("bind");
                ep.boot();
                let deadline = Instant::now() + Duration::from_secs(10);
                // Everyone hears all three broadcasts (self included);
                // p0 additionally hears its own timer.
                let want = if i == 0 { 4 } else { 3 };
                while ep.actor().got < want && Instant::now() < deadline {
                    ep.pump(Duration::from_millis(20));
                }
                if ep.actor().got < want {
                    eprintln!(
                        "p{i}: got={} connected={} decode_failures={} stats={:?}",
                        ep.actor().got,
                        ep.connected(),
                        ep.decode_failures,
                        ep.stats()
                    );
                }
                (i, ep.actor().got, ep.stats().clone(), ep.delivered())
            }));
        }
        for h in handles {
            let (i, got, stats, delivered) = h.join().expect("endpoint thread");
            let want = if i == 0 { 4 } else { 3 };
            assert_eq!(got, want, "process {i} heard the round");
            assert_eq!(delivered, want as u64);
            // One logical broadcast = one multicast, n recipient copies,
            // zero fan-out clones (the frame allocation is shared).
            assert_eq!(stats.multicasts, 1);
            assert_eq!(stats.payload_clones, 0);
            let timer_sends = if i == 0 { 1 } else { 0 };
            assert_eq!(stats.sent, 3 + timer_sends);
        }
    }
}
