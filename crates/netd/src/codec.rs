//! Binary wire codec for the first-party message types.
//!
//! The simulator and the threaded runtime move messages as Rust values;
//! `dex-netd` has to put them on a TCP socket. [`WireCodec`] is the
//! minimal self-describing binary encoding used for that: fixed-width
//! little-endian integers, one tag byte per enum variant, `u32` length
//! prefixes for sequences. No serde in the dependency tree (vendored-deps
//! constraint), and the format must stay greppable in a hexdump — the
//! same philosophy as the replication crate's line-oriented `FileWal`
//! codec, binary here because consensus traffic is hot-path.
//!
//! [`decode`](WireCodec::decode) consumes from the front of a borrowed
//! slice and returns `None` on any malformation (unknown tag, truncated
//! field, oversized length prefix), never panicking on attacker-supplied
//! bytes: a Byzantine peer can corrupt its own link, not the process.

use dex_broadcast::IdbMessage;
use dex_core::{DexMsg, ReliableMsg};
use dex_replication::{ReplicaMsg, SlotMsg};
use dex_types::ProcessId;
use dex_underlying::OracleMsg;

/// Sanity bound on decoded sequence lengths: no legitimate batch or
/// catch-up reply carries more entries than this, so a forged length
/// prefix fails fast instead of attempting a huge allocation.
const MAX_SEQ: u32 = 1 << 20;

/// A type that can cross the netd wire.
pub trait WireCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes. `None` means malformed input; how much of `input`
    /// was consumed is then unspecified and the frame should be dropped.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// Convenience: the encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must consume `input` exactly.
    fn from_bytes(mut input: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut input)?;
        input.is_empty().then_some(v)
    }
}

fn get_u8(input: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = input.split_first()?;
    *input = rest;
    Some(b)
}

fn get_u32(input: &mut &[u8]) -> Option<u32> {
    if input.len() < 4 {
        return None;
    }
    let (head, rest) = input.split_at(4);
    *input = rest;
    Some(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn get_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn get_seq_len(input: &mut &[u8]) -> Option<usize> {
    let len = get_u32(input)?;
    (len <= MAX_SEQ).then_some(len as usize)
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        get_u64(input)
    }
}

impl WireCodec for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.index() as u32).to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ProcessId::new(get_u32(input)? as usize))
    }
}

impl<V: WireCodec> WireCodec for OracleMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OracleMsg::Propose(v) => {
                out.push(0);
                v.encode(out);
            }
            OracleMsg::Decide(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match get_u8(input)? {
            0 => Some(OracleMsg::Propose(V::decode(input)?)),
            1 => Some(OracleMsg::Decide(V::decode(input)?)),
            _ => None,
        }
    }
}

impl<K: WireCodec, V: WireCodec> WireCodec for IdbMessage<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            IdbMessage::Init { key, value } => {
                out.push(0);
                key.encode(out);
                value.encode(out);
            }
            IdbMessage::Echo { key, value } => {
                out.push(1);
                key.encode(out);
                value.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let tag = get_u8(input)?;
        let key = K::decode(input)?;
        let value = V::decode(input)?;
        match tag {
            0 => Some(IdbMessage::Init { key, value }),
            1 => Some(IdbMessage::Echo { key, value }),
            _ => None,
        }
    }
}

impl<V: WireCodec, U: WireCodec> WireCodec for DexMsg<V, U> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DexMsg::Proposal(v) => {
                out.push(0);
                v.encode(out);
            }
            DexMsg::Idb(m) => {
                out.push(1);
                m.encode(out);
            }
            DexMsg::Uc(u) => {
                out.push(2);
                u.encode(out);
            }
            DexMsg::EchoBatch(entries) => {
                out.push(3);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (origin, value) in entries {
                    origin.encode(out);
                    value.encode(out);
                }
            }
            DexMsg::EchoFlushTick => out.push(4),
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match get_u8(input)? {
            0 => Some(DexMsg::Proposal(V::decode(input)?)),
            1 => Some(DexMsg::Idb(IdbMessage::decode(input)?)),
            2 => Some(DexMsg::Uc(U::decode(input)?)),
            3 => {
                let len = get_seq_len(input)?;
                let mut entries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let origin = ProcessId::decode(input)?;
                    let value = V::decode(input)?;
                    entries.push((origin, value));
                }
                Some(DexMsg::EchoBatch(entries))
            }
            4 => Some(DexMsg::EchoFlushTick),
            _ => None,
        }
    }
}

impl<C: WireCodec> WireCodec for ReplicaMsg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReplicaMsg::Slot { slot, inner } => {
                out.push(0);
                slot.encode(out);
                inner.encode(out);
            }
            ReplicaMsg::CatchUpRequest { from_slot } => {
                out.push(1);
                from_slot.encode(out);
            }
            ReplicaMsg::CatchUpReply { slots } => {
                out.push(2);
                out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
                for (slot, value) in slots {
                    slot.encode(out);
                    value.encode(out);
                }
            }
            ReplicaMsg::CatchUpTick => out.push(3),
            ReplicaMsg::UcBatch { entries } => {
                out.push(4);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (slot, msg) in entries {
                    slot.encode(out);
                    msg.encode(out);
                }
            }
            ReplicaMsg::UcFlushTick => out.push(5),
            ReplicaMsg::EchoBatch { entries } => {
                out.push(6);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (slot, origin, value) in entries {
                    slot.encode(out);
                    origin.encode(out);
                    value.encode(out);
                }
            }
            ReplicaMsg::EchoFlushTick => out.push(7),
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match get_u8(input)? {
            0 => {
                let slot = u64::decode(input)?;
                let inner = SlotMsg::<C>::decode(input)?;
                Some(ReplicaMsg::Slot { slot, inner })
            }
            1 => Some(ReplicaMsg::CatchUpRequest {
                from_slot: u64::decode(input)?,
            }),
            2 => {
                let len = get_seq_len(input)?;
                let mut slots = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let slot = u64::decode(input)?;
                    let value = C::decode(input)?;
                    slots.push((slot, value));
                }
                Some(ReplicaMsg::CatchUpReply { slots })
            }
            3 => Some(ReplicaMsg::CatchUpTick),
            4 => {
                let len = get_seq_len(input)?;
                let mut entries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let slot = u64::decode(input)?;
                    let msg = OracleMsg::<C>::decode(input)?;
                    entries.push((slot, msg));
                }
                Some(ReplicaMsg::UcBatch { entries })
            }
            5 => Some(ReplicaMsg::UcFlushTick),
            6 => {
                let len = get_seq_len(input)?;
                let mut entries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let slot = u64::decode(input)?;
                    let origin = ProcessId::decode(input)?;
                    let value = C::decode(input)?;
                    entries.push((slot, origin, value));
                }
                Some(ReplicaMsg::EchoBatch { entries })
            }
            7 => Some(ReplicaMsg::EchoFlushTick),
            _ => None,
        }
    }
}

impl<M: WireCodec> WireCodec for ReliableMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReliableMsg::Data { seq, msg } => {
                out.push(0);
                seq.encode(out);
                msg.encode(out);
            }
            ReliableMsg::Ack { seq } => {
                out.push(1);
                seq.encode(out);
            }
            ReliableMsg::Timer(msg) => {
                out.push(2);
                msg.encode(out);
            }
            ReliableMsg::RetryTick => out.push(3),
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match get_u8(input)? {
            0 => {
                let seq = u64::decode(input)?;
                let msg = M::decode(input)?;
                Some(ReliableMsg::Data { seq, msg })
            }
            1 => Some(ReliableMsg::Ack {
                seq: u64::decode(input)?,
            }),
            2 => Some(ReliableMsg::Timer(M::decode(input)?)),
            3 => Some(ReliableMsg::RetryTick),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::from_bytes(&v.to_bytes()), Some(v));
        }
        let p = ProcessId::new(6);
        assert_eq!(ProcessId::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn dex_msg_round_trips_every_variant() {
        let msgs: Vec<DexMsg<u64, OracleMsg<u64>>> = vec![
            DexMsg::Proposal(42),
            DexMsg::Idb(IdbMessage::Init {
                key: ProcessId::new(2),
                value: 7,
            }),
            DexMsg::Idb(IdbMessage::Echo {
                key: ProcessId::new(0),
                value: 9,
            }),
            DexMsg::Uc(OracleMsg::Propose(3)),
            DexMsg::Uc(OracleMsg::Decide(4)),
            DexMsg::EchoBatch(vec![(ProcessId::new(1), 5), (ProcessId::new(3), 6)]),
            DexMsg::EchoFlushTick,
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(DexMsg::from_bytes(&bytes), Some(msg));
        }
    }

    #[test]
    fn replica_msg_round_trips_every_variant() {
        let msgs: Vec<ReplicaMsg<u64>> = vec![
            ReplicaMsg::Slot {
                slot: 9,
                inner: DexMsg::Proposal(1),
            },
            ReplicaMsg::CatchUpRequest { from_slot: 3 },
            ReplicaMsg::CatchUpReply {
                slots: vec![(0, 10), (1, 20)],
            },
            ReplicaMsg::CatchUpTick,
            ReplicaMsg::UcBatch {
                entries: vec![(2, OracleMsg::Propose(5))],
            },
            ReplicaMsg::UcFlushTick,
            ReplicaMsg::EchoBatch {
                entries: vec![(4, ProcessId::new(2), 8)],
            },
            ReplicaMsg::EchoFlushTick,
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(ReplicaMsg::from_bytes(&bytes), Some(msg));
        }
    }

    #[test]
    fn reliable_msg_round_trips_every_variant() {
        let msgs: Vec<ReliableMsg<ReplicaMsg<u64>>> = vec![
            ReliableMsg::Data {
                seq: 12,
                msg: ReplicaMsg::Slot {
                    slot: 1,
                    inner: DexMsg::Proposal(7),
                },
            },
            ReliableMsg::Ack { seq: 12 },
            ReliableMsg::Timer(ReplicaMsg::CatchUpTick),
            ReliableMsg::RetryTick,
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(ReliableMsg::from_bytes(&bytes), Some(msg));
        }
    }

    #[test]
    fn malformed_input_is_rejected_not_panicked() {
        // Unknown tag.
        assert_eq!(DexMsg::<u64, OracleMsg<u64>>::from_bytes(&[9]), None);
        // Truncated payload.
        assert_eq!(DexMsg::<u64, OracleMsg<u64>>::from_bytes(&[0, 1, 2]), None);
        // Oversized length prefix fails before allocating.
        let mut forged = vec![3u8];
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(DexMsg::<u64, OracleMsg<u64>>::from_bytes(&forged), None);
        // Trailing garbage after a valid message.
        let mut bytes = DexMsg::<u64, OracleMsg<u64>>::EchoFlushTick.to_bytes();
        bytes.push(0xFF);
        assert_eq!(DexMsg::<u64, OracleMsg<u64>>::from_bytes(&bytes), None);
    }
}
