//! Per-peer TCP connection management for a netd process.
//!
//! A [`Mesh`] gives one process a full-duplex link to every peer in the
//! cluster, built from plain blocking sockets and threads (no async
//! runtime in the vendored dependency tree):
//!
//! * **Connect/accept race resolution by process id** — for each pair the
//!   *higher* id dials and the *lower* id accepts, so there is no
//!   simultaneous-open glare. The dialer identifies itself with a hello
//!   frame before any protocol traffic.
//! * **Bounded reconnect backoff** — a dialer whose peer is down (not yet
//!   spawned, or `kill -9`ed) retries with exponential backoff between
//!   [`BACKOFF_MIN`] and [`BACKOFF_MAX`], forever, so a respawned peer is
//!   re-adopted without any coordination.
//! * **Outbound buffering while a peer is down** — sends enqueue encoded
//!   frames per peer ([`MAX_QUEUE`] cap, oldest dropped beyond it); a
//!   dedicated writer thread per peer flushes the queue whenever a live
//!   stream is installed. Frames share one allocation across the fan-out
//!   (`Arc<[u8]>`), so a multicast clones nothing.
//!
//! Frames that were handed to a connection that later died are *lost*,
//! not retried: netd offers the same at-most-once delivery the simulator
//! models, and the consensus/replication layers own retransmission
//! semantics (catch-up, flush ticks).

use crate::chaos::{ChaosRuntime, Verdict};
use crate::frame::{hello_sender, FrameBuf};
use dex_harness::spec::AddressTable;
use dex_types::{ProcessId, StepDepth};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Initial dial-retry backoff.
pub const BACKOFF_MIN: Duration = Duration::from_millis(20);
/// Backoff ceiling: a downed peer is probed at least this often.
pub const BACKOFF_MAX: Duration = Duration::from_secs(1);
/// Per-peer outbound queue cap, in frames. Beyond it the *oldest* frames
/// are dropped first: fresher consensus traffic supersedes stale.
pub const MAX_QUEUE: usize = 1 << 16;

/// One message received from a peer, as the event loop consumes it.
#[derive(Debug)]
pub struct Delivery {
    /// The peer the connection authenticated at hello time.
    pub from: ProcessId,
    /// Causal step depth carried in the frame header.
    pub depth: StepDepth,
    /// Class tag byte (informational; the payload is authoritative).
    pub class: u8,
    /// `WireCodec`-encoded message bytes.
    pub payload: Vec<u8>,
}

/// One queued outbound frame, with its earliest-release instant when the
/// chaos layer held it (partition or crash window). The queue stays FIFO
/// — a held head blocks later frames, which is exactly what a real TCP
/// connection through a partitioned network does.
struct QueuedFrame {
    bytes: Arc<[u8]>,
    not_before: Option<Instant>,
}

/// Outbound state for one peer.
struct PeerState {
    queue: VecDeque<QueuedFrame>,
    stream: Option<TcpStream>,
    /// Bumped on every (re)install, so a stale reader/writer error cannot
    /// tear down a newer connection.
    generation: u64,
    /// Accept-order stamp of the newest *accepted* connection installed
    /// for this peer (see [`Peer::install_accepted`]); dialed connections
    /// are sequential in one thread and never need it.
    accept_seq: u64,
    shutdown: bool,
}

struct Peer {
    state: Mutex<PeerState>,
    cv: Condvar,
}

impl Peer {
    fn new() -> Arc<Peer> {
        Arc::new(Peer {
            state: Mutex::new(PeerState {
                queue: VecDeque::new(),
                stream: None,
                generation: 0,
                accept_seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Installs a fresh connection, superseding any previous one.
    fn install(&self, stream: TcpStream) -> u64 {
        let mut st = self.state.lock().expect("peer lock");
        st.generation += 1;
        st.stream = Some(stream);
        self.cv.notify_all();
        st.generation
    }

    /// Installs an *accepted* connection, but only if it is newer (in
    /// accept order) than the newest accepted connection already
    /// installed for this peer. Identify threads run concurrently, so a
    /// stale connection — torn while its replacement was already in the
    /// accept queue — can finish identifying *after* the live one; letting
    /// it install would clobber the live stream, and its instant EOF
    /// would then clear the slot for good while the live reader keeps
    /// delivering: a one-way ghost link. Returns `None` when refused; the
    /// caller must still drain the stale connection's buffered frames.
    fn install_accepted(&self, stream: TcpStream, accept_seq: u64) -> Option<u64> {
        let mut st = self.state.lock().expect("peer lock");
        if accept_seq <= st.accept_seq {
            return None;
        }
        st.accept_seq = accept_seq;
        st.generation += 1;
        st.stream = Some(stream);
        self.cv.notify_all();
        Some(st.generation)
    }

    /// Clears the stream if `generation` still names the live connection.
    fn uninstall(&self, generation: u64) {
        let mut st = self.state.lock().expect("peer lock");
        if st.generation == generation {
            st.stream = None;
        }
    }

    fn enqueue(&self, frame: Arc<[u8]>, not_before: Option<Instant>) {
        let mut st = self.state.lock().expect("peer lock");
        if st.queue.len() >= MAX_QUEUE {
            st.queue.pop_front();
        }
        st.queue.push_back(QueuedFrame {
            bytes: frame,
            not_before,
        });
        self.cv.notify_all();
    }

    /// Begins teardown. The stream is left installed so the writer can
    /// drain frames already accepted by `send` — dropping them here
    /// would lose traffic that raced a graceful exit.
    fn shutdown(&self) {
        let mut st = self.state.lock().expect("peer lock");
        st.shutdown = true;
        self.cv.notify_all();
    }
}

/// The full-duplex link set of one process. See the module docs.
pub struct Mesh {
    me: ProcessId,
    peers: Vec<Option<Arc<Peer>>>,
    rx: Receiver<Delivery>,
    shutdown: Arc<AtomicBool>,
    chaos: Option<Arc<ChaosRuntime>>,
}

impl Mesh {
    /// Builds the mesh for process `me` of `n` on the canonical localhost
    /// layout (`127.0.0.1`, `port_base + i`), chaos-free. See
    /// [`Mesh::with_net`] for the general form.
    pub fn new(me: ProcessId, n: usize, port_base: u16) -> std::io::Result<Mesh> {
        Mesh::with_net(me, AddressTable::localhost(n, port_base), None)
    }

    /// Builds the mesh for process `me` against an explicit address table
    /// (`n = addrs.len()`), with optional fault injection: binds the
    /// listen socket (`addrs[me]`, loopback-bound when the table says
    /// `127.0.0.1`, all-interfaces otherwise so remote peers can reach
    /// it), spawns the acceptor, one dialer per lower-id peer, and one
    /// writer per peer. Returns as soon as the local socket is bound —
    /// connections to peers establish (and re-establish) in the
    /// background. When `chaos` is `None` the fault path is never
    /// consulted and the mesh behaves byte-identically to a chaos-free
    /// build.
    pub fn with_net(
        me: ProcessId,
        addrs: AddressTable,
        chaos: Option<Arc<ChaosRuntime>>,
    ) -> std::io::Result<Mesh> {
        let n = addrs.len();
        let local_host = addrs.host(me.index());
        let loopback = local_host == "127.0.0.1" || local_host == "localhost";
        let listener = crate::listener::bind_reusable_on(addrs.port(me.index()), loopback)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let addrs = Arc::new(addrs);
        let mut peers: Vec<Option<Arc<Peer>>> = Vec::with_capacity(n);
        for j in 0..n {
            if j == me.index() {
                peers.push(None);
                continue;
            }
            let peer = Peer::new();
            spawn_writer(ProcessId::new(j), Arc::clone(&peer), chaos.clone());
            if j < me.index() {
                spawn_dialer(
                    me,
                    ProcessId::new(j),
                    Arc::clone(&addrs),
                    Arc::clone(&peer),
                    tx.clone(),
                    Arc::clone(&shutdown),
                );
            }
            peers.push(Some(peer));
        }
        spawn_acceptor(me, n, listener, peers.clone(), tx, Arc::clone(&shutdown));
        Ok(Mesh {
            me,
            peers,
            rx,
            shutdown,
            chaos,
        })
    }

    /// Queues an encoded frame for `to`. Sending to a downed peer buffers
    /// (bounded); sending to self is a caller bug — the event loop keeps
    /// self-traffic local and never encodes it. With a chaos runtime
    /// installed the frame is routed through its verdict first: it may be
    /// dropped outright, held until a partition heals or the recipient's
    /// crash window ends, or duplicated with forward jitter.
    pub fn send(&self, to: ProcessId, frame: Arc<[u8]>) {
        assert_ne!(to, self.me, "self-sends never reach the mesh");
        let Some(peer) = &self.peers[to.index()] else {
            return;
        };
        match self.chaos.as_ref().map(|c| c.outbound(to)) {
            None => peer.enqueue(frame, None),
            Some(Verdict::Drop) => {}
            Some(Verdict::Deliver { not_before, dup_at }) => {
                peer.enqueue(Arc::clone(&frame), not_before);
                if let Some(at) = dup_at {
                    peer.enqueue(frame, Some(at));
                }
            }
        }
    }

    /// Waits up to `timeout` for the next delivery.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// How many peers currently have a live connection installed.
    pub fn connected(&self) -> usize {
        self.peers
            .iter()
            .flatten()
            .filter(|p| p.state.lock().expect("peer lock").stream.is_some())
            .count()
    }

    /// Signals every mesh thread to wind down. Threads are detached and
    /// exit within one poll interval; sockets close with the process.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for peer in self.peers.iter().flatten() {
            peer.shutdown();
        }
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Writer thread: flushes one peer's queue whenever a stream is live and
/// the head frame's chaos release time (if any) has been reached. Under a
/// chaos runtime it also executes scheduled mid-frame connection tears —
/// writing a strict prefix of the frame, killing the socket, and
/// requeueing the *full* frame at the head, so the reconnect path (not
/// the chaos layer) is what restores delivery: no frame is lost, and the
/// peer's torn prefix dies with the condemned connection, so none is
/// duplicated either.
fn spawn_writer(to: ProcessId, peer: Arc<Peer>, chaos: Option<Arc<ChaosRuntime>>) {
    thread::spawn(move || loop {
        let (frame, release, stream, generation) = {
            let mut st = peer.state.lock().expect("peer lock");
            loop {
                // On shutdown, drain what a live stream can still take;
                // exit once the queue is empty or the connection is gone.
                if st.shutdown && (st.queue.is_empty() || st.stream.is_none()) {
                    return;
                }
                if st.stream.is_some() && !st.queue.is_empty() {
                    // A held head blocks the queue until its release
                    // instant (FIFO, like real TCP through a partition).
                    let hold = st.queue.front().and_then(|f| {
                        f.not_before
                            .map(|at| at.saturating_duration_since(Instant::now()))
                    });
                    match hold {
                        Some(wait) if !wait.is_zero() => {
                            let (next, _) = peer.cv.wait_timeout(st, wait).expect("peer lock");
                            st = next;
                            continue;
                        }
                        _ => break,
                    }
                }
                st = peer.cv.wait(st).expect("peer lock");
            }
            let frame = st.queue.pop_front().expect("checked non-empty");
            let stream = st.stream.as_ref().expect("checked some").try_clone();
            (frame.bytes, frame.not_before, stream, st.generation)
        };
        let tear = chaos.as_ref().and_then(|c| c.tear_len(to, frame.len()));
        let ok = match (stream, tear) {
            (Ok(mut s), None) => s.write_all(&frame).is_ok(),
            (Ok(mut s), Some(cut)) => {
                // Deliberate mid-frame tear: send a strict prefix, then
                // condemn the connection. Counts as a write failure below,
                // so the full frame is requeued for the next incarnation.
                let _ = s.write_all(&frame[..cut]);
                let _ = s.flush();
                let _ = s.shutdown(Shutdown::Both);
                false
            }
            (Err(_), _) => false,
        };
        if !ok {
            // The connection died mid-frame: drop it (the peer's frame
            // buffer dies with the socket, so no resync issue) and put
            // the unsent frame back for the next incarnation.
            let mut st = peer.state.lock().expect("peer lock");
            if st.generation == generation {
                st.stream = None;
            }
            st.queue.push_front(QueuedFrame {
                bytes: frame,
                not_before: release,
            });
        }
    });
}

/// Dialer thread: maintains the outbound connection to one lower-id peer,
/// redialing with bounded backoff, and runs the reader inline while the
/// connection lives (one thread per peer link, however often it heals).
fn spawn_dialer(
    me: ProcessId,
    to: ProcessId,
    addrs: Arc<AddressTable>,
    peer: Arc<Peer>,
    tx: Sender<Delivery>,
    shutdown: Arc<AtomicBool>,
) {
    thread::spawn(move || {
        let mut backoff = BACKOFF_MIN;
        while !shutdown.load(Ordering::Acquire) {
            let addr = (addrs.host(to.index()), addrs.port(to.index()));
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                    continue;
                }
            };
            backoff = BACKOFF_MIN;
            let _ = stream.set_nodelay(true);
            if stream
                .try_clone()
                .and_then(|mut s| s.write_all(&crate::frame::hello_frame(me.index())))
                .is_err()
            {
                continue;
            }
            let generation = peer.install(stream.try_clone().expect("clone dialed stream"));
            read_frames(stream, to, &tx, &shutdown, FrameBuf::new());
            peer.uninstall(generation);
        }
    });
}

/// Acceptor thread: admits connections from higher-id peers, identifies
/// each by its hello frame, installs the stream and hands it to a reader.
/// Each connection is stamped with its accept order before the identify
/// thread spawns, so concurrently-identifying connections from the same
/// (rapidly reconnecting) peer install newest-wins regardless of which
/// identify finishes first.
fn spawn_acceptor(
    me: ProcessId,
    n: usize,
    listener: TcpListener,
    peers: Vec<Option<Arc<Peer>>>,
    tx: Sender<Delivery>,
    shutdown: Arc<AtomicBool>,
) {
    thread::spawn(move || {
        // Starts at 1: seq 0 is the "nothing accepted yet" floor.
        let mut accept_seq = 0u64;
        while !shutdown.load(Ordering::Acquire) {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
                Err(_) => {
                    // Transient per-connection failures (e.g. a dial
                    // reset while queued) must not kill the acceptor —
                    // with it dies every future reconnection.
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            accept_seq += 1;
            let _ = stream.set_nodelay(true);
            let peers = peers.clone();
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let Some((from, leftover)) = identify(&stream) else {
                    return; // bogus hello: refuse the connection
                };
                // Only higher ids dial us, and only cluster members.
                if from <= me.index() || from >= n {
                    return;
                }
                let from = ProcessId::new(from);
                let peer = peers[from.index()].as_ref().expect("peer slot").clone();
                match peer.install_accepted(
                    stream.try_clone().expect("clone accepted stream"),
                    accept_seq,
                ) {
                    Some(generation) => {
                        read_frames(stream, from, &tx, &shutdown, leftover);
                        peer.uninstall(generation);
                    }
                    None => {
                        // Superseded by a newer accepted connection: never
                        // touch the slot, but drain whatever frames this
                        // stale (already torn) connection still buffers.
                        read_frames(stream, from, &tx, &shutdown, leftover);
                    }
                }
            });
        }
    });
}

/// Blocks until the dialer's hello frame arrives (bounded by a read
/// timeout) and returns the claimed sender id, plus whatever bytes were
/// read past the hello. Protocol frames routinely ride the same packet
/// as the hello, so the leftover buffer MUST flow into [`read_frames`] —
/// dropping it would silently eat the dialer's opening messages.
fn identify(stream: &TcpStream) -> Option<(usize, FrameBuf)> {
    let mut s = stream.try_clone().ok()?;
    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
    // A *total* deadline, not just per-read: a peer streaming bytes that
    // never frame a hello (hostile, or torn mid-handshake) would
    // otherwise defeat the read timeout indefinitely.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = FrameBuf::new();
    let mut chunk = [0u8; 256];
    loop {
        if let Ok(Some(frame)) = buf.next_frame() {
            let sender = hello_sender(&frame)?;
            let _ = s.set_read_timeout(None);
            return Some((sender, buf));
        }
        if Instant::now() >= deadline {
            return None;
        }
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(k) => buf.extend(&chunk[..k]),
        }
    }
}

/// Reads frames off an established connection until it dies (or shutdown),
/// forwarding each as a [`Delivery`]. A corrupt frame prefix condemns the
/// connection — framing resynchronizes by reconnecting, never in-stream.
fn read_frames(
    mut stream: TcpStream,
    from: ProcessId,
    tx: &Sender<Delivery>,
    shutdown: &AtomicBool,
    mut buf: FrameBuf,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut chunk = [0u8; 64 * 1024];
    // Drain frames the identify step may already have buffered, then the
    // socket.
    loop {
        loop {
            match buf.next_frame() {
                Ok(Some(frame)) => {
                    let delivery = Delivery {
                        from,
                        depth: StepDepth::new(frame.depth),
                        class: frame.class,
                        payload: frame.payload,
                    };
                    if tx.send(delivery).is_err() {
                        return; // event loop gone
                    }
                }
                Ok(None) => break, // torn tail: read more
                Err(_) => return,  // corrupt: drop connection
            }
        }
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // orderly close
            Ok(k) => buf.extend(&chunk[..k]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    fn test_port_base() -> u16 {
        40000 + (std::process::id() % 20000) as u16
    }

    #[test]
    fn three_process_mesh_delivers_both_directions() {
        let base = test_port_base();
        let n = 3;
        let meshes: Vec<Mesh> = (0..n)
            .map(|i| Mesh::new(ProcessId::new(i), n, base).expect("bind"))
            .collect();
        // Every process sends one frame to every other.
        for (i, mesh) in meshes.iter().enumerate() {
            let payload = vec![i as u8; 3];
            let frame: Arc<[u8]> = encode_frame(3, 1, &payload).into();
            for j in 0..n {
                if j != i {
                    mesh.send(ProcessId::new(j), Arc::clone(&frame));
                }
            }
        }
        for (i, mesh) in meshes.iter().enumerate() {
            let mut got = Vec::new();
            while got.len() < n - 1 {
                let d = mesh
                    .recv_timeout(Duration::from_secs(10))
                    .expect("delivery within deadline");
                assert_eq!(d.depth, StepDepth::ONE);
                assert_eq!(d.payload, vec![d.from.index() as u8; 3]);
                got.push(d.from.index());
            }
            got.sort_unstable();
            let expected: Vec<usize> = (0..n).filter(|j| *j != i).collect();
            assert_eq!(got, expected, "process {i} heard every peer once");
        }
    }

    #[test]
    fn frames_buffered_while_peer_down_flush_on_connect() {
        let base = test_port_base() + 8;
        // Process 1 comes up first and sends to 0 before 0 exists: the
        // frame must wait in the outbound queue, then flush on dial.
        let m1 = Mesh::new(ProcessId::new(1), 2, base).expect("bind 1");
        let frame: Arc<[u8]> = encode_frame(0, 2, b"early").into();
        m1.send(ProcessId::new(0), frame);
        thread::sleep(Duration::from_millis(50));
        let m0 = Mesh::new(ProcessId::new(0), 2, base).expect("bind 0");
        let d = m0
            .recv_timeout(Duration::from_secs(10))
            .expect("buffered frame arrives after the peer comes up");
        assert_eq!(d.from, ProcessId::new(1));
        assert_eq!(d.payload, b"early");
        assert_eq!(d.depth, StepDepth::new(2));
    }
}
