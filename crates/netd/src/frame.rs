//! Length-prefixed framing for the netd TCP links.
//!
//! One frame per logical message:
//!
//! ```text
//! [u32 LE total_len][u8 class][u32 LE depth][payload …]
//!                   └──────── total_len bytes ────────┘
//! ```
//!
//! `class` tags the payload's [`MsgClass`](dex_simnet::MsgClass) (plus the
//! out-of-band `0xFF` hello used during connection setup), `depth` carries
//! the causal step depth on the wire — exactly as the simulator and the
//! threaded runtime stamp their envelopes — and `payload` is the
//! [`WireCodec`](crate::codec::WireCodec) encoding of the message.
//!
//! [`FrameBuf`] is the receive-side accumulator. Like the replication
//! crate's WAL codec it is **torn-tail tolerant**: a partial frame at the
//! end of the buffered bytes is not an error, just "wait for more". Only
//! a structurally impossible prefix (zero/oversized length) is
//! [`FrameError::Corrupt`], which condemns the connection — framing never
//! resynchronizes inside a stream, it reconnects.

use dex_simnet::MsgClass;

/// Frames larger than this are rejected as corrupt: no legitimate DEX or
/// replication message gets anywhere near 16 MiB, so an insane length
/// prefix is a torn/hostile stream, not a big batch.
pub const MAX_FRAME: u32 = 16 << 20;

/// Frame header size on the wire: the `u32` length prefix itself.
const LEN_PREFIX: usize = 4;
/// Bytes of the length-counted region before the payload: class + depth.
const FRAME_OVERHEAD: usize = 1 + 4;

/// Class byte for the connection-setup hello frame (never a message).
pub const CLASS_HELLO: u8 = 0xFF;
/// Magic payload of a hello frame.
pub const HELLO_MAGIC: &[u8; 4] = b"DEXD";

/// Maps a payload's [`MsgClass`] to its wire tag byte. The batch entry
/// count is not carried — receivers recover it from the decoded payload.
pub fn class_byte(class: MsgClass) -> u8 {
    match class {
        MsgClass::Init => 0,
        MsgClass::Echo => 1,
        MsgClass::Batch(_) => 2,
        MsgClass::Other => 3,
    }
}

/// One decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// The class tag byte ([`class_byte`] output, or [`CLASS_HELLO`]).
    pub class: u8,
    /// Causal step depth (sender id for hello frames).
    pub depth: u32,
    /// The [`WireCodec`](crate::codec::WireCodec)-encoded message.
    pub payload: Vec<u8>,
}

/// Why a stream stopped yielding frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// Structurally impossible bytes: a length prefix of zero, shorter
    /// than the fixed header, or beyond [`MAX_FRAME`]. The connection is
    /// beyond recovery and must be dropped.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt frame prefix")
    }
}

/// Encodes one frame.
pub fn encode_frame(class: u8, depth: u32, payload: &[u8]) -> Vec<u8> {
    let total = FRAME_OVERHEAD + payload.len();
    debug_assert!(total as u32 <= MAX_FRAME);
    let mut out = Vec::with_capacity(LEN_PREFIX + total);
    out.extend_from_slice(&(total as u32).to_le_bytes());
    out.push(class);
    out.extend_from_slice(&depth.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The hello frame process `me` sends right after connecting, so the
/// acceptor learns who dialed before any protocol traffic flows.
pub fn hello_frame(me: usize) -> Vec<u8> {
    encode_frame(CLASS_HELLO, me as u32, HELLO_MAGIC)
}

/// Checks a decoded frame is a well-formed hello and returns the sender.
pub fn hello_sender(frame: &Frame) -> Option<usize> {
    (frame.class == CLASS_HELLO && frame.payload == HELLO_MAGIC).then_some(frame.depth as usize)
}

/// Receive-side frame accumulator: push raw socket bytes in, pull whole
/// frames out. A torn tail (anything short of a complete frame) yields
/// `Ok(None)` and is retried once more bytes arrive.
///
/// # Examples
///
/// ```
/// use dex_netd::frame::{encode_frame, FrameBuf};
///
/// let wire = encode_frame(3, 2, b"hi");
/// let mut buf = FrameBuf::new();
/// buf.extend(&wire[..5]); // torn mid-header
/// assert_eq!(buf.next_frame().unwrap(), None);
/// buf.extend(&wire[5..]);
/// let frame = buf.next_frame().unwrap().unwrap();
/// assert_eq!((frame.class, frame.depth, &frame.payload[..]), (3, 2, &b"hi"[..]));
/// ```
#[derive(Default, Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so a long-lived
        // connection doesn't accrete every frame it ever parsed.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet parsed into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame, `Ok(None)` when the tail is torn.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < LEN_PREFIX {
            return Ok(None);
        }
        let total = u32::from_le_bytes(avail[..LEN_PREFIX].try_into().expect("4 bytes"));
        if total < FRAME_OVERHEAD as u32 || total > MAX_FRAME {
            return Err(FrameError::Corrupt);
        }
        let total = total as usize;
        if avail.len() < LEN_PREFIX + total {
            return Ok(None); // torn tail — wait for more bytes
        }
        let body = &avail[LEN_PREFIX..LEN_PREFIX + total];
        let frame = Frame {
            class: body[0],
            depth: u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")),
            payload: body[FRAME_OVERHEAD..].to_vec(),
        };
        self.pos += LEN_PREFIX + total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_byte_dribble() {
        let frames = [
            encode_frame(0, 1, b"alpha"),
            encode_frame(2, 7, &[]),
            encode_frame(3, 2, &[0xAB; 300]),
        ];
        let wire: Vec<u8> = frames.iter().flatten().copied().collect();
        // Feed one byte at a time: every prefix short of a full frame is
        // a torn tail, never an error.
        let mut buf = FrameBuf::new();
        let mut got = Vec::new();
        for b in wire {
            buf.extend(&[b]);
            while let Some(f) = buf.next_frame().expect("no corruption") {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].payload, b"alpha");
        assert_eq!(
            got[1],
            Frame {
                class: 2,
                depth: 7,
                payload: vec![]
            }
        );
        assert_eq!(got[2].payload.len(), 300);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn garbage_length_prefix_is_corrupt() {
        // Length below the fixed header.
        let mut buf = FrameBuf::new();
        buf.extend(&2u32.to_le_bytes());
        assert_eq!(buf.next_frame(), Err(FrameError::Corrupt));
        // Length beyond the sanity bound.
        let mut buf = FrameBuf::new();
        buf.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(buf.next_frame(), Err(FrameError::Corrupt));
    }

    #[test]
    fn short_read_then_completion_yields_the_frame() {
        let wire = encode_frame(1, 9, b"payload");
        let mut buf = FrameBuf::new();
        buf.extend(&wire[..wire.len() - 1]);
        assert_eq!(buf.next_frame(), Ok(None));
        buf.extend(&wire[wire.len() - 1..]);
        let f = buf.next_frame().unwrap().unwrap();
        assert_eq!((f.class, f.depth), (1, 9));
        assert_eq!(f.payload, b"payload");
    }

    #[test]
    fn hello_frames_identify_the_dialer() {
        let wire = hello_frame(4);
        let mut buf = FrameBuf::new();
        buf.extend(&wire);
        let f = buf.next_frame().unwrap().unwrap();
        assert_eq!(hello_sender(&f), Some(4));
        // A protocol frame is not a hello.
        let mut buf = FrameBuf::new();
        buf.extend(&encode_frame(0, 4, HELLO_MAGIC));
        assert_eq!(hello_sender(&buf.next_frame().unwrap().unwrap()), None);
    }
}
