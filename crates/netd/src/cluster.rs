//! The cluster harness: spawn, drive, kill and judge real OS processes.
//!
//! `dex-netd --cluster` is the orchestrator. From one
//! [`RunSpec`](dex_harness::spec::RunSpec) — the same serializable spec
//! that drives simnet and threadnet — it runs two phases on localhost
//! TCP:
//!
//! 1. **Consensus cells** (the campaign MATRIX's fault-free cells): per
//!    run, the workload draws an input vector with the *identical*
//!    seeding discipline as `run_batch` (`seed + i`, workload RNG
//!    `seed ^ 0x5EED_5EED`), `n` child processes are spawned — each a
//!    [`DexActor`] on an [`Endpoint`](crate::endpoint::Endpoint) — and
//!    every correct process must report a decision; agreement is asserted
//!    across the children's `DECIDED` reports.
//! 2. **kill -9 + respawn**: `n` replica children run multi-slot DEX
//!    against per-process [`FileWal`]s. One non-coordinator victim is
//!    killed with a literal `SIGKILL` mid-run, then respawned with
//!    `--respawn`; the fresh incarnation replays its WAL, re-proposes,
//!    and closes the gap through the `t + 1`-vouched catch-up protocol.
//!    The phase converges when every replica reports the full committed
//!    prefix and a single state-machine digest.
//!
//! Children report on stdout with a line protocol (`DECIDED …`,
//! `PROGRESS …`, `DONE …`, `STATS …`); the parent folds the per-child
//! wire ledgers into one [`NetStats`] and emits wall-clock artifacts
//! (`BENCH_netd.json`, `results/netd_<seed>.json`) shape-compatible with
//! the simnet bench artifacts. Each child also watches its stdin and
//! exits when the parent goes away, so an aborted harness never leaks
//! orphan processes.

use crate::chaos::{splitmix64, ChaosRuntime, DEFAULT_SCALE_US};
use crate::endpoint::Endpoint;
use dex_conditions::FrequencyPair;
use dex_core::{DexActor, DexProcess};
use dex_harness::campaign::{CampaignCell, CampaignSpec};
use dex_harness::spec::{AddressTable, ChaosSpec, RunSpec};
use dex_harness::stats::RunStats;
use dex_replication::{Durability, FileWal, Replica, StateMachine, TotalOrder};
use dex_simnet::NetStats;
use dex_types::{ProcessId, StepDepth, SystemConfig};
use dex_underlying::OracleConsensus;
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Which phases a `--cluster` invocation runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Fault-free consensus cells only.
    Cells,
    /// The kill -9 + respawn replication run only.
    Kill9,
    /// Both, cells first.
    Both,
}

/// Parsed `--cluster` options: the shared [`RunSpec`] plus netd-specific
/// knobs.
#[derive(Clone, Debug)]
pub struct ClusterOpts {
    /// The spec driving workload, `n`/`t`, seeding and `--stats`.
    pub spec: RunSpec,
    /// First listen port; process `i` binds `port_base + i`.
    pub port_base: u16,
    /// Committed slots the kill-9 phase must reach.
    pub slots: u64,
    /// Pipeline window for the kill-9 replicas.
    pub window: u64,
    /// Phase selection.
    pub phase: Phase,
    /// Per-phase wall-clock budget before the harness gives up.
    pub timeout: Duration,
    /// Wall microseconds one virtual chaos-schedule unit spans
    /// (`--chaos-scale-us`, default [`DEFAULT_SCALE_US`]).
    pub scale_us: u64,
}

/// Options one spawned child parses back out of its argv.
#[derive(Clone, Debug)]
pub struct NodeOpts {
    /// This process's id.
    pub me: ProcessId,
    /// Cluster size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Run seed (shared by the whole cluster; per-process RNGs derive).
    pub seed: u64,
    /// First listen port.
    pub port_base: u16,
    /// Chaos schedule this child compiles into its [`ChaosRuntime`]
    /// (`ChaosSpec::None` runs clean).
    pub chaos: ChaosSpec,
    /// Fault budget the chaos schedule is compiled against (last-`f`
    /// placement; the budget children are real processes running correct
    /// code whose liveness the parent does not await).
    pub f: usize,
    /// Wall microseconds per virtual chaos-schedule unit.
    pub scale_us: u64,
    /// Explicit peer address table; `None` means localhost `port_base + i`.
    pub peers: Option<AddressTable>,
    /// What this child runs.
    pub role: Role,
}

/// A child's role.
#[derive(Clone, Debug)]
pub enum Role {
    /// Single-shot DEX consensus on a proposal.
    Consensus {
        /// This process's input value.
        propose: u64,
        /// Echo aggregation on the actor.
        aggregate: bool,
    },
    /// Multi-slot replication against a WAL.
    Replica {
        /// WAL path (unique per process, stable across respawns).
        wal: PathBuf,
        /// Target committed slots.
        slots: u64,
        /// Pipeline window.
        window: u64,
        /// Boot through crash recovery instead of `on_start`.
        respawn: bool,
        /// Draw per-process *divergent* pending commands instead of the
        /// identical stream (the divergent-state kill -9 schedule).
        divergent: bool,
    },
}

/// Derives a default port base from the parent pid so concurrent
/// harnesses on one machine do not collide.
pub fn default_port_base() -> u16 {
    23000 + (std::process::id() % 20000) as u16
}

// ---------------------------------------------------------------------
// The stdout line protocol.
// ---------------------------------------------------------------------

/// Extracts `key=` from a `KEY k1=v1 k2=v2 …` report line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|tok| {
        tok.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
    })
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

/// Renders a child's wire ledger as its `STATS` report line.
pub fn format_stats_line(net: &NetStats) -> String {
    format!(
        "STATS sent={} delivered={} multicasts={} clones={} bytes={} init={} echo={} batch={} other={} batched={} max_depth={}",
        net.sent,
        net.delivered,
        net.multicasts,
        net.payload_clones,
        net.bytes_on_wire,
        net.sent_init,
        net.sent_echo,
        net.sent_batch,
        net.sent_other,
        net.echoes_batched,
        net.max_depth.get(),
    )
}

/// One `CHAOS` line a child printed for one outbound link: the
/// seed-deterministic fault-trace digest plus realized counters. Only the
/// digest is compared across runs — counters are informational (wall-clock
/// runs legitimately differ in how many frames each connection carries).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosReport {
    /// Destination process of the reported link.
    pub to: usize,
    /// [`ChaosRuntime::sched_digest`] for the link.
    pub sched: u64,
    /// Logical frames offered to the link.
    pub frames: u64,
    /// Frames the schedule dropped.
    pub drops: u64,
    /// Frames the schedule duplicated.
    pub dups: u64,
    /// Frames held by a partition or crash window.
    pub held: u64,
    /// Mid-frame connection tears (test schedules only).
    pub torn: u64,
}

/// Parses a child's `CHAOS to=… sched=0x… frames=…` report line.
pub fn parse_chaos_line(line: &str) -> Option<ChaosReport> {
    if !line.starts_with("CHAOS ") {
        return None;
    }
    let sched = field(line, "sched")?;
    let sched = u64::from_str_radix(sched.trim_start_matches("0x"), 16).ok()?;
    Some(ChaosReport {
        to: field_u64(line, "to")? as usize,
        sched,
        frames: field_u64(line, "frames")?,
        drops: field_u64(line, "drops")?,
        dups: field_u64(line, "dups")?,
        held: field_u64(line, "held")?,
        torn: field_u64(line, "torn")?,
    })
}

/// Parses a `STATS` line back into a ledger (parent side).
pub fn parse_stats_line(line: &str) -> Option<NetStats> {
    if !line.starts_with("STATS ") {
        return None;
    }
    Some(NetStats {
        sent: field_u64(line, "sent")?,
        delivered: field_u64(line, "delivered")?,
        multicasts: field_u64(line, "multicasts")?,
        payload_clones: field_u64(line, "clones")?,
        bytes_on_wire: field_u64(line, "bytes")?,
        sent_init: field_u64(line, "init")?,
        sent_echo: field_u64(line, "echo")?,
        sent_batch: field_u64(line, "batch")?,
        sent_other: field_u64(line, "other")?,
        echoes_batched: field_u64(line, "batched")?,
        max_depth: StepDepth::new(field_u64(line, "max_depth")? as u32),
        ..NetStats::default()
    })
}

// ---------------------------------------------------------------------
// Child mains.
// ---------------------------------------------------------------------

/// Exits this process when its stdin reaches EOF — i.e. when the parent
/// harness died or dropped the pipe. Children otherwise serve forever
/// (late echoes, catch-up replies) and are reaped by the parent.
fn exit_with_parent() {
    thread::spawn(|| {
        let mut sink = [0u8; 64];
        loop {
            match std::io::stdin().read(&mut sink) {
                Ok(0) | Err(_) => std::process::exit(0),
                Ok(_) => {}
            }
        }
    });
}

/// Runs one child process until killed by the parent. Never returns on
/// the happy path.
pub fn run_node(opts: NodeOpts) -> Result<(), String> {
    exit_with_parent();
    let cfg = SystemConfig::new(opts.n, opts.t).map_err(|e| e.to_string())?;
    match opts.role.clone() {
        Role::Consensus { propose, aggregate } => consensus_node(opts, cfg, propose, aggregate),
        Role::Replica {
            wal,
            slots,
            window,
            respawn,
            divergent,
        } => replica_node(opts, cfg, wal, slots, window, respawn, divergent),
    }
}

/// The address table a child binds against: explicit `--peers`, or the
/// single-host default of `port_base + i` on loopback.
fn node_addrs(opts: &NodeOpts) -> AddressTable {
    opts.peers
        .clone()
        .unwrap_or_else(|| AddressTable::localhost(opts.n, opts.port_base))
}

fn consensus_node(
    opts: NodeOpts,
    cfg: SystemConfig,
    propose: u64,
    aggregate: bool,
) -> Result<(), String> {
    let pair = FrequencyPair::new(cfg).map_err(|e| e.to_string())?;
    let uc = OracleConsensus::new(cfg, opts.me, ProcessId::new(0));
    let mut actor = DexActor::new(DexProcess::new(cfg, opts.me, pair, uc), propose);
    if aggregate {
        actor.enable_aggregation();
    }
    let chaos = if opts.chaos.is_none() {
        None
    } else {
        Some(Arc::new(ChaosRuntime::new(
            &opts.chaos,
            cfg,
            opts.f,
            opts.me,
            opts.seed,
            opts.scale_us,
        )))
    };
    let mut ep = Endpoint::with_net(actor, opts.me, node_addrs(&opts), opts.seed, chaos.clone())
        .map_err(|e| format!("bind: {e}"))?;
    ep.boot();
    let mut announced = false;
    loop {
        ep.pump(Duration::from_millis(10));
        if !announced {
            if let Some(d) = ep.actor().decision() {
                let mut out = std::io::stdout().lock();
                if let Some(chaos) = &chaos {
                    for line in chaos.trace_lines() {
                        let _ = writeln!(out, "{line}");
                    }
                }
                let _ = writeln!(
                    out,
                    "DECIDED value={} path={} depth={} elapsed_us={}",
                    d.value,
                    d.path.label(),
                    d.depth.get(),
                    ep.elapsed_us(),
                );
                let _ = writeln!(out, "{}", format_stats_line(ep.stats()));
                let _ = out.flush();
                announced = true;
            }
        }
        // Decided processes keep serving: peers may still need echoes.
    }
}

fn replica_node(
    opts: NodeOpts,
    cfg: SystemConfig,
    wal: PathBuf,
    slots: u64,
    window: u64,
    respawn: bool,
    divergent: bool,
) -> Result<(), String> {
    // Identical pending client commands at every replica — the
    // replicated-log setting: all replicas order the same request
    // stream, so every slot's consensus instance is unanimous. Under
    // `--divergent` every process instead derives its *own* pending
    // stream from `(seed, me, slot)`: slots are contested, decisions ride
    // the coordinator fallback, and the kill -9 victim dies holding state
    // no other process can reconstruct locally — convergence then proves
    // WAL replay plus `t + 1` catch-up, not lockstep recomputation.
    let pending: Vec<u64> = if divergent {
        (0..slots)
            .map(|s| splitmix64(opts.seed ^ ((opts.me.index() as u64) << 32) ^ s))
            .collect()
    } else {
        (0..slots)
            .map(|s| opts.seed.wrapping_mul(1000).wrapping_add(s))
            .collect()
    };
    let mut replica: Replica<TotalOrder<u64>> =
        Replica::new(cfg, opts.me, ProcessId::new(0), pending, slots);
    if window > 1 {
        replica.enable_pipelining(window);
    }
    // `snapshot_every = 0`: never compact, recovery replays the full WAL.
    // In-memory snapshots would not survive a kill -9 anyway.
    let file_wal = FileWal::open(&wal).map_err(|e| format!("wal {}: {e}", wal.display()))?;
    replica.enable_durability(Durability::new(Box::new(file_wal), 0));
    let mut ep = Endpoint::with_net(replica, opts.me, node_addrs(&opts), opts.seed, None)
        .map_err(|e| format!("bind: {e}"))?;
    if respawn {
        ep.boot_restart();
    } else {
        ep.boot();
    }
    let mut last_prefix = usize::MAX;
    let mut done = false;
    loop {
        ep.pump(Duration::from_millis(5));
        let prefix = ep.actor().log().committed_prefix();
        if prefix != last_prefix {
            println!("PROGRESS prefix={prefix}");
            let _ = std::io::stdout().flush();
            last_prefix = prefix;
        }
        if !done && prefix as u64 >= slots {
            let mut out = std::io::stdout().lock();
            let _ = writeln!(
                out,
                "DONE digest={:#018x} prefix={} restarts={} elapsed_us={}",
                ep.actor().machine().digest(),
                prefix,
                ep.actor().restarts(),
                ep.elapsed_us(),
            );
            let _ = writeln!(out, "{}", format_stats_line(ep.stats()));
            let _ = out.flush();
            done = true;
        }
        // Finished replicas keep serving catch-up requests until killed.
    }
}

// ---------------------------------------------------------------------
// Parent orchestration.
// ---------------------------------------------------------------------

/// A spawned child plus its parsed stdout line stream.
struct ChildHandle {
    child: Child,
    rx: mpsc::Receiver<String>,
    argv: Vec<String>,
}

impl ChildHandle {
    /// Next stdout line before `deadline`.
    fn line_by(&self, deadline: Instant) -> Option<String> {
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        self.rx.recv_timeout(deadline - now).ok()
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix
        let _ = self.child.wait();
    }
}

fn spawn_node_process(argv: Vec<String>) -> Result<ChildHandle, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .args(&argv)
        .stdin(Stdio::piped()) // the child's parent-liveness watch
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn child: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            match line {
                Ok(l) => {
                    if tx.send(l).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });
    Ok(ChildHandle { child, rx, argv })
}

/// One child's `DECIDED` report.
#[derive(Clone, Debug)]
struct Decision {
    value: u64,
    path: String,
    depth: u64,
    elapsed_us: u64,
}

/// One directed link's entry in a run's fault trace: the digest is a pure
/// function of `(seed, from, to, schedule)`, so sorted lists of these are
/// byte-comparable across repeated runs of one seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkTrace {
    /// Source process.
    pub from: usize,
    /// Destination process.
    pub to: usize,
    /// The link's schedule digest.
    pub sched: u64,
}

/// Outcome of one consensus-cell run.
#[derive(Clone, Debug)]
pub struct CellRun {
    /// Decided value (agreement-checked across all awaited processes).
    pub value: u64,
    /// Per-process decision latencies, µs of wall clock.
    pub latencies_us: Vec<u64>,
    /// Processes that decided on the one-step path.
    pub one_step: u64,
    /// Processes that decided on the two-step path.
    pub two_step: u64,
    /// Deepest causal step depth any decision reported.
    pub depth_max: u64,
    /// Summed per-child wire ledgers.
    pub net: NetStats,
    /// Whole-run wall clock, µs (spawn to last decision).
    pub wall_us: u64,
    /// Per-link fault-trace digests reported by the awaited survivors,
    /// sorted by `(from, to)`; empty on chaos-free cells.
    pub links: Vec<LinkTrace>,
}

/// Runs one consensus cell: spawn `n`, wait for the `n - f` survivors'
/// decisions, assert agreement, reap. Under a chaos schedule the last `f`
/// children are the fault budget — real processes running correct code
/// whose links the schedule degrades and whose liveness is deliberately
/// not awaited (mirroring the simulator's budget semantics).
fn run_consensus_cell(opts: &ClusterOpts, run_idx: usize) -> Result<CellRun, String> {
    let spec = &opts.spec;
    let seed = spec.seed + run_idx as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let input = spec.workload.generator().generate(spec.n, &mut rng);
    let start = Instant::now();
    let deadline = start + opts.timeout;
    let mut children = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let argv: Vec<String> = [
            "--node",
            &i.to_string(),
            "--mode",
            "consensus",
            "--n",
            &spec.n.to_string(),
            "--t",
            &spec.t.to_string(),
            "--seed",
            &seed.to_string(),
            "--port-base",
            &opts.port_base.to_string(),
            "--propose",
            &input[ProcessId::new(i)].to_string(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut argv = argv;
        if !spec.aggregate.is_off() {
            argv.push("--aggregate".into());
        }
        if !spec.chaos.is_none() {
            argv.push("--chaos".into());
            argv.push(spec.chaos.flag());
            argv.push("--f".into());
            argv.push(spec.f.to_string());
            argv.push("--chaos-scale-us".into());
            argv.push(opts.scale_us.to_string());
        }
        if let Some(table) = spec.runtime.peers() {
            argv.push("--peers".into());
            argv.push(table.flag());
        }
        children.push(spawn_node_process(argv)?);
    }
    // Under chaos the last `f` children are the fault budget: spawned (so
    // the survivors' quorums are honest) but never awaited.
    let survivors = spec.n - spec.f;
    let mut decisions: Vec<Decision> = Vec::with_capacity(survivors);
    let mut links: Vec<LinkTrace> = Vec::new();
    let mut net = NetStats::default();
    let mut failure = None;
    'collect: for (i, child) in children.iter().enumerate().take(survivors) {
        let mut decided = None;
        loop {
            let Some(line) = child.line_by(deadline) else {
                failure = Some(format!(
                    "run {run_idx}: process {i} reported no decision within {:?}",
                    opts.timeout
                ));
                break 'collect;
            };
            if line.starts_with("DECIDED ") {
                decided = Some(Decision {
                    value: field_u64(&line, "value").ok_or("bad DECIDED line")?,
                    path: field(&line, "path").ok_or("bad DECIDED line")?.to_string(),
                    depth: field_u64(&line, "depth").ok_or("bad DECIDED line")?,
                    elapsed_us: field_u64(&line, "elapsed_us").ok_or("bad DECIDED line")?,
                });
            } else if let Some(report) = parse_chaos_line(&line) {
                links.push(LinkTrace {
                    from: i,
                    to: report.to,
                    sched: report.sched,
                });
            } else if let Some(stats) = parse_stats_line(&line) {
                net.merge(&stats);
                decisions.push(decided.take().ok_or("STATS before DECIDED")?);
                continue 'collect;
            }
        }
    }
    let wall_us = start.elapsed().as_micros() as u64;
    for child in &mut children {
        child.kill();
    }
    if let Some(err) = failure {
        return Err(err);
    }
    let first = decisions[0].value;
    if decisions.iter().any(|d| d.value != first) {
        return Err(format!(
            "run {run_idx}: AGREEMENT VIOLATION across processes: {:?}",
            decisions.iter().map(|d| d.value).collect::<Vec<_>>()
        ));
    }
    links.sort_by_key(|l| (l.from, l.to));
    Ok(CellRun {
        value: first,
        latencies_us: decisions.iter().map(|d| d.elapsed_us).collect(),
        one_step: decisions.iter().filter(|d| d.path == "1-step").count() as u64,
        two_step: decisions.iter().filter(|d| d.path == "2-step").count() as u64,
        depth_max: decisions.iter().map(|d| d.depth).max().unwrap_or(0),
        net,
        wall_us,
        links,
    })
}

/// Outcome of the kill -9 + respawn phase.
#[derive(Clone, Debug)]
pub struct Kill9Run {
    /// Slots every replica committed (== the target on success).
    pub prefix: usize,
    /// The single state-machine digest all replicas agreed on.
    pub digest: String,
    /// Restart counter reported by the respawned victim (expect 1).
    pub restarts: u64,
    /// Whether the divergent-state schedule ran.
    pub divergent: bool,
    /// The victim's committed prefix when the SIGKILL landed.
    pub killed_at: u64,
    /// The prefix every survivor was proven past before the respawn
    /// (divergent schedule only, else 0).
    pub survivor_floor: u64,
    /// Whole-phase wall clock, µs.
    pub wall_us: u64,
    /// Summed wire ledgers (survivors + the victim's second incarnation;
    /// the first incarnation's ledger died with the process, as a real
    /// crash's accounting does).
    pub net: NetStats,
}

/// Runs the kill -9 schedule: spawn `n` replicas, SIGKILL a
/// non-coordinator once its committed prefix reaches `spec.kill.after`,
/// respawn it, require full convergence. Under `spec.kill.divergent` the
/// replicas hold per-process *differing* pending commands, and every
/// survivor must be proven past `min(slots, killed_at + 2)` while the
/// victim is down — survivor progress, before any recovery — before the
/// respawn is even spawned.
fn run_kill9(opts: &ClusterOpts) -> Result<Kill9Run, String> {
    let spec = &opts.spec;
    let seed = spec.seed;
    let divergent = spec.kill.divergent;
    let wal_dir = std::env::temp_dir().join(format!("dex-netd-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).map_err(|e| format!("wal dir: {e}"))?;
    let start = Instant::now();
    let deadline = start + opts.timeout;
    let argv_for = |i: usize, respawn: bool| -> Vec<String> {
        let mut argv: Vec<String> = [
            "--node",
            &i.to_string(),
            "--mode",
            "replica",
            "--n",
            &spec.n.to_string(),
            "--t",
            &spec.t.to_string(),
            "--seed",
            &seed.to_string(),
            "--port-base",
            &opts.port_base.to_string(),
            "--slots",
            &opts.slots.to_string(),
            "--window",
            &opts.window.to_string(),
            "--wal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        argv.push(wal_dir.join(format!("wal_{i}.log")).display().to_string());
        if respawn {
            argv.push("--respawn".into());
        }
        if divergent {
            argv.push("--divergent".into());
        }
        if let Some(table) = spec.runtime.peers() {
            argv.push("--peers".into());
            argv.push(table.flag());
        }
        argv
    };
    let mut children = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        children.push(spawn_node_process(argv_for(i, false))?);
    }
    // The victim: not the UC coordinator (p0 stays up so fallbacks keep
    // deciding), and guaranteed to have synced `spec.kill.after` commits
    // to its WAL before dying, so recovery exercises replay *and*
    // catch-up.
    let victim = 1usize;
    let mut killed_at = 0u64;
    while killed_at < spec.kill.after {
        let Some(line) = children[victim].line_by(deadline) else {
            for c in &mut children {
                c.kill();
            }
            return Err(format!(
                "kill9: victim never committed {} slots",
                spec.kill.after
            ));
        };
        if let Some(prefix) = field_u64(&line, "prefix") {
            killed_at = killed_at.max(prefix);
        }
    }
    // The literal kill -9 (SIGKILL via Child::kill).
    children[victim].kill();
    // Divergent schedule: before the respawn exists, every survivor must
    // demonstrably outrun the dead victim — the cluster keeps committing
    // with one replica's state gone and n - 1 divergent pending streams.
    // Non-PROGRESS lines (an early DONE and its STATS) are stashed for
    // the convergence pass rather than dropped.
    let mut stash: Vec<VecDeque<String>> = (0..spec.n).map(|_| VecDeque::new()).collect();
    let survivor_floor = if divergent {
        opts.slots.min(killed_at + 2)
    } else {
        0
    };
    if divergent {
        let mut progress_failure = None;
        'survivors: for (i, child) in children.iter().enumerate() {
            if i == victim {
                continue;
            }
            loop {
                let Some(line) = child.line_by(deadline) else {
                    progress_failure = Some(format!(
                        "kill9: survivor {i} stalled below prefix {survivor_floor} \
                         while the victim was down"
                    ));
                    break 'survivors;
                };
                if line.starts_with("PROGRESS ") {
                    if field_u64(&line, "prefix").is_some_and(|p| p >= survivor_floor) {
                        break;
                    }
                } else {
                    let finished = line.starts_with("DONE ");
                    stash[i].push_back(line);
                    if finished {
                        break; // DONE ⇒ the full prefix, ≥ any floor
                    }
                }
            }
        }
        if let Some(err) = progress_failure {
            for c in &mut children {
                c.kill();
            }
            let _ = std::fs::remove_dir_all(&wal_dir);
            return Err(err);
        }
        println!(
            "kill9: all {} survivors progressed to ≥ {survivor_floor} with the victim dead at {killed_at}",
            spec.n - 1
        );
    }
    // Now the respawn.
    let mut respawned = spawn_node_process(argv_for(victim, true))?;
    std::mem::swap(&mut children[victim], &mut respawned);
    println!(
        "kill9: SIGKILLed process {victim} at prefix {killed_at}, respawned as `{}`",
        children[victim].argv.join(" ")
    );
    // Convergence: every live child reports DONE with one digest.
    let mut digests = Vec::with_capacity(spec.n);
    let mut prefixes = Vec::with_capacity(spec.n);
    let mut restarts = 0u64;
    let mut net = NetStats::default();
    let mut failure = None;
    'collect: for (i, child) in children.iter().enumerate() {
        let mut done = false;
        loop {
            let line = match stash[i].pop_front() {
                Some(line) => line,
                None => {
                    let Some(line) = child.line_by(deadline) else {
                        failure = Some(format!(
                            "kill9: process {i} did not converge within {:?}",
                            opts.timeout
                        ));
                        break 'collect;
                    };
                    line
                }
            };
            if line.starts_with("DONE ") {
                digests.push(field(&line, "digest").ok_or("bad DONE line")?.to_string());
                prefixes.push(field_u64(&line, "prefix").ok_or("bad DONE line")? as usize);
                if i == victim {
                    restarts = field_u64(&line, "restarts").ok_or("bad DONE line")?;
                }
                done = true;
            } else if done {
                if let Some(stats) = parse_stats_line(&line) {
                    net.merge(&stats);
                    continue 'collect;
                }
            }
        }
    }
    let wall_us = start.elapsed().as_micros() as u64;
    for child in &mut children {
        child.kill();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    if let Some(err) = failure {
        return Err(err);
    }
    let digest = digests[0].clone();
    if digests.iter().any(|d| *d != digest) {
        return Err(format!("kill9: digest divergence: {digests:?}"));
    }
    if prefixes.iter().any(|p| *p as u64 != opts.slots) {
        return Err(format!(
            "kill9: incomplete prefixes {prefixes:?} (target {})",
            opts.slots
        ));
    }
    if restarts != 1 {
        return Err(format!(
            "kill9: victim reported {restarts} restarts, expected 1"
        ));
    }
    Ok(Kill9Run {
        prefix: opts.slots as usize,
        digest,
        restarts,
        divergent,
        killed_at,
        survivor_floor,
        wall_us,
        net,
    })
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Validates a parsed cluster invocation before any process spawns — the
/// rules that make chaos, fault budgets and the kill schedule compose.
fn validate_cluster(opts: &ClusterOpts) -> Result<(), String> {
    let spec = &opts.spec;
    if !spec.runtime.is_netd() {
        return Err("cluster specs must carry --runtime netd".into());
    }
    if matches!(spec.chaos, ChaosSpec::CrashRestart { .. }) {
        return Err(
            "amnesiac crash-restart is a real process death on this runtime: \
             use --phase kill9 (the kill -9 + respawn schedule) instead of --chaos crash-restart"
                .into(),
        );
    }
    if !spec.chaos.is_none() && opts.phase != Phase::Cells {
        return Err(
            "chaos schedules drive the consensus-cell phase only: add --phase cells \
             (the kill -9 phase's fault is the SIGKILL itself)"
                .into(),
        );
    }
    if spec.f != 0 && spec.chaos.is_none() {
        return Err(
            "netd children all run correct code: --f marks the chaos fault budget \
             and needs --chaos"
                .into(),
        );
    }
    if opts.phase != Phase::Cells && spec.kill.after >= opts.slots {
        return Err(format!(
            "--kill {} must land mid-run: it needs to be < --slots {}",
            spec.kill.after, opts.slots
        ));
    }
    if spec.kill.divergent && spec.t == 0 {
        return Err(
            "--kill N:divergent needs t ≥ 1: divergent pending commands make slots \
             contested, and recovery must close the gap through the t + 1-vouched catch-up"
                .into(),
        );
    }
    SystemConfig::new(spec.n, spec.t).map_err(|e| e.to_string())?;
    Ok(())
}

/// Runs the configured phases and writes the artifacts. The entry point
/// behind `dex-netd --cluster`.
pub fn run_cluster(opts: &ClusterOpts) -> Result<(), String> {
    let spec = &opts.spec;
    validate_cluster(opts)?;
    let workload_flag = spec.workload.flag();
    let mut cell_runs: Vec<CellRun> = Vec::new();
    let mut kill9: Option<Kill9Run> = None;
    if opts.phase != Phase::Kill9 {
        for i in 0..spec.runs {
            let run = run_consensus_cell(opts, i)?;
            println!(
                "cell {workload_flag} run {i}: decided {} ({} of {} one-step, chaos {}) in {:.1} ms",
                run.value,
                run.one_step,
                spec.n - spec.f,
                spec.chaos.label(),
                run.wall_us as f64 / 1000.0,
            );
            cell_runs.push(run);
        }
        if !spec.chaos.is_none() {
            write_chaos_artifact(opts, &cell_runs).map_err(|e| format!("chaos artifact: {e}"))?;
            println!(
                "chaos {}: per-link fault traces → results/netd_chaos_{}.json",
                spec.chaos.flag(),
                spec.seed
            );
        }
    }
    if opts.phase != Phase::Cells {
        let run = run_kill9(opts)?;
        println!(
            "kill9: converged at prefix {} digest {} after {} restart in {:.1} ms",
            run.prefix,
            run.digest,
            run.restarts,
            run.wall_us as f64 / 1000.0,
        );
        kill9 = Some(run);
    }
    // The unified result surface: same carrier, same breakdown line as
    // `dex-sim --stats` on the other runtimes.
    let mut net = NetStats::default();
    let mut decisions = 0u64;
    let mut wall = Duration::ZERO;
    for run in &cell_runs {
        net.merge(&run.net);
        decisions += run.latencies_us.len() as u64;
        wall += Duration::from_micros(run.wall_us);
    }
    if let Some(k) = &kill9 {
        net.merge(&k.net);
        decisions += (k.prefix * spec.n) as u64;
        wall += Duration::from_micros(k.wall_us);
    }
    let stats = RunStats::of_net(net, decisions, wall);
    if spec.stats {
        println!("{}", stats.breakdown_line());
    }
    write_artifacts(opts, &workload_flag, &cell_runs, kill9.as_ref(), &stats)
        .map_err(|e| format!("artifacts: {e}"))?;
    Ok(())
}

/// Emits `results/netd_chaos_<seed>.json`: per run, the sorted list of
/// per-link fault-trace digests the survivors reported. Deterministic by
/// construction — digests are pure functions of `(seed, from, to,
/// schedule)` and realized counters are excluded — so repeated harness
/// invocations of one seed must produce byte-identical files (asserted by
/// the reproducibility test and `scripts/netd_chaos.sh`).
fn write_chaos_artifact(opts: &ClusterOpts, cells: &[CellRun]) -> std::io::Result<()> {
    let spec = &opts.spec;
    let runs: Vec<String> = cells
        .iter()
        .enumerate()
        .map(|(i, run)| {
            let links: Vec<String> = run
                .links
                .iter()
                .map(|l| {
                    format!(
                        "{{\"from\":{},\"to\":{},\"sched\":\"{:#018x}\"}}",
                        l.from, l.to, l.sched
                    )
                })
                .collect();
            format!(
                "{{\"run\":{},\"seed\":{},\"links\":[{}]}}",
                i,
                spec.seed + i as u64,
                links.join(",")
            )
        })
        .collect();
    std::fs::create_dir_all("results")?;
    std::fs::write(
        format!("results/netd_chaos_{}.json", spec.seed),
        format!(
            "{{\"spec\":{},\"runs\":[{}]}}\n",
            spec.to_json(),
            runs.join(",")
        ),
    )
}

/// Emits `BENCH_netd.json` and `results/netd_<seed>.json`.
fn write_artifacts(
    opts: &ClusterOpts,
    workload_flag: &str,
    cells: &[CellRun],
    kill9: Option<&Kill9Run>,
    stats: &RunStats,
) -> std::io::Result<()> {
    let spec = &opts.spec;
    let mut rows = Vec::new();
    for (i, run) in cells.iter().enumerate() {
        rows.push(format!(
            concat!(
                "{{\"cell\":\"consensus\",\"workload\":\"{}\",\"chaos\":\"{}\",\"run\":{},\"seed\":{},",
                "\"decided\":{},\"one_step\":{},\"two_step\":{},\"depth_max\":{},\"latency_mean_us\":{:.1},",
                "\"latency_max_us\":{},\"bytes_on_wire\":{},\"wall_us\":{}}}"
            ),
            workload_flag,
            spec.chaos.flag(),
            i,
            spec.seed + i as u64,
            run.latencies_us.len(),
            run.one_step,
            run.two_step,
            run.depth_max,
            mean(&run.latencies_us),
            run.latencies_us.iter().max().copied().unwrap_or(0),
            run.net.bytes_on_wire,
            run.wall_us,
        ));
    }
    if let Some(k) = kill9 {
        rows.push(format!(
            concat!(
                "{{\"cell\":\"kill9\",\"slots\":{},\"window\":{},\"restarts\":{},",
                "\"divergent\":{},\"killed_at_prefix\":{},\"survivor_floor\":{},",
                "\"converged\":true,\"digest\":\"{}\",\"bytes_on_wire\":{},\"wall_us\":{}}}"
            ),
            opts.slots,
            opts.window,
            k.restarts,
            k.divergent,
            k.killed_at,
            k.survivor_floor,
            k.digest,
            k.net.bytes_on_wire,
            k.wall_us,
        ));
    }
    let body = format!(
        concat!(
            "{{\"bench\":\"netd\",\"unit\":\"us (wall clock, real processes over localhost TCP)\",",
            "\"n\":{},\"t\":{},\"runs\":{},\"decisions\":{},\"bytes_on_wire\":{},",
            "\"results\":[{}]}}\n"
        ),
        spec.n,
        spec.t,
        spec.runs,
        stats.decisions,
        stats.net.bytes_on_wire,
        rows.join(","),
    );
    std::fs::write("BENCH_netd.json", &body)?;
    std::fs::create_dir_all("results")?;
    let report = format!(
        "{{\"spec\":{},\"bench\":{}}}",
        spec.to_json(),
        body.trim_end(),
    );
    std::fs::write(format!("results/netd_{}.json", spec.seed), report)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Argv parsing (child + cluster).
// ---------------------------------------------------------------------

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad {flag} value `{raw}`"))
}

/// Parses a `--node` child argv (everything after the program name).
pub fn parse_node_args(mut args: Vec<String>) -> Result<NodeOpts, String> {
    let me = take_value(&mut args, "--node")?.ok_or("--node <id> required")?;
    let mode = take_value(&mut args, "--mode")?.ok_or("--mode required")?;
    let n: usize = parse_num("--n", &take_value(&mut args, "--n")?.ok_or("--n required")?)?;
    let t: usize = parse_num("--t", &take_value(&mut args, "--t")?.ok_or("--t required")?)?;
    let seed: u64 = parse_num(
        "--seed",
        &take_value(&mut args, "--seed")?.ok_or("--seed required")?,
    )?;
    let port_base: u16 = parse_num(
        "--port-base",
        &take_value(&mut args, "--port-base")?.ok_or("--port-base required")?,
    )?;
    let chaos = match take_value(&mut args, "--chaos")? {
        Some(raw) => ChaosSpec::parse(&raw)?,
        None => ChaosSpec::None,
    };
    let f: usize = match take_value(&mut args, "--f")? {
        Some(raw) => parse_num("--f", &raw)?,
        None => 0,
    };
    let scale_us: u64 = match take_value(&mut args, "--chaos-scale-us")? {
        Some(raw) => parse_num("--chaos-scale-us", &raw)?,
        None => DEFAULT_SCALE_US,
    };
    let peers = match take_value(&mut args, "--peers")? {
        Some(raw) => Some(AddressTable::parse(&raw)?),
        None => None,
    };
    let role = match mode.as_str() {
        "consensus" => Role::Consensus {
            propose: parse_num(
                "--propose",
                &take_value(&mut args, "--propose")?.ok_or("--propose required")?,
            )?,
            aggregate: take_flag(&mut args, "--aggregate"),
        },
        "replica" => Role::Replica {
            wal: PathBuf::from(take_value(&mut args, "--wal")?.ok_or("--wal required")?),
            slots: parse_num(
                "--slots",
                &take_value(&mut args, "--slots")?.ok_or("--slots required")?,
            )?,
            window: parse_num(
                "--window",
                &take_value(&mut args, "--window")?.unwrap_or_else(|| "1".into()),
            )?,
            respawn: take_flag(&mut args, "--respawn"),
            divergent: take_flag(&mut args, "--divergent"),
        },
        other => return Err(format!("unknown --mode `{other}`")),
    };
    if !args.is_empty() {
        return Err(format!("unknown node flags: {args:?}"));
    }
    Ok(NodeOpts {
        me: ProcessId::new(parse_num("--node", &me)?),
        n,
        t,
        seed,
        port_base,
        chaos,
        f,
        scale_us,
        peers,
        role,
    })
}

/// Parses a `--cluster` argv: netd knobs are stripped, the rest must be a
/// valid [`RunSpec`] flag set (with `--runtime netd` implied).
pub fn parse_cluster_args(mut args: Vec<String>) -> Result<ClusterOpts, String> {
    take_flag(&mut args, "--cluster");
    let port_base = match take_value(&mut args, "--port-base")? {
        Some(raw) => parse_num("--port-base", &raw)?,
        None => default_port_base(),
    };
    let slots: u64 = match take_value(&mut args, "--slots")? {
        Some(raw) => parse_num("--slots", &raw)?,
        None => 8,
    };
    let window: u64 = match take_value(&mut args, "--window")? {
        Some(raw) => parse_num("--window", &raw)?,
        None => 4,
    };
    let phase = match take_value(&mut args, "--phase")?.as_deref() {
        None | Some("both") => Phase::Both,
        Some("cells") => Phase::Cells,
        Some("kill9") => Phase::Kill9,
        Some(other) => return Err(format!("unknown --phase `{other}` (cells|kill9|both)")),
    };
    let timeout = match take_value(&mut args, "--timeout-secs")? {
        Some(raw) => Duration::from_secs(parse_num("--timeout-secs", &raw)?),
        None => Duration::from_secs(60),
    };
    let scale_us: u64 = match take_value(&mut args, "--chaos-scale-us")? {
        Some(raw) => parse_num("--chaos-scale-us", &raw)?,
        None => DEFAULT_SCALE_US,
    };
    if !args.iter().any(|a| a == "--runtime") {
        args.push("--runtime".into());
        args.push("netd".into());
    }
    let spec = RunSpec::from_args(&args)?;
    Ok(ClusterOpts {
        spec,
        port_base,
        slots,
        window,
        phase,
        timeout,
        scale_us,
    })
}

// ---------------------------------------------------------------------
// Campaign cells over netd: wall-clock vs virtual fast-decision rates.
// ---------------------------------------------------------------------

/// Parses and runs `--campaign <name>:<cell>`: one campaign cell executed
/// on *both* runtimes — simnet in-process and netd as real processes over
/// TCP — recording the two fast-decision rates side by side in
/// `results/campaign_netd_<name>.json`.
fn run_campaign_args(mut args: Vec<String>) -> Result<(), String> {
    let raw = take_value(&mut args, "--campaign")?.ok_or("--campaign <name>:<cell> required")?;
    let (name, idx) = raw
        .split_once(':')
        .ok_or("--campaign wants <name>:<cell>, e.g. smoke:0")?;
    let idx: usize = parse_num("--campaign cell", idx)?;
    let port_base = match take_value(&mut args, "--port-base")? {
        Some(raw) => parse_num("--port-base", &raw)?,
        None => default_port_base(),
    };
    let runs: Option<usize> = take_value(&mut args, "--runs")?
        .map(|raw| parse_num("--runs", &raw))
        .transpose()?;
    let timeout = match take_value(&mut args, "--timeout-secs")? {
        Some(raw) => Duration::from_secs(parse_num("--timeout-secs", &raw)?),
        None => Duration::from_secs(60),
    };
    if !args.is_empty() {
        return Err(format!("unknown campaign flags: {args:?}"));
    }
    let campaign =
        CampaignSpec::by_name(name).ok_or_else(|| format!("unknown campaign `{name}`"))?;
    let cells = campaign.cells();
    let cell = cells.get(idx).ok_or_else(|| {
        format!(
            "campaign `{name}` has {} cells; {idx} is out of range",
            cells.len()
        )
    })?;
    let runs = runs.unwrap_or(campaign.seeds);
    run_campaign_cell(&campaign, cell, idx, runs, port_base, timeout)
}

/// Runs one campaign cell `runs` times on netd (real processes, wall
/// clock) and on simnet (in-process, virtual time), then writes the
/// side-by-side fast-decision-rate artifact. "Fast" is the paper's
/// expedited set: one-step plus two-step decisions.
fn run_campaign_cell(
    campaign: &CampaignSpec,
    cell: &CampaignCell,
    idx: usize,
    runs: usize,
    port_base: u16,
    timeout: Duration,
) -> Result<(), String> {
    let name = &campaign.name;
    let (mut netd_fast, mut netd_total) = (0u64, 0u64);
    let (mut sim_fast, mut sim_total) = (0u64, 0u64);
    let mut latencies: Vec<u64> = Vec::new();
    let mut wall_us = 0u64;
    for run in 0..runs {
        let spec = campaign.runspec_for_netd(cell, run)?;
        let opts = ClusterOpts {
            spec,
            port_base,
            slots: 8,
            window: 1,
            phase: Phase::Cells,
            timeout,
            scale_us: DEFAULT_SCALE_US,
        };
        let r = run_consensus_cell(&opts, 0)?;
        netd_fast += r.one_step + r.two_step;
        netd_total += r.latencies_us.len() as u64;
        latencies.extend(r.latencies_us.iter().copied());
        wall_us += r.wall_us;
        let sim = campaign.runspec_for(cell, run).run()?;
        sim_fast += sim.paths.count(&"1-step") + sim.paths.count(&"2-step");
        sim_total += sim.paths.total();
        println!(
            "campaign {name}:{idx} run {run}: netd {}/{} fast in {:.1} ms, simnet {}/{} fast",
            r.one_step + r.two_step,
            r.latencies_us.len(),
            r.wall_us as f64 / 1000.0,
            sim_fast,
            sim_total,
        );
    }
    let rate = |fast: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            fast as f64 / total as f64
        }
    };
    let (netd_rate, sim_rate) = (rate(netd_fast, netd_total), rate(sim_fast, sim_total));
    let body = format!(
        concat!(
            "{{\"campaign\":\"{}\",\"cell\":{},\"n\":{},\"t\":{},\"f\":{},",
            "\"adversary\":\"{}\",\"chaos\":\"{}\",\"runs\":{},",
            "\"netd\":{{\"fast\":{},\"decisions\":{},\"fast_rate\":{:.6},",
            "\"latency_mean_us\":{:.1},\"wall_us\":{}}},",
            "\"simnet\":{{\"fast\":{},\"decisions\":{},\"fast_rate\":{:.6}}}}}\n"
        ),
        name,
        idx,
        cell.n,
        cell.t,
        cell.f,
        cell.adversary.flag(),
        cell.chaos.flag(),
        runs,
        netd_fast,
        netd_total,
        netd_rate,
        mean(&latencies),
        wall_us,
        sim_fast,
        sim_total,
        sim_rate,
    );
    std::fs::create_dir_all("results").map_err(|e| format!("results dir: {e}"))?;
    let path = format!("results/campaign_netd_{name}.json");
    std::fs::write(&path, body).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "campaign {name}:{idx}: wall-clock fast-decision rate {netd_rate:.3} (netd) vs {sim_rate:.3} (simnet) over {runs} runs → {path}"
    );
    Ok(())
}

/// `dex-netd` entry: dispatches `--cluster`, `--campaign` and `--node`
/// argv forms.
pub fn main(args: Vec<String>) -> Result<(), String> {
    if args.iter().any(|a| a == "--campaign") {
        run_campaign_args(args)
    } else if args.iter().any(|a| a == "--cluster") {
        run_cluster(&parse_cluster_args(args)?)
    } else if args.iter().any(|a| a == "--node") {
        run_node(parse_node_args(args)?)
    } else {
        Err(concat!(
            "usage: dex-netd --cluster [spec flags] [--port-base P] [--slots K] ",
            "[--window W] [--phase cells|kill9|both] [--timeout-secs S] [--chaos-scale-us U]\n",
            "       dex-netd --campaign <name>:<cell> [--runs R] [--port-base P] [--timeout-secs S]\n",
            "       (children are spawned internally via --node)"
        )
        .into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_line_round_trips_the_ledger() {
        let net = NetStats {
            sent: 10,
            delivered: 9,
            multicasts: 2,
            payload_clones: 0,
            bytes_on_wire: 512,
            sent_init: 3,
            sent_echo: 4,
            sent_batch: 1,
            sent_other: 2,
            echoes_batched: 6,
            max_depth: StepDepth::new(3),
            ..NetStats::default()
        };
        let line = format_stats_line(&net);
        let back = parse_stats_line(&line).expect("parses");
        assert_eq!(back, net);
        assert_eq!(parse_stats_line("STATS sent=oops"), None);
        assert_eq!(parse_stats_line("DECIDED value=1"), None);
    }

    #[test]
    fn node_argv_round_trips_both_roles() {
        let opts = parse_node_args(
            "--node 2 --mode consensus --n 5 --t 0 --seed 9 --port-base 23000 --propose 7"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("consensus argv");
        assert_eq!(opts.me, ProcessId::new(2));
        assert!(matches!(
            opts.role,
            Role::Consensus {
                propose: 7,
                aggregate: false
            }
        ));
        let opts = parse_node_args(
            "--node 1 --mode replica --n 5 --t 0 --seed 9 --port-base 23000 --wal /tmp/w.log --slots 8 --window 4 --respawn --divergent"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("replica argv");
        match opts.role {
            Role::Replica {
                slots,
                window,
                respawn,
                divergent,
                ..
            } => {
                assert_eq!((slots, window), (8, 4));
                assert!(respawn);
                assert!(divergent);
            }
            other => panic!("wrong role {other:?}"),
        }
    }

    #[test]
    fn node_argv_carries_chaos_and_peers() {
        let opts = parse_node_args(
            "--node 2 --mode consensus --n 7 --t 1 --seed 9 --port-base 23000 --propose 7 \
             --chaos drop:0.4 --f 1 --chaos-scale-us 500 --peers 10.0.0.1:9000,10.0.0.2:9001,10.0.0.3:9002"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("chaos argv");
        assert_eq!(opts.chaos, ChaosSpec::DropHeavy { p: 0.4 });
        assert_eq!((opts.f, opts.scale_us), (1, 500));
        let peers = opts.peers.expect("peers table");
        assert_eq!(peers.len(), 3);
        assert_eq!((peers.host(1), peers.port(1)), ("10.0.0.2", 9001));
        // Defaults: clean, no budget, canonical scale, localhost table.
        let opts = parse_node_args(
            "--node 0 --mode consensus --n 5 --t 0 --seed 9 --port-base 23000 --propose 7"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("clean argv");
        assert!(opts.chaos.is_none());
        assert_eq!((opts.f, opts.scale_us), (0, DEFAULT_SCALE_US));
        assert!(opts.peers.is_none());
    }

    #[test]
    fn chaos_line_round_trips_the_report() {
        let line = "CHAOS to=6 sched=0x00ab54a98ceb1f0a frames=12 drops=3 dups=0 held=2 torn=1";
        let report = parse_chaos_line(line).expect("parses");
        assert_eq!(report.to, 6);
        assert_eq!(report.sched, 0x00ab_54a9_8ceb_1f0a);
        assert_eq!(
            (
                report.frames,
                report.drops,
                report.dups,
                report.held,
                report.torn
            ),
            (12, 3, 0, 2, 1)
        );
        assert_eq!(parse_chaos_line("STATS sent=1"), None);
        assert_eq!(parse_chaos_line("CHAOS to=6 sched=zzz frames=1"), None);
    }

    #[test]
    fn cluster_argv_carries_spec_and_netd_knobs() {
        let opts = parse_cluster_args(
            "--cluster --n 5 --t 0 --workload unanimous:7 --runs 2 --seed 31 --slots 6 --phase cells --chaos-scale-us 250"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("cluster argv");
        assert_eq!(opts.spec.n, 5);
        assert!(opts.spec.runtime.is_netd());
        assert_eq!(opts.slots, 6);
        assert_eq!(opts.phase, Phase::Cells);
        assert_eq!(opts.scale_us, 250);
    }

    fn cluster_opts(argv: &str) -> ClusterOpts {
        parse_cluster_args(argv.split_whitespace().map(String::from).collect())
            .expect("cluster argv parses")
    }

    #[test]
    fn validation_composes_chaos_budget_and_kill_rules() {
        // The four MATRIX schedules are legal consensus-cell specs.
        for chaos in ChaosSpec::MATRIX {
            let opts = cluster_opts(&format!(
                "--cluster --n 7 --t 1 --f 1 --chaos {} --phase cells",
                chaos.flag()
            ));
            assert_eq!(validate_cluster(&opts), Ok(()), "{}", chaos.flag());
        }
        // Chaos without the cells phase is rejected.
        let err = validate_cluster(&cluster_opts("--cluster --n 5 --t 0 --chaos drop:0.4"))
            .expect_err("chaos needs --phase cells");
        assert!(err.contains("cells"), "{err}");
        // Amnesiac restart chaos points at the real kill -9 schedule.
        let err = validate_cluster(&cluster_opts(
            "--cluster --n 5 --t 0 --chaos crash-restart:1:9 --phase cells",
        ))
        .expect_err("crash-restart is kill9's job");
        assert!(err.contains("kill9"), "{err}");
        // A fault budget without chaos to attach it to is rejected.
        let err = validate_cluster(&cluster_opts("--cluster --n 7 --t 1 --f 1 --phase cells"))
            .expect_err("--f needs --chaos");
        assert!(err.contains("--chaos"), "{err}");
        // The kill point must land mid-run.
        let err = validate_cluster(&cluster_opts(
            "--cluster --n 5 --t 0 --kill 6 --slots 6 --phase kill9",
        ))
        .expect_err("kill point past the last slot");
        assert!(err.contains("--slots"), "{err}");
        // Divergent kills need a catch-up quorum margin.
        let err = validate_cluster(&cluster_opts(
            "--cluster --n 5 --t 0 --kill 1:divergent --phase kill9",
        ))
        .expect_err("divergent needs t ≥ 1");
        assert!(err.contains("divergent"), "{err}");
        let opts = cluster_opts("--cluster --n 7 --t 1 --kill 2:divergent --phase kill9");
        assert_eq!(validate_cluster(&opts), Ok(()));
    }
}
