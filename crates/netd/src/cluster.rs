//! The cluster harness: spawn, drive, kill and judge real OS processes.
//!
//! `dex-netd --cluster` is the orchestrator. From one
//! [`RunSpec`](dex_harness::spec::RunSpec) — the same serializable spec
//! that drives simnet and threadnet — it runs two phases on localhost
//! TCP:
//!
//! 1. **Consensus cells** (the campaign MATRIX's fault-free cells): per
//!    run, the workload draws an input vector with the *identical*
//!    seeding discipline as `run_batch` (`seed + i`, workload RNG
//!    `seed ^ 0x5EED_5EED`), `n` child processes are spawned — each a
//!    [`DexActor`] on an [`Endpoint`](crate::endpoint::Endpoint) — and
//!    every correct process must report a decision; agreement is asserted
//!    across the children's `DECIDED` reports.
//! 2. **kill -9 + respawn**: `n` replica children run multi-slot DEX
//!    against per-process [`FileWal`]s. One non-coordinator victim is
//!    killed with a literal `SIGKILL` mid-run, then respawned with
//!    `--respawn`; the fresh incarnation replays its WAL, re-proposes,
//!    and closes the gap through the `t + 1`-vouched catch-up protocol.
//!    The phase converges when every replica reports the full committed
//!    prefix and a single state-machine digest.
//!
//! Children report on stdout with a line protocol (`DECIDED …`,
//! `PROGRESS …`, `DONE …`, `STATS …`); the parent folds the per-child
//! wire ledgers into one [`NetStats`] and emits wall-clock artifacts
//! (`BENCH_netd.json`, `results/netd_<seed>.json`) shape-compatible with
//! the simnet bench artifacts. Each child also watches its stdin and
//! exits when the parent goes away, so an aborted harness never leaks
//! orphan processes.

use crate::endpoint::Endpoint;
use dex_conditions::FrequencyPair;
use dex_core::{DexActor, DexProcess};
use dex_harness::spec::{RunSpec, RuntimeSpec};
use dex_harness::stats::RunStats;
use dex_replication::{Durability, FileWal, Replica, StateMachine, TotalOrder};
use dex_simnet::NetStats;
use dex_types::{ProcessId, StepDepth, SystemConfig};
use dex_underlying::OracleConsensus;
use rand::rngs::StdRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Which phases a `--cluster` invocation runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Fault-free consensus cells only.
    Cells,
    /// The kill -9 + respawn replication run only.
    Kill9,
    /// Both, cells first.
    Both,
}

/// Parsed `--cluster` options: the shared [`RunSpec`] plus netd-specific
/// knobs.
#[derive(Clone, Debug)]
pub struct ClusterOpts {
    /// The spec driving workload, `n`/`t`, seeding and `--stats`.
    pub spec: RunSpec,
    /// First listen port; process `i` binds `port_base + i`.
    pub port_base: u16,
    /// Committed slots the kill-9 phase must reach.
    pub slots: u64,
    /// Pipeline window for the kill-9 replicas.
    pub window: u64,
    /// Phase selection.
    pub phase: Phase,
    /// Per-phase wall-clock budget before the harness gives up.
    pub timeout: Duration,
}

/// Options one spawned child parses back out of its argv.
#[derive(Clone, Debug)]
pub struct NodeOpts {
    /// This process's id.
    pub me: ProcessId,
    /// Cluster size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Run seed (shared by the whole cluster; per-process RNGs derive).
    pub seed: u64,
    /// First listen port.
    pub port_base: u16,
    /// What this child runs.
    pub role: Role,
}

/// A child's role.
#[derive(Clone, Debug)]
pub enum Role {
    /// Single-shot DEX consensus on a proposal.
    Consensus {
        /// This process's input value.
        propose: u64,
        /// Echo aggregation on the actor.
        aggregate: bool,
    },
    /// Multi-slot replication against a WAL.
    Replica {
        /// WAL path (unique per process, stable across respawns).
        wal: PathBuf,
        /// Target committed slots.
        slots: u64,
        /// Pipeline window.
        window: u64,
        /// Boot through crash recovery instead of `on_start`.
        respawn: bool,
    },
}

/// Derives a default port base from the parent pid so concurrent
/// harnesses on one machine do not collide.
pub fn default_port_base() -> u16 {
    23000 + (std::process::id() % 20000) as u16
}

// ---------------------------------------------------------------------
// The stdout line protocol.
// ---------------------------------------------------------------------

/// Extracts `key=` from a `KEY k1=v1 k2=v2 …` report line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|tok| {
        tok.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
    })
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

/// Renders a child's wire ledger as its `STATS` report line.
pub fn format_stats_line(net: &NetStats) -> String {
    format!(
        "STATS sent={} delivered={} multicasts={} clones={} bytes={} init={} echo={} batch={} other={} batched={} max_depth={}",
        net.sent,
        net.delivered,
        net.multicasts,
        net.payload_clones,
        net.bytes_on_wire,
        net.sent_init,
        net.sent_echo,
        net.sent_batch,
        net.sent_other,
        net.echoes_batched,
        net.max_depth.get(),
    )
}

/// Parses a `STATS` line back into a ledger (parent side).
pub fn parse_stats_line(line: &str) -> Option<NetStats> {
    if !line.starts_with("STATS ") {
        return None;
    }
    Some(NetStats {
        sent: field_u64(line, "sent")?,
        delivered: field_u64(line, "delivered")?,
        multicasts: field_u64(line, "multicasts")?,
        payload_clones: field_u64(line, "clones")?,
        bytes_on_wire: field_u64(line, "bytes")?,
        sent_init: field_u64(line, "init")?,
        sent_echo: field_u64(line, "echo")?,
        sent_batch: field_u64(line, "batch")?,
        sent_other: field_u64(line, "other")?,
        echoes_batched: field_u64(line, "batched")?,
        max_depth: StepDepth::new(field_u64(line, "max_depth")? as u32),
        ..NetStats::default()
    })
}

// ---------------------------------------------------------------------
// Child mains.
// ---------------------------------------------------------------------

/// Exits this process when its stdin reaches EOF — i.e. when the parent
/// harness died or dropped the pipe. Children otherwise serve forever
/// (late echoes, catch-up replies) and are reaped by the parent.
fn exit_with_parent() {
    thread::spawn(|| {
        let mut sink = [0u8; 64];
        loop {
            match std::io::stdin().read(&mut sink) {
                Ok(0) | Err(_) => std::process::exit(0),
                Ok(_) => {}
            }
        }
    });
}

/// Runs one child process until killed by the parent. Never returns on
/// the happy path.
pub fn run_node(opts: NodeOpts) -> Result<(), String> {
    exit_with_parent();
    let cfg = SystemConfig::new(opts.n, opts.t).map_err(|e| e.to_string())?;
    match opts.role.clone() {
        Role::Consensus { propose, aggregate } => consensus_node(opts, cfg, propose, aggregate),
        Role::Replica {
            wal,
            slots,
            window,
            respawn,
        } => replica_node(opts, cfg, wal, slots, window, respawn),
    }
}

fn consensus_node(
    opts: NodeOpts,
    cfg: SystemConfig,
    propose: u64,
    aggregate: bool,
) -> Result<(), String> {
    let pair = FrequencyPair::new(cfg).map_err(|e| e.to_string())?;
    let uc = OracleConsensus::new(cfg, opts.me, ProcessId::new(0));
    let mut actor = DexActor::new(DexProcess::new(cfg, opts.me, pair, uc), propose);
    if aggregate {
        actor.enable_aggregation();
    }
    let mut ep = Endpoint::new(actor, opts.me, opts.n, opts.port_base, opts.seed)
        .map_err(|e| format!("bind: {e}"))?;
    ep.boot();
    let mut announced = false;
    loop {
        ep.pump(Duration::from_millis(10));
        if !announced {
            if let Some(d) = ep.actor().decision() {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(
                    out,
                    "DECIDED value={} path={} depth={} elapsed_us={}",
                    d.value,
                    d.path.label(),
                    d.depth.get(),
                    ep.elapsed_us(),
                );
                let _ = writeln!(out, "{}", format_stats_line(ep.stats()));
                let _ = out.flush();
                announced = true;
            }
        }
        // Decided processes keep serving: peers may still need echoes.
    }
}

fn replica_node(
    opts: NodeOpts,
    cfg: SystemConfig,
    wal: PathBuf,
    slots: u64,
    window: u64,
    respawn: bool,
) -> Result<(), String> {
    // Identical pending client commands at every replica — the
    // replicated-log setting: all replicas order the same request
    // stream, so every slot's consensus instance is unanimous.
    let pending: Vec<u64> = (0..slots)
        .map(|s| opts.seed.wrapping_mul(1000).wrapping_add(s))
        .collect();
    let mut replica: Replica<TotalOrder<u64>> =
        Replica::new(cfg, opts.me, ProcessId::new(0), pending, slots);
    if window > 1 {
        replica.enable_pipelining(window);
    }
    // `snapshot_every = 0`: never compact, recovery replays the full WAL.
    // In-memory snapshots would not survive a kill -9 anyway.
    let file_wal = FileWal::open(&wal).map_err(|e| format!("wal {}: {e}", wal.display()))?;
    replica.enable_durability(Durability::new(Box::new(file_wal), 0));
    let mut ep = Endpoint::new(replica, opts.me, opts.n, opts.port_base, opts.seed)
        .map_err(|e| format!("bind: {e}"))?;
    if respawn {
        ep.boot_restart();
    } else {
        ep.boot();
    }
    let mut last_prefix = usize::MAX;
    let mut done = false;
    loop {
        ep.pump(Duration::from_millis(5));
        let prefix = ep.actor().log().committed_prefix();
        if prefix != last_prefix {
            println!("PROGRESS prefix={prefix}");
            let _ = std::io::stdout().flush();
            last_prefix = prefix;
        }
        if !done && prefix as u64 >= slots {
            let mut out = std::io::stdout().lock();
            let _ = writeln!(
                out,
                "DONE digest={:#018x} prefix={} restarts={} elapsed_us={}",
                ep.actor().machine().digest(),
                prefix,
                ep.actor().restarts(),
                ep.elapsed_us(),
            );
            let _ = writeln!(out, "{}", format_stats_line(ep.stats()));
            let _ = out.flush();
            done = true;
        }
        // Finished replicas keep serving catch-up requests until killed.
    }
}

// ---------------------------------------------------------------------
// Parent orchestration.
// ---------------------------------------------------------------------

/// A spawned child plus its parsed stdout line stream.
struct ChildHandle {
    child: Child,
    rx: mpsc::Receiver<String>,
    argv: Vec<String>,
}

impl ChildHandle {
    /// Next stdout line before `deadline`.
    fn line_by(&self, deadline: Instant) -> Option<String> {
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        self.rx.recv_timeout(deadline - now).ok()
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix
        let _ = self.child.wait();
    }
}

fn spawn_node_process(argv: Vec<String>) -> Result<ChildHandle, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .args(&argv)
        .stdin(Stdio::piped()) // the child's parent-liveness watch
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn child: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            match line {
                Ok(l) => {
                    if tx.send(l).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });
    Ok(ChildHandle { child, rx, argv })
}

/// One child's `DECIDED` report.
#[derive(Clone, Debug)]
struct Decision {
    value: u64,
    path: String,
    depth: u64,
    elapsed_us: u64,
}

/// Outcome of one consensus-cell run.
#[derive(Clone, Debug)]
pub struct CellRun {
    /// Decided value (agreement-checked across all processes).
    pub value: u64,
    /// Per-process decision latencies, µs of wall clock.
    pub latencies_us: Vec<u64>,
    /// Processes that decided on the one-step path.
    pub one_step: u64,
    /// Deepest causal step depth any decision reported.
    pub depth_max: u64,
    /// Summed per-child wire ledgers.
    pub net: NetStats,
    /// Whole-run wall clock, µs (spawn to last decision).
    pub wall_us: u64,
}

/// Runs one fault-free consensus cell: spawn `n`, wait for `n` decisions,
/// assert agreement, reap.
fn run_consensus_cell(opts: &ClusterOpts, run_idx: usize) -> Result<CellRun, String> {
    let spec = &opts.spec;
    let seed = spec.seed + run_idx as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let input = spec.workload.generator().generate(spec.n, &mut rng);
    let start = Instant::now();
    let deadline = start + opts.timeout;
    let mut children = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let argv: Vec<String> = [
            "--node",
            &i.to_string(),
            "--mode",
            "consensus",
            "--n",
            &spec.n.to_string(),
            "--t",
            &spec.t.to_string(),
            "--seed",
            &seed.to_string(),
            "--port-base",
            &opts.port_base.to_string(),
            "--propose",
            &input[ProcessId::new(i)].to_string(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut argv = argv;
        if !spec.aggregate.is_off() {
            argv.push("--aggregate".into());
        }
        children.push(spawn_node_process(argv)?);
    }
    let mut decisions: Vec<Decision> = Vec::with_capacity(spec.n);
    let mut net = NetStats::default();
    let mut failure = None;
    'collect: for (i, child) in children.iter().enumerate() {
        let mut decided = None;
        loop {
            let Some(line) = child.line_by(deadline) else {
                failure = Some(format!(
                    "run {run_idx}: process {i} reported no decision within {:?}",
                    opts.timeout
                ));
                break 'collect;
            };
            if line.starts_with("DECIDED ") {
                decided = Some(Decision {
                    value: field_u64(&line, "value").ok_or("bad DECIDED line")?,
                    path: field(&line, "path").ok_or("bad DECIDED line")?.to_string(),
                    depth: field_u64(&line, "depth").ok_or("bad DECIDED line")?,
                    elapsed_us: field_u64(&line, "elapsed_us").ok_or("bad DECIDED line")?,
                });
            } else if let Some(stats) = parse_stats_line(&line) {
                net.merge(&stats);
                decisions.push(decided.take().ok_or("STATS before DECIDED")?);
                continue 'collect;
            }
        }
    }
    let wall_us = start.elapsed().as_micros() as u64;
    for child in &mut children {
        child.kill();
    }
    if let Some(err) = failure {
        return Err(err);
    }
    let first = decisions[0].value;
    if decisions.iter().any(|d| d.value != first) {
        return Err(format!(
            "run {run_idx}: AGREEMENT VIOLATION across processes: {:?}",
            decisions.iter().map(|d| d.value).collect::<Vec<_>>()
        ));
    }
    Ok(CellRun {
        value: first,
        latencies_us: decisions.iter().map(|d| d.elapsed_us).collect(),
        one_step: decisions.iter().filter(|d| d.path == "1-step").count() as u64,
        depth_max: decisions.iter().map(|d| d.depth).max().unwrap_or(0),
        net,
        wall_us,
    })
}

/// Outcome of the kill -9 + respawn phase.
#[derive(Clone, Debug)]
pub struct Kill9Run {
    /// Slots every replica committed (== the target on success).
    pub prefix: usize,
    /// The single state-machine digest all replicas agreed on.
    pub digest: String,
    /// Restart counter reported by the respawned victim (expect 1).
    pub restarts: u64,
    /// Whole-phase wall clock, µs.
    pub wall_us: u64,
    /// Summed wire ledgers (survivors + the victim's second incarnation;
    /// the first incarnation's ledger died with the process, as a real
    /// crash's accounting does).
    pub net: NetStats,
}

/// Runs the kill -9 schedule: spawn `n` replicas, SIGKILL a
/// non-coordinator mid-run, respawn it, require full convergence.
fn run_kill9(opts: &ClusterOpts) -> Result<Kill9Run, String> {
    let spec = &opts.spec;
    let seed = spec.seed;
    let wal_dir = std::env::temp_dir().join(format!("dex-netd-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).map_err(|e| format!("wal dir: {e}"))?;
    let start = Instant::now();
    let deadline = start + opts.timeout;
    let argv_for = |i: usize, respawn: bool| -> Vec<String> {
        let mut argv: Vec<String> = [
            "--node",
            &i.to_string(),
            "--mode",
            "replica",
            "--n",
            &spec.n.to_string(),
            "--t",
            &spec.t.to_string(),
            "--seed",
            &seed.to_string(),
            "--port-base",
            &opts.port_base.to_string(),
            "--slots",
            &opts.slots.to_string(),
            "--window",
            &opts.window.to_string(),
            "--wal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        argv.push(wal_dir.join(format!("wal_{i}.log")).display().to_string());
        if respawn {
            argv.push("--respawn".into());
        }
        argv
    };
    let mut children = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        children.push(spawn_node_process(argv_for(i, false))?);
    }
    // The victim: not the UC coordinator (p0 stays up so fallbacks keep
    // deciding), and guaranteed to have synced at least one commit to its
    // WAL before dying, so recovery exercises replay *and* catch-up.
    let victim = 1usize;
    let mut saw_commit = false;
    while !saw_commit {
        let Some(line) = children[victim].line_by(deadline) else {
            for c in &mut children {
                c.kill();
            }
            return Err("kill9: victim never committed a slot".into());
        };
        if let Some(prefix) = field_u64(&line, "prefix") {
            saw_commit = prefix >= 1;
        }
    }
    // The literal kill -9 (SIGKILL via Child::kill), then the respawn.
    children[victim].kill();
    let mut respawned = spawn_node_process(argv_for(victim, true))?;
    std::mem::swap(&mut children[victim], &mut respawned);
    println!(
        "kill9: SIGKILLed process {victim} after first commit, respawned as `{}`",
        children[victim].argv.join(" ")
    );
    // Convergence: every live child reports DONE with one digest.
    let mut digests = Vec::with_capacity(spec.n);
    let mut prefixes = Vec::with_capacity(spec.n);
    let mut restarts = 0u64;
    let mut net = NetStats::default();
    let mut failure = None;
    'collect: for (i, child) in children.iter().enumerate() {
        let mut done = false;
        loop {
            let Some(line) = child.line_by(deadline) else {
                failure = Some(format!(
                    "kill9: process {i} did not converge within {:?}",
                    opts.timeout
                ));
                break 'collect;
            };
            if line.starts_with("DONE ") {
                digests.push(field(&line, "digest").ok_or("bad DONE line")?.to_string());
                prefixes.push(field_u64(&line, "prefix").ok_or("bad DONE line")? as usize);
                if i == victim {
                    restarts = field_u64(&line, "restarts").ok_or("bad DONE line")?;
                }
                done = true;
            } else if done {
                if let Some(stats) = parse_stats_line(&line) {
                    net.merge(&stats);
                    continue 'collect;
                }
            }
        }
    }
    let wall_us = start.elapsed().as_micros() as u64;
    for child in &mut children {
        child.kill();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    if let Some(err) = failure {
        return Err(err);
    }
    let digest = digests[0].clone();
    if digests.iter().any(|d| *d != digest) {
        return Err(format!("kill9: digest divergence: {digests:?}"));
    }
    if prefixes.iter().any(|p| *p as u64 != opts.slots) {
        return Err(format!(
            "kill9: incomplete prefixes {prefixes:?} (target {})",
            opts.slots
        ));
    }
    if restarts != 1 {
        return Err(format!(
            "kill9: victim reported {restarts} restarts, expected 1"
        ));
    }
    Ok(Kill9Run {
        prefix: opts.slots as usize,
        digest,
        restarts,
        wall_us,
        net,
    })
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Runs the configured phases and writes the artifacts. The entry point
/// behind `dex-netd --cluster`.
pub fn run_cluster(opts: &ClusterOpts) -> Result<(), String> {
    let spec = &opts.spec;
    if spec.runtime != RuntimeSpec::Netd {
        return Err("cluster specs must carry --runtime netd".into());
    }
    if spec.f != 0 {
        return Err(
            "netd runs fault-free cells: --f must be 0 (the kill -9 schedule is the fault)".into(),
        );
    }
    if !spec.chaos.is_none() {
        return Err(
            "netd has no virtual fault injector; drop --chaos (kill -9 is real here)".into(),
        );
    }
    SystemConfig::new(spec.n, spec.t).map_err(|e| e.to_string())?;
    let workload_flag = spec.workload.flag();
    let mut cell_runs: Vec<CellRun> = Vec::new();
    let mut kill9: Option<Kill9Run> = None;
    if opts.phase != Phase::Kill9 {
        for i in 0..spec.runs {
            let run = run_consensus_cell(opts, i)?;
            println!(
                "cell {workload_flag} run {i}: decided {} ({} of {} one-step) in {:.1} ms",
                run.value,
                run.one_step,
                spec.n,
                run.wall_us as f64 / 1000.0,
            );
            cell_runs.push(run);
        }
    }
    if opts.phase != Phase::Cells {
        let run = run_kill9(opts)?;
        println!(
            "kill9: converged at prefix {} digest {} after {} restart in {:.1} ms",
            run.prefix,
            run.digest,
            run.restarts,
            run.wall_us as f64 / 1000.0,
        );
        kill9 = Some(run);
    }
    // The unified result surface: same carrier, same breakdown line as
    // `dex-sim --stats` on the other runtimes.
    let mut net = NetStats::default();
    let mut decisions = 0u64;
    let mut wall = Duration::ZERO;
    for run in &cell_runs {
        net.merge(&run.net);
        decisions += run.latencies_us.len() as u64;
        wall += Duration::from_micros(run.wall_us);
    }
    if let Some(k) = &kill9 {
        net.merge(&k.net);
        decisions += (k.prefix * spec.n) as u64;
        wall += Duration::from_micros(k.wall_us);
    }
    let stats = RunStats::of_net(net, decisions, wall);
    if spec.stats {
        println!("{}", stats.breakdown_line());
    }
    write_artifacts(opts, &workload_flag, &cell_runs, kill9.as_ref(), &stats)
        .map_err(|e| format!("artifacts: {e}"))?;
    Ok(())
}

/// Emits `BENCH_netd.json` and `results/netd_<seed>.json`.
fn write_artifacts(
    opts: &ClusterOpts,
    workload_flag: &str,
    cells: &[CellRun],
    kill9: Option<&Kill9Run>,
    stats: &RunStats,
) -> std::io::Result<()> {
    let spec = &opts.spec;
    let mut rows = Vec::new();
    for (i, run) in cells.iter().enumerate() {
        rows.push(format!(
            concat!(
                "{{\"cell\":\"consensus\",\"workload\":\"{}\",\"run\":{},\"seed\":{},",
                "\"decided\":{},\"one_step\":{},\"depth_max\":{},\"latency_mean_us\":{:.1},",
                "\"latency_max_us\":{},\"bytes_on_wire\":{},\"wall_us\":{}}}"
            ),
            workload_flag,
            i,
            spec.seed + i as u64,
            run.latencies_us.len(),
            run.one_step,
            run.depth_max,
            mean(&run.latencies_us),
            run.latencies_us.iter().max().copied().unwrap_or(0),
            run.net.bytes_on_wire,
            run.wall_us,
        ));
    }
    if let Some(k) = kill9 {
        rows.push(format!(
            concat!(
                "{{\"cell\":\"kill9\",\"slots\":{},\"window\":{},\"restarts\":{},",
                "\"converged\":true,\"digest\":\"{}\",\"bytes_on_wire\":{},\"wall_us\":{}}}"
            ),
            opts.slots, opts.window, k.restarts, k.digest, k.net.bytes_on_wire, k.wall_us,
        ));
    }
    let body = format!(
        concat!(
            "{{\"bench\":\"netd\",\"unit\":\"us (wall clock, real processes over localhost TCP)\",",
            "\"n\":{},\"t\":{},\"runs\":{},\"decisions\":{},\"bytes_on_wire\":{},",
            "\"results\":[{}]}}\n"
        ),
        spec.n,
        spec.t,
        spec.runs,
        stats.decisions,
        stats.net.bytes_on_wire,
        rows.join(","),
    );
    std::fs::write("BENCH_netd.json", &body)?;
    std::fs::create_dir_all("results")?;
    let report = format!(
        "{{\"spec\":{},\"bench\":{}}}",
        spec.to_json(),
        body.trim_end(),
    );
    std::fs::write(format!("results/netd_{}.json", spec.seed), report)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Argv parsing (child + cluster).
// ---------------------------------------------------------------------

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad {flag} value `{raw}`"))
}

/// Parses a `--node` child argv (everything after the program name).
pub fn parse_node_args(mut args: Vec<String>) -> Result<NodeOpts, String> {
    let me = take_value(&mut args, "--node")?.ok_or("--node <id> required")?;
    let mode = take_value(&mut args, "--mode")?.ok_or("--mode required")?;
    let n: usize = parse_num("--n", &take_value(&mut args, "--n")?.ok_or("--n required")?)?;
    let t: usize = parse_num("--t", &take_value(&mut args, "--t")?.ok_or("--t required")?)?;
    let seed: u64 = parse_num(
        "--seed",
        &take_value(&mut args, "--seed")?.ok_or("--seed required")?,
    )?;
    let port_base: u16 = parse_num(
        "--port-base",
        &take_value(&mut args, "--port-base")?.ok_or("--port-base required")?,
    )?;
    let role = match mode.as_str() {
        "consensus" => Role::Consensus {
            propose: parse_num(
                "--propose",
                &take_value(&mut args, "--propose")?.ok_or("--propose required")?,
            )?,
            aggregate: take_flag(&mut args, "--aggregate"),
        },
        "replica" => Role::Replica {
            wal: PathBuf::from(take_value(&mut args, "--wal")?.ok_or("--wal required")?),
            slots: parse_num(
                "--slots",
                &take_value(&mut args, "--slots")?.ok_or("--slots required")?,
            )?,
            window: parse_num(
                "--window",
                &take_value(&mut args, "--window")?.unwrap_or_else(|| "1".into()),
            )?,
            respawn: take_flag(&mut args, "--respawn"),
        },
        other => return Err(format!("unknown --mode `{other}`")),
    };
    if !args.is_empty() {
        return Err(format!("unknown node flags: {args:?}"));
    }
    Ok(NodeOpts {
        me: ProcessId::new(parse_num("--node", &me)?),
        n,
        t,
        seed,
        port_base,
        role,
    })
}

/// Parses a `--cluster` argv: netd knobs are stripped, the rest must be a
/// valid [`RunSpec`] flag set (with `--runtime netd` implied).
pub fn parse_cluster_args(mut args: Vec<String>) -> Result<ClusterOpts, String> {
    take_flag(&mut args, "--cluster");
    let port_base = match take_value(&mut args, "--port-base")? {
        Some(raw) => parse_num("--port-base", &raw)?,
        None => default_port_base(),
    };
    let slots: u64 = match take_value(&mut args, "--slots")? {
        Some(raw) => parse_num("--slots", &raw)?,
        None => 8,
    };
    let window: u64 = match take_value(&mut args, "--window")? {
        Some(raw) => parse_num("--window", &raw)?,
        None => 4,
    };
    let phase = match take_value(&mut args, "--phase")?.as_deref() {
        None | Some("both") => Phase::Both,
        Some("cells") => Phase::Cells,
        Some("kill9") => Phase::Kill9,
        Some(other) => return Err(format!("unknown --phase `{other}` (cells|kill9|both)")),
    };
    let timeout = match take_value(&mut args, "--timeout-secs")? {
        Some(raw) => Duration::from_secs(parse_num("--timeout-secs", &raw)?),
        None => Duration::from_secs(60),
    };
    if !args.iter().any(|a| a == "--runtime") {
        args.push("--runtime".into());
        args.push("netd".into());
    }
    let spec = RunSpec::from_args(&args)?;
    Ok(ClusterOpts {
        spec,
        port_base,
        slots,
        window,
        phase,
        timeout,
    })
}

/// `dex-netd` entry: dispatches `--cluster` vs `--node` argv forms.
pub fn main(args: Vec<String>) -> Result<(), String> {
    if args.iter().any(|a| a == "--cluster") {
        run_cluster(&parse_cluster_args(args)?)
    } else if args.iter().any(|a| a == "--node") {
        run_node(parse_node_args(args)?)
    } else {
        Err(concat!(
            "usage: dex-netd --cluster [spec flags] [--port-base P] [--slots K] ",
            "[--window W] [--phase cells|kill9|both] [--timeout-secs S]\n",
            "       (children are spawned internally via --node)"
        )
        .into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_line_round_trips_the_ledger() {
        let net = NetStats {
            sent: 10,
            delivered: 9,
            multicasts: 2,
            payload_clones: 0,
            bytes_on_wire: 512,
            sent_init: 3,
            sent_echo: 4,
            sent_batch: 1,
            sent_other: 2,
            echoes_batched: 6,
            max_depth: StepDepth::new(3),
            ..NetStats::default()
        };
        let line = format_stats_line(&net);
        let back = parse_stats_line(&line).expect("parses");
        assert_eq!(back, net);
        assert_eq!(parse_stats_line("STATS sent=oops"), None);
        assert_eq!(parse_stats_line("DECIDED value=1"), None);
    }

    #[test]
    fn node_argv_round_trips_both_roles() {
        let opts = parse_node_args(
            "--node 2 --mode consensus --n 5 --t 0 --seed 9 --port-base 23000 --propose 7"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("consensus argv");
        assert_eq!(opts.me, ProcessId::new(2));
        assert!(matches!(
            opts.role,
            Role::Consensus {
                propose: 7,
                aggregate: false
            }
        ));
        let opts = parse_node_args(
            "--node 1 --mode replica --n 5 --t 0 --seed 9 --port-base 23000 --wal /tmp/w.log --slots 8 --window 4 --respawn"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("replica argv");
        match opts.role {
            Role::Replica {
                slots,
                window,
                respawn,
                ..
            } => {
                assert_eq!((slots, window), (8, 4));
                assert!(respawn);
            }
            other => panic!("wrong role {other:?}"),
        }
    }

    #[test]
    fn cluster_argv_carries_spec_and_netd_knobs() {
        let opts = parse_cluster_args(
            "--cluster --n 5 --t 0 --workload unanimous:7 --runs 2 --seed 31 --slots 6 --phase cells"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .expect("cluster argv");
        assert_eq!(opts.spec.n, 5);
        assert_eq!(opts.spec.runtime, RuntimeSpec::Netd);
        assert_eq!(opts.slots, 6);
        assert_eq!(opts.phase, Phase::Cells);
        // Chaos is rejected up front: the kill -9 schedule is the fault.
        let err = parse_cluster_args(
            "--cluster --n 5 --t 0 --chaos drop:0.4"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .map(|o| run_cluster(&o));
        match err {
            Ok(Err(msg)) => assert!(msg.contains("chaos"), "{msg}"),
            other => panic!("expected chaos rejection, got {other:?}"),
        }
    }
}
