//! Deterministic fault injection between the [`Mesh`](crate::conn::Mesh)
//! and its real sockets.
//!
//! The simulator's [`ChaosSpec`] schedules (drop, dup, healing
//! partitions, crash silence windows) compile here into **per-connection
//! behavior on real TCP links**, so every robustness claim the simulated
//! runtimes make is falsifiable against actual network pathology. The
//! injection point is the writer/reader boundary inside the mesh: a
//! [`ChaosRuntime`] is consulted once per logical send (drop / dup /
//! hold verdicts, mirroring the simulator's fixed decision order:
//! partition hold → drop → dup → crash hold) and once per physical write
//! (mid-frame connection tears, for the reconnect suite).
//!
//! # Determinism story
//!
//! The simulator owns a single chaos RNG stream (seeded `seed ^`
//! [`CHAOS_SALT`]) and draws from it in delivery order — bit-exact
//! because the event queue is. Real sockets have no global order, so
//! netd splits the stream **per directed link**: link `me → to` draws
//! from `StdRng::seed_from_u64((seed ^ CHAOS_SALT) ^ splitmix64(me ≪ 32
//! | to))`. Each link's decision sequence is then a pure function of
//! `(seed, me, to)` — independent of scheduling, connection churn, or
//! how many frames the OS happens to coalesce. [`ChaosRuntime::sched_digest`]
//! fingerprints that sequence (an FNV-1a fold over the stream's first 64
//! draws plus the compiled schedule), and the cluster harness asserts the
//! digests are identical across repeated runs of the same seed: *the same
//! seed reproduces the same per-link fault trace.* Realized counters
//! (frames actually dropped/duplicated/held) are reported too, but only
//! the digests are compared — wall-clock runs legitimately differ in how
//! many frames each connection incarnation carries.
//!
//! Virtual schedule units map to wall clock through `scale_us`
//! (default 1000 µs per unit), so e.g. the MATRIX partition `[5, 120)`
//! spans `5 ms → 120 ms` of real time.

use dex_harness::spec::ChaosSpec;
use dex_simnet::{FaultSchedule, CHAOS_SALT};
use dex_types::{ProcessId, SystemConfig};
use rand::rngs::StdRng;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default wall-clock microseconds per virtual schedule unit.
pub const DEFAULT_SCALE_US: u64 = 1000;

/// SplitMix64 — the standard 64-bit seed scrambler, used to derive
/// per-link RNG seeds that differ in every bit even for adjacent ids.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the chaos layer decided for one outbound frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The frame never reaches the socket.
    Drop,
    /// The frame travels, possibly held and/or duplicated.
    Deliver {
        /// Earliest instant the writer may put it on the wire (partition
        /// or crash hold), `None` for immediate.
        not_before: Option<Instant>,
        /// When set, a duplicate copy is queued for this instant.
        dup_at: Option<Instant>,
    },
}

/// A deliberate mid-frame connection tear: the writer sends exactly
/// `offset` bytes of the frame, then kills the socket. Built only by
/// tests ([`ChaosRuntime::with_tears`]) — `ChaosSpec` schedules never
/// tear, they drop whole frames like the simulator does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TearPoint {
    /// Destination process of the torn link.
    pub to: usize,
    /// Zero-based index of the physical write attempt to tear.
    pub attempt: u64,
    /// Byte offset to cut at (clamped to `1..frame_len` at tear time, so
    /// the peer always observes a genuinely torn frame, never a clean
    /// boundary).
    pub offset: usize,
}

/// Per-destination-link mutable state: the dedicated RNG stream plus
/// realized counters for the trace report.
struct LinkChaos {
    rng: StdRng,
    /// Digest of the RNG stream + schedule, fixed at construction.
    sched_digest: u64,
    /// Logical frames offered to this link.
    frames: u64,
    drops: u64,
    dups: u64,
    held: u64,
    torn: u64,
    /// Physical write attempts (tear schedule index).
    write_attempts: u64,
}

/// The per-process fault injector: one compiled [`FaultSchedule`] (shared
/// with what the simulator would run) plus one RNG stream per outbound
/// link. Thread-safe — the mesh consults it from the caller thread
/// (`send`) and from per-peer writer threads (`tear_len`).
pub struct ChaosRuntime {
    schedule: FaultSchedule,
    me: ProcessId,
    start: Instant,
    scale_us: u64,
    links: Vec<Option<Mutex<LinkChaos>>>,
    tears: Vec<TearPoint>,
}

/// FNV-1a 64-bit fold.
fn fnv1a(acc: u64, word: u64) -> u64 {
    let mut h = acc;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ChaosRuntime {
    /// Compiles `spec` for process `me` of the `config` system, against a
    /// last-`f` fault budget (the netd placement), with the chaos RNG
    /// seeded from the run seed exactly like the simulator's stream.
    /// `scale_us` maps virtual schedule units to wall microseconds.
    pub fn new(
        spec: &ChaosSpec,
        config: SystemConfig,
        f: usize,
        me: ProcessId,
        seed: u64,
        scale_us: u64,
    ) -> Self {
        let schedule = spec.build_with_budget(config, f);
        schedule.validate(config.n());
        let base = seed ^ CHAOS_SALT;
        let links = (0..config.n())
            .map(|to| {
                if to == me.index() {
                    return None;
                }
                let link_seed = base ^ splitmix64(((me.index() as u64) << 32) | to as u64);
                let rng = StdRng::seed_from_u64(link_seed);
                // Fingerprint the stream: the first 64 draws pin the
                // entire decision sequence (StdRng is a PRF of its seed),
                // and folding the schedule's own shape in catches a spec
                // or compilation drift even when seeds collide.
                let mut probe = rng.clone();
                let mut digest = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
                for _ in 0..64 {
                    digest = fnv1a(digest, probe.random::<u64>());
                }
                digest = fnv1a(digest, schedule.links().len() as u64);
                digest = fnv1a(digest, schedule.partitions().len() as u64);
                digest = fnv1a(digest, schedule.crash_windows().len() as u64);
                Some(Mutex::new(LinkChaos {
                    rng,
                    sched_digest: digest,
                    frames: 0,
                    drops: 0,
                    dups: 0,
                    held: 0,
                    torn: 0,
                    write_attempts: 0,
                }))
            })
            .collect();
        ChaosRuntime {
            schedule,
            me,
            start: Instant::now(),
            scale_us: scale_us.max(1),
            links,
            tears: Vec::new(),
        }
    }

    /// A schedule-free injector that only tears connections at the given
    /// points — the reconnect-robustness suite's configuration.
    pub fn with_tears(n: usize, me: ProcessId, tears: Vec<TearPoint>) -> Self {
        let config = SystemConfig::new(n, 0).expect("n ≥ 1, t = 0 is always legal");
        let mut rt = ChaosRuntime::new(&ChaosSpec::None, config, 0, me, 0, DEFAULT_SCALE_US);
        rt.tears = tears;
        rt
    }

    /// Current virtual time in schedule units.
    fn now_units(&self) -> u64 {
        self.start.elapsed().as_micros() as u64 / self.scale_us
    }

    /// The wall instant at which virtual unit `u` is reached.
    fn instant_of(&self, u: u64) -> Instant {
        self.start + Duration::from_micros(u.saturating_mul(self.scale_us))
    }

    /// Decides the fate of one logical outbound frame to `to`, in the
    /// simulator's fixed order: partition hold → drop → dup → crash hold.
    pub fn outbound(&self, to: ProcessId) -> Verdict {
        let Some(link) = &self.links[to.index()] else {
            return Verdict::Deliver {
                not_before: None,
                dup_at: None,
            };
        };
        let mut link = link.lock().expect("chaos link lock");
        link.frames += 1;
        let at = self.now_units();
        let mut release = None;
        let mut deliver_units = at;
        if let Some(heal) = self.schedule.partition_hold(self.me, to, at) {
            release = Some(self.instant_of(heal));
            deliver_units = heal;
            link.held += 1;
        }
        let (p_drop, p_dup) = self.schedule.link_probs(self.me, to, at);
        if p_drop > 0.0 && link.rng.random_range(0.0f64..1.0) < p_drop {
            link.drops += 1;
            return Verdict::Drop;
        }
        let mut dup_at = None;
        if p_dup > 0.0 && link.rng.random_range(0.0f64..1.0) < p_dup {
            let jitter: u64 = link.rng.random_range(1u64..=8);
            dup_at = Some(self.instant_of(deliver_units + jitter));
            link.dups += 1;
        }
        match self.schedule.crash_hold(to, deliver_units) {
            Some(Some(recovery)) => {
                // The recipient is down: its traffic queues until recovery.
                release = Some(self.instant_of(recovery));
                link.held += 1;
            }
            Some(None) => {
                // The recipient never comes back; the frame is lost.
                link.drops += 1;
                return Verdict::Drop;
            }
            None => {}
        }
        Verdict::Deliver {
            not_before: release,
            dup_at,
        }
    }

    /// Consulted by the writer before each physical write to `to`:
    /// `Some(offset)` tears the connection after `offset` bytes of this
    /// frame. Offsets are clamped to `1..frame_len` so a tear is never a
    /// clean frame boundary.
    pub fn tear_len(&self, to: ProcessId, frame_len: usize) -> Option<usize> {
        let link = self.links[to.index()].as_ref()?;
        let mut link = link.lock().expect("chaos link lock");
        let attempt = link.write_attempts;
        link.write_attempts += 1;
        let hit = self
            .tears
            .iter()
            .find(|t| t.to == to.index() && t.attempt == attempt)?;
        link.torn += 1;
        Some(hit.offset.clamp(1, frame_len.saturating_sub(1).max(1)))
    }

    /// When `me` itself is inside a crash-silence window, the instant it
    /// recovers: the endpoint stalls its event loop until then, emulating
    /// the simulator's unscheduled crashed process (deliveries queue in
    /// the mesh channel and flush on recovery, exactly like the
    /// simulator's deferred in-window deliveries).
    pub fn self_resume_at(&self) -> Option<Instant> {
        match self.schedule.crash_hold(self.me, self.now_units()) {
            Some(Some(recovery)) => Some(self.instant_of(recovery)),
            // A never-recovering window cannot stall a real process
            // forever — the kill9 phase owns genuine process death.
            Some(None) | None => None,
        }
    }

    /// The compiled schedule (diagnostic / assertions).
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The deterministic per-link fault-trace digest for link `me → to`
    /// (`None` for self). Equal digests across runs ⇔ identical decision
    /// sequences.
    pub fn sched_digest(&self, to: ProcessId) -> Option<u64> {
        self.links[to.index()]
            .as_ref()
            .map(|l| l.lock().expect("chaos link lock").sched_digest)
    }

    /// One `CHAOS` report line per outbound link, in destination order:
    /// the digest (compared across runs) plus realized counters
    /// (informational). Parsed by the cluster harness via
    /// [`crate::cluster::parse_chaos_line`].
    pub fn trace_lines(&self) -> Vec<String> {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(to, link)| {
                let link = link.as_ref()?.lock().expect("chaos link lock");
                Some(format!(
                    "CHAOS to={} sched={:#018x} frames={} drops={} dups={} held={} torn={}",
                    to, link.sched_digest, link.frames, link.drops, link.dups, link.held, link.torn
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config7() -> SystemConfig {
        SystemConfig::new(7, 1).expect("n > 6t")
    }

    #[test]
    fn same_seed_reproduces_the_per_link_fault_trace() {
        let spec = ChaosSpec::DropHeavy { p: 0.4 };
        let a = ChaosRuntime::new(&spec, config7(), 1, ProcessId::new(2), 42, 1000);
        let b = ChaosRuntime::new(&spec, config7(), 1, ProcessId::new(2), 42, 1000);
        for to in 0..7 {
            assert_eq!(
                a.sched_digest(ProcessId::new(to)),
                b.sched_digest(ProcessId::new(to)),
                "link 2→{to} digest must be seed-deterministic"
            );
        }
        // Different seeds and different sources give different streams.
        let c = ChaosRuntime::new(&spec, config7(), 1, ProcessId::new(2), 43, 1000);
        let d = ChaosRuntime::new(&spec, config7(), 1, ProcessId::new(3), 42, 1000);
        assert_ne!(
            a.sched_digest(ProcessId::new(0)),
            c.sched_digest(ProcessId::new(0))
        );
        assert_ne!(
            a.sched_digest(ProcessId::new(0)),
            d.sched_digest(ProcessId::new(0))
        );
        // And the verdict *sequence* on a link replays draw for draw.
        let to = ProcessId::new(6); // last-1 placement: p6 is the faulty one
        let seq_a: Vec<Verdict> = (0..200).map(|_| a.outbound(to)).collect();
        let seq_b: Vec<Verdict> = (0..200).map(|_| b.outbound(to)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn drop_heavy_confines_losses_to_budget_links() {
        let spec = ChaosSpec::DropHeavy { p: 1.0 };
        // p6 is the budget process under last-1 placement: the 2→6 link
        // drops everything, correct↔correct links drop nothing.
        let rt = ChaosRuntime::new(&spec, config7(), 1, ProcessId::new(2), 7, 1000);
        assert_eq!(rt.outbound(ProcessId::new(6)), Verdict::Drop);
        assert_eq!(
            rt.outbound(ProcessId::new(3)),
            Verdict::Deliver {
                not_before: None,
                dup_at: None
            }
        );
        // With f = 0 the budget is empty and the schedule compiles empty:
        // nothing drops anywhere (exactly the simulator's behavior).
        let clean = ChaosRuntime::new(&spec, config7(), 0, ProcessId::new(2), 7, 1000);
        assert!(clean.schedule().is_empty());
        assert_eq!(
            clean.outbound(ProcessId::new(6)),
            Verdict::Deliver {
                not_before: None,
                dup_at: None
            }
        );
    }

    #[test]
    fn partition_holds_cross_cut_frames_until_heal() {
        // First ⌈7/2⌉ = 4 processes are cut from the rest over [5, 120).
        let spec = ChaosSpec::PartitionHeal { open: 5, heal: 120 };
        // Scale of 1 µs/unit: by the time we call outbound we are inside
        // the window (construction to call is far more than 5 µs... not
        // guaranteed — so use a huge window instead).
        let spec_now = ChaosSpec::PartitionHeal {
            open: 0,
            heal: 1_000_000,
        };
        let rt = ChaosRuntime::new(&spec_now, config7(), 0, ProcessId::new(0), 7, 1000);
        match rt.outbound(ProcessId::new(5)) {
            Verdict::Deliver {
                not_before: Some(_),
                ..
            } => {}
            other => panic!("cross-cut frame must be held, got {other:?}"),
        }
        // Same-side traffic flows freely.
        assert_eq!(
            rt.outbound(ProcessId::new(1)),
            Verdict::Deliver {
                not_before: None,
                dup_at: None
            }
        );
        // After the heal instant the cut is gone (probe the schedule
        // directly — wall clock cannot be fast-forwarded in a test).
        let sched = spec.build_with_budget(config7(), 0);
        assert_eq!(
            sched.partition_hold(ProcessId::new(0), ProcessId::new(5), 130),
            None
        );
    }

    #[test]
    fn crash_window_defers_inbound_and_stalls_the_victim() {
        let spec = ChaosSpec::CrashRecover {
            down: 1,
            up: 1_000_000,
        };
        // Victim choice mirrors the simulator: last correct
        // non-coordinator, here p6 (f = 0 ⇒ nobody is budget-faulty).
        let sched = spec.build_with_budget(config7(), 0);
        let victims: Vec<_> = sched.crash_windows().iter().map(|w| w.process).collect();
        assert_eq!(victims, vec![ProcessId::new(6)]);
        let rt = ChaosRuntime::new(&spec, config7(), 0, ProcessId::new(0), 7, 1);
        std::thread::sleep(Duration::from_millis(1)); // enter the window
        match rt.outbound(ProcessId::new(6)) {
            Verdict::Deliver {
                not_before: Some(_),
                ..
            } => {}
            other => panic!("frames to a crashed peer must queue, got {other:?}"),
        }
        // The victim's own runtime stalls its event loop.
        let victim = ChaosRuntime::new(&spec, config7(), 0, ProcessId::new(6), 7, 1);
        std::thread::sleep(Duration::from_millis(1));
        assert!(victim.self_resume_at().is_some());
        // Everyone else keeps running.
        assert!(rt.self_resume_at().is_none());
    }

    #[test]
    fn dup_heavy_duplicates_with_forward_jitter() {
        let spec = ChaosSpec::DupHeavy { p: 1.0 };
        let rt = ChaosRuntime::new(&spec, config7(), 0, ProcessId::new(1), 9, 1000);
        match rt.outbound(ProcessId::new(2)) {
            Verdict::Deliver {
                not_before: None,
                dup_at: Some(at),
            } => assert!(at > Instant::now(), "duplicate lands in the future"),
            other => panic!("p = 1 must duplicate, got {other:?}"),
        }
    }

    #[test]
    fn tear_points_fire_on_the_scheduled_attempt_with_clamped_offset() {
        let rt = ChaosRuntime::with_tears(
            3,
            ProcessId::new(0),
            vec![
                TearPoint {
                    to: 1,
                    attempt: 1,
                    offset: 5,
                },
                TearPoint {
                    to: 1,
                    attempt: 2,
                    offset: 10_000,
                },
            ],
        );
        let to = ProcessId::new(1);
        assert_eq!(rt.tear_len(to, 20), None, "attempt 0 untouched");
        assert_eq!(rt.tear_len(to, 20), Some(5), "attempt 1 tears at 5");
        assert_eq!(
            rt.tear_len(to, 20),
            Some(19),
            "oversized offsets clamp inside the frame"
        );
        assert_eq!(rt.tear_len(to, 20), None);
        // Other links are untouched, and the trace reports the tears.
        assert_eq!(rt.tear_len(ProcessId::new(2), 20), None);
        let lines = rt.trace_lines();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("to=1") && lines[0].contains("torn=2"),
            "{lines:?}"
        );
    }

    #[test]
    fn trace_lines_carry_digests_and_realized_counters() {
        let spec = ChaosSpec::DropHeavy { p: 1.0 };
        let rt = ChaosRuntime::new(&spec, config7(), 1, ProcessId::new(0), 11, 1000);
        let _ = rt.outbound(ProcessId::new(6)); // dropped (budget link)
        let _ = rt.outbound(ProcessId::new(1)); // delivered
        let lines = rt.trace_lines();
        assert_eq!(lines.len(), 6, "one line per outbound link");
        let l6 = lines.iter().find(|l| l.contains("to=6 ")).expect("p6 line");
        assert!(l6.contains("frames=1") && l6.contains("drops=1"), "{l6}");
        assert!(l6.contains("sched=0x"), "{l6}");
    }
}
