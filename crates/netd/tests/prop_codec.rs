//! Property-based wire-codec and framing tests: arbitrary consensus and
//! replication messages survive encode → decode bit-exactly, arbitrary
//! byte mutilations are rejected (never panicking, never mis-decoding),
//! and the frame accumulator treats every torn prefix of a valid stream
//! as "wait for more bytes" — the `WalCodec` contract, ported to TCP.

use dex_broadcast::IdbMessage;
use dex_core::DexMsg;
use dex_netd::frame::{encode_frame, FrameBuf, FrameError};
use dex_netd::WireCodec;
use dex_replication::{ReplicaMsg, SlotMsg};
use dex_types::ProcessId;
use dex_underlying::OracleMsg;
use proptest::prelude::*;

fn pid() -> impl Strategy<Value = ProcessId> {
    (0usize..64).prop_map(ProcessId::new)
}

fn oracle_msg() -> impl Strategy<Value = OracleMsg<u64>> {
    prop_oneof![
        any::<u64>().prop_map(OracleMsg::Propose),
        any::<u64>().prop_map(OracleMsg::Decide),
    ]
}

fn idb_msg() -> impl Strategy<Value = IdbMessage<ProcessId, u64>> {
    prop_oneof![
        (pid(), any::<u64>()).prop_map(|(key, value)| IdbMessage::Init { key, value }),
        (pid(), any::<u64>()).prop_map(|(key, value)| IdbMessage::Echo { key, value }),
    ]
}

fn slot_msg() -> impl Strategy<Value = SlotMsg<u64>> {
    prop_oneof![
        any::<u64>().prop_map(DexMsg::Proposal),
        idb_msg().prop_map(DexMsg::Idb),
        oracle_msg().prop_map(DexMsg::Uc),
        proptest::collection::vec((pid(), any::<u64>()), 0..8).prop_map(DexMsg::EchoBatch),
        Just(DexMsg::EchoFlushTick),
    ]
}

fn replica_msg() -> impl Strategy<Value = ReplicaMsg<u64>> {
    prop_oneof![
        (any::<u64>(), slot_msg()).prop_map(|(slot, inner)| ReplicaMsg::Slot { slot, inner }),
        any::<u64>().prop_map(|from_slot| ReplicaMsg::CatchUpRequest { from_slot }),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8)
            .prop_map(|slots| ReplicaMsg::CatchUpReply { slots }),
        Just(ReplicaMsg::CatchUpTick),
        proptest::collection::vec((any::<u64>(), oracle_msg()), 0..8)
            .prop_map(|entries| ReplicaMsg::UcBatch { entries }),
        Just(ReplicaMsg::UcFlushTick),
        proptest::collection::vec((any::<u64>(), pid(), any::<u64>()), 0..8)
            .prop_map(|entries| ReplicaMsg::EchoBatch { entries }),
        Just(ReplicaMsg::EchoFlushTick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every consensus slot message round-trips bit-exactly.
    #[test]
    fn slot_msgs_round_trip(msg in slot_msg()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(SlotMsg::<u64>::from_bytes(&bytes), Some(msg));
    }

    /// Every replication message round-trips bit-exactly.
    #[test]
    fn replica_msgs_round_trip(msg in replica_msg()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(ReplicaMsg::<u64>::from_bytes(&bytes), Some(msg));
    }

    /// `from_bytes` demands exact consumption: any trailing garbage
    /// rejects the whole payload rather than silently ignoring bytes.
    #[test]
    fn trailing_garbage_rejects(msg in replica_msg(), tail in proptest::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = msg.to_bytes();
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(ReplicaMsg::<u64>::from_bytes(&bytes), None);
    }

    /// Every strict prefix of an encoding is rejected (short read), and
    /// never panics.
    #[test]
    fn truncation_rejects(msg in replica_msg(), cut in any::<prop::sample::Index>()) {
        let bytes = msg.to_bytes();
        let cut = cut.index(bytes.len().max(1));
        if cut < bytes.len() {
            prop_assert_eq!(ReplicaMsg::<u64>::from_bytes(&bytes[..cut]), None);
        }
    }

    /// Arbitrary byte soup never panics the decoder. (It may decode — a
    /// short random prefix can be a valid fixed-width message — but it
    /// must return, not crash.)
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = ReplicaMsg::<u64>::from_bytes(&bytes);
        let _ = SlotMsg::<u64>::from_bytes(&bytes);
    }

    /// A stream of frames fed through arbitrary chunk boundaries yields
    /// exactly the original messages: every partial prefix is a torn
    /// tail, never an error, and nothing is lost or duplicated.
    #[test]
    fn framed_stream_survives_arbitrary_chunking(
        msgs in proptest::collection::vec(replica_msg(), 1..8),
        chunks in proptest::collection::vec(1usize..40, 1..64),
    ) {
        let mut wire = Vec::new();
        for (i, msg) in msgs.iter().enumerate() {
            wire.extend_from_slice(&encode_frame(3, i as u32, &msg.to_bytes()));
        }
        let mut buf = FrameBuf::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut chunk_iter = chunks.iter().cycle();
        while pos < wire.len() {
            let take = (*chunk_iter.next().expect("cycle")).min(wire.len() - pos);
            buf.extend(&wire[pos..pos + take]);
            pos += take;
            while let Some(frame) = buf.next_frame().expect("valid stream never corrupts") {
                prop_assert_eq!(frame.depth as usize, got.len());
                got.push(ReplicaMsg::<u64>::from_bytes(&frame.payload).expect("decodes"));
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(buf.pending(), 0);
    }

    /// A length prefix outside the structural bounds condemns the stream
    /// with `Corrupt` — framing never resynchronizes in-stream.
    #[test]
    fn insane_length_prefix_is_corrupt(len in prop_oneof![Just(0u32), 1u32..5, (16u32 << 20) + 1..u32::MAX]) {
        let mut buf = FrameBuf::new();
        buf.extend(&len.to_le_bytes());
        buf.extend(&[0u8; 8]);
        prop_assert_eq!(buf.next_frame(), Err(FrameError::Corrupt));
    }
}
