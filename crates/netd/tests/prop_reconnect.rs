//! Property-based reconnect-robustness tests: connections torn at
//! arbitrary byte offsets mid-frame must never lose or duplicate
//! traffic.
//!
//! [`ChaosRuntime::with_tears`] schedules surgical tears — (link, write
//! attempt, byte offset) triples — that the mesh writer executes as a
//! strict-prefix write followed by a hard socket shutdown, requeueing
//! the condemned frame at the head of the FIFO. The victim of the torn
//! bytes sees a partial frame die with the connection (the `FrameBuf`
//! "wait for more" contract from `prop_codec`), the dialer backs off and
//! re-hellos, and the requeued frame crosses the fresh connection. Two
//! properties follow and are checked here under arbitrary schedules:
//!
//! 1. a raw mesh delivers every frame exactly once — no loss (the tear
//!    requeues before any byte is acknowledged delivered) and no
//!    duplication (the torn prefix is never completed by the peer);
//! 2. a 3-replica replicated log over torn links still commits every
//!    slot with one digest — a tear's `shutdown(Both)` also condemns
//!    in-flight frames from the *opposite* direction (their writer saw
//!    the doomed socket accept them before the RST landed), so the
//!    paper's reliable-links assumption (§2.1) is restored the way a
//!    real deployment restores it: the [`Reliable`] retransmission layer
//!    riding over TCP, acked and resent until every gap closes.

use dex_core::{Reliable, ResendPolicy};
use dex_harness::spec::AddressTable;
use dex_netd::frame::encode_frame;
use dex_netd::{ChaosRuntime, Endpoint, Mesh, TearPoint};
use dex_replication::{Replica, StateMachine, TotalOrder};
use dex_types::{ProcessId, SystemConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Each proptest case gets its own port block so torn-and-reconnecting
/// listeners from one case can never collide with the next. The 22xxx
/// range is distinct from the bases used by the conn (40000+), endpoint
/// (28000+) and listener (20000+) unit tests, and sits *below* the
/// kernel's ephemeral range (32768+): the reconnect churn burns through
/// ephemeral ports, and a dialer's outbound socket squatting on a later
/// case's listen port would fail that bind with `AddrInUse`.
fn next_port_base() -> u16 {
    static NEXT: AtomicU16 = AtomicU16::new(0);
    let block = NEXT.fetch_add(1, Ordering::Relaxed) % 512;
    22000 + (std::process::id() % 2048) as u16 + block * 8
}

/// A tear schedule for one directed link: which physical write attempts
/// to cut, and where. Offsets are clamped to `1..frame_len` at tear
/// time, so any generated value exercises a genuine mid-frame cut.
fn tears(to: usize) -> impl Strategy<Value = Vec<TearPoint>> {
    proptest::collection::vec((0u64..8, 1usize..4096), 1..4).prop_map(move |points| {
        points
            .into_iter()
            .map(|(attempt, offset)| TearPoint {
                to,
                attempt,
                offset,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// No matter where the link is cut, a raw two-process mesh delivers
    /// every frame exactly once. The sender may sit on either side of
    /// the dial (higher id dials lower), so both healing paths run: the
    /// dialer tearing its own socket and redialing, and the acceptor
    /// tearing so the remote dialer must notice the dead socket.
    #[test]
    fn torn_connections_deliver_every_frame_exactly_once(
        sender in 0usize..2,
        frames in 4u64..10,
        schedule in proptest::collection::vec((0u64..8, 1usize..4096), 1..4),
    ) {
        let n = 2;
        let base = next_port_base();
        let receiver = 1 - sender;
        let tears: Vec<TearPoint> = schedule
            .into_iter()
            .map(|(attempt, offset)| TearPoint { to: receiver, attempt, offset })
            .collect();

        let rx_thread = std::thread::spawn(move || {
            let mesh = Mesh::with_net(
                ProcessId::new(receiver),
                AddressTable::localhost(n, base),
                None,
            )
            .expect("bind receiver");
            let mut seqs = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(20);
            while (seqs.len() as u64) < frames && Instant::now() < deadline {
                if let Some(d) = mesh.recv_timeout(Duration::from_millis(50)) {
                    let bytes: [u8; 8] = d.payload[..8].try_into().expect("seq prefix");
                    seqs.push(u64::from_le_bytes(bytes));
                }
            }
            // Linger briefly: a duplicate would arrive right behind the
            // final expected frame, on the same healed connection.
            let linger = Instant::now() + Duration::from_millis(250);
            while Instant::now() < linger {
                if let Some(d) = mesh.recv_timeout(Duration::from_millis(50)) {
                    let bytes: [u8; 8] = d.payload[..8].try_into().expect("seq prefix");
                    seqs.push(u64::from_le_bytes(bytes));
                }
            }
            mesh.shutdown();
            seqs
        });

        let chaos = Arc::new(ChaosRuntime::with_tears(n, ProcessId::new(sender), tears));
        let mesh = Mesh::with_net(
            ProcessId::new(sender),
            AddressTable::localhost(n, base),
            Some(chaos),
        )
        .expect("bind sender");
        for seq in 0..frames {
            // Varying payload sizes put the clamped tear offsets at
            // different positions relative to each frame boundary.
            let mut payload = seq.to_le_bytes().to_vec();
            payload.resize(8 + (seq as usize * 37) % 480, 0xA5);
            mesh.send(ProcessId::new(receiver), encode_frame(7, 0, &payload).into());
        }

        let mut seqs = rx_thread.join().expect("receiver thread");
        mesh.shutdown();
        seqs.sort_unstable();
        // Exactly once: the sorted multiset is 0..frames with no gap
        // (a lost tear victim) and no repeat (a completed torn prefix).
        prop_assert_eq!(seqs, (0..frames).collect::<Vec<_>>());
    }

    /// A 3-replica replicated log (n = 3, t = 0, contested per-replica
    /// pending streams) commits every slot to one digest even when every
    /// replica carries its own arbitrary tear schedule. Tears lose more
    /// than the torn frame — opposite-direction frames in flight on the
    /// condemned socket die too — so the replicas run under the
    /// [`Reliable`] resend layer, which re-sends unacked messages until
    /// the healed connection carries them. Exactly-once at the decision
    /// level: a lost decision would leave a committed prefix short of
    /// `slots`, a duplicated or reordered one would fork the digests.
    #[test]
    fn replicated_log_converges_under_arbitrary_mid_frame_tears(
        seed in 0u64..1 << 32,
        link_tears in proptest::collection::vec(tears(0), 3..4),
    ) {
        let n = 3;
        let slots = 4u64;
        let base = next_port_base();
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for (i, mut tears) in link_tears.into_iter().enumerate() {
            // Retarget each process's schedule at its two real peers.
            for (k, t) in tears.iter_mut().enumerate() {
                t.to = (i + 1 + k % (n - 1)) % n;
            }
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let cfg = SystemConfig::new(n, 0).expect("n=3 t=0");
                let me = ProcessId::new(i);
                // Contested slots: each replica pushes its own pending
                // stream, so commits ride the coordinator fallback and a
                // lost frame cannot be recomputed locally.
                let pending: Vec<u64> =
                    (0..slots).map(|s| seed ^ ((i as u64) << 32) ^ s).collect();
                let replica: Replica<TotalOrder<u64>> =
                    Replica::new(cfg, me, ProcessId::new(0), pending, slots);
                // Virtual units are microseconds on netd: a 10 ms RTO
                // rides out the mesh's reconnect backoff (20 ms min)
                // within the retry budget.
                let reliable = Reliable::new(
                    replica,
                    ResendPolicy {
                        rto: 10_000,
                        backoff_cap: 4,
                        max_attempts: 12,
                    },
                );
                let chaos = Arc::new(ChaosRuntime::with_tears(n, me, tears));
                let mut ep = Endpoint::with_net(
                    reliable,
                    me,
                    AddressTable::localhost(n, base),
                    seed,
                    Some(chaos),
                )
                .expect("bind endpoint");
                ep.boot();
                let deadline = Instant::now() + Duration::from_secs(30);
                let mut counted = false;
                // Keep serving until everyone commits the full prefix:
                // a finished replica still answers catch-up requests.
                while done.load(Ordering::Acquire) < n && Instant::now() < deadline {
                    ep.pump(Duration::from_millis(10));
                    if !counted && ep.actor().inner().log().committed_prefix() as u64 >= slots {
                        counted = true;
                        done.fetch_add(1, Ordering::AcqRel);
                    }
                }
                let prefix = ep.actor().inner().log().committed_prefix() as u64;
                if prefix < slots {
                    eprintln!(
                        "replica {} stuck: prefix={} connected={} decode_failures={} \
                         resends={} abandoned={} unacked={}",
                        i,
                        prefix,
                        ep.connected(),
                        ep.decode_failures,
                        ep.actor().resends(),
                        ep.actor().abandoned(),
                        ep.actor().unacked(),
                    );
                }
                (prefix, ep.actor().inner().machine().digest())
            }));
        }
        let results: Vec<(u64, u64)> =
            handles.into_iter().map(|h| h.join().expect("replica thread")).collect();
        for (i, (prefix, _)) in results.iter().enumerate() {
            prop_assert_eq!(
                *prefix, slots,
                "replica {} committed {} of {} slots", i, prefix, slots
            );
        }
        prop_assert_eq!(results[0].1, results[1].1);
        prop_assert_eq!(results[1].1, results[2].1);
    }
}
