//! Crash-model one-step consensus baselines — the upper rows of Table 1.
//!
//! The paper's Table 1 also lists crash-failure-model algorithms:
//! Brasileiro et al. \[2\] (`3t+1`, one-step on unanimous inputs) and the
//! adaptive condition-based line of Izumi–Masuzawa \[8\] (`3t+1`,
//! condition-based). These run under *crash* faults only (a faulty process
//! stops sending; it never lies), which our harness models with the
//! `Silent` adversary.
//!
//! Two state machines:
//!
//! * `Brasileiro` rule ([`CrashOneStep`] with [`CrashRule::Brasileiro`]) — from "Consensus in One Communication Step"
//!   (Brasileiro, Greve, Mostéfaoui, Raynal, 2001): broadcast the value;
//!   upon `n − t` receipts, decide if **all** are equal; adopt a value with
//!   at least `n − 2t` copies as the underlying-consensus proposal (at most
//!   one such value can exist at every process once somebody decided, by
//!   quorum intersection at `n > 3t`).
//!
//! * `Adaptive` rule ([`CrashOneStep`] with [`CrashRule::Adaptive`]) — an adaptive condition-based one-step rule
//!   in the spirit of \[8\]: re-evaluated on *every* receipt, decide
//!   `1st(J)` as soon as `margin(J) > 2·(n − |J|)`. Since a view can never
//!   contain entries from crashed processes, `n − |J| ≥ f`, so this is
//!   exactly the adaptive behaviour: inputs with margin `> 2f` decide in
//!   one step when only `f` processes actually crash. Safety argument (all
//!   views are sub-views of the *same* input `I` — crash model):
//!   - *1-step vs 1-step*: if `p` decides `v` with `margin(J) > 2m_p`
//!     (`m_p = n − |J|` entries missing), then in `I` the margin of `v`
//!     is `> m_p ≥ 0`, so `1st(I) = v`; a second decider's value equally
//!     forces `1st(I)`, hence both equal.
//!   - *1-step vs fallback*: `margin(I) > m_p ≥ f`, so every final view
//!     (missing exactly the `f` crashed entries) still has `1st = v`, and
//!     every correct process proposes `v` to the underlying consensus,
//!     whose unanimity finishes the argument.
//!
//! Neither algorithm is safe against Byzantine lies — that is Table 1's
//! point — and the crash-row experiment only drives them with crash
//! adversaries.

use crate::bosco::flush;
use dex_obs::{obs_code, EventKind, Recorder, Scheme, ViewTag};
use dex_simnet::{Actor, Context, Time};
use dex_types::{ProcessId, StepDepth, SystemConfig, Value, View};
use dex_underlying::{Outbox, UnderlyingConsensus};
use rand::rngs::StdRng;

/// Wire messages of the crash-model algorithms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CrashMsg<V, U> {
    /// The single round of value broadcasts.
    Value(V),
    /// Underlying-consensus traffic.
    Uc(U),
}

/// Which one-step rule a [`CrashOneStep`] instance runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashRule {
    /// Brasileiro et al. \[2\]: single evaluation at `n − t` receipts;
    /// decide only on a unanimous sample.
    Brasileiro,
    /// Adaptive condition-based rule (spirit of \[8\]): decide whenever
    /// `margin(J) > 2·(n − |J|)`, re-checked on every receipt.
    Adaptive,
}

impl CrashRule {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CrashRule::Brasileiro => "brasileiro",
            CrashRule::Adaptive => "crash-adaptive",
        }
    }
}

/// How a crash-model decision was reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPath {
    /// The one-step rule fired.
    OneStep,
    /// Adopted from the underlying consensus.
    Underlying,
}

/// A decision with its mechanism.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrashDecision<V> {
    /// The decided value.
    pub value: V,
    /// The mechanism that produced it.
    pub path: CrashPath,
}

/// One process of a crash-model one-step consensus.
#[derive(Debug)]
pub struct CrashOneStep<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    config: SystemConfig,
    me: ProcessId,
    rule: CrashRule,
    uc: U,
    own: Option<V>,
    view: View<V>,
    evaluated: bool,
    uc_proposed: bool,
    decided: Option<CrashDecision<V>>,
    /// Reusable buffer for underlying-consensus output.
    uc_out: Outbox<U::Msg>,
}

impl<V, U> CrashOneStep<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    /// Creates one process's instance.
    pub fn new(config: SystemConfig, me: ProcessId, rule: CrashRule, uc: U) -> Self {
        CrashOneStep {
            config,
            me,
            rule,
            uc,
            own: None,
            view: View::bottom(config.n()),
            evaluated: false,
            uc_proposed: false,
            decided: None,
            uc_out: Outbox::new(),
        }
    }

    /// The local decision, if any.
    pub fn decision(&self) -> Option<&CrashDecision<V>> {
        self.decided.as_ref()
    }

    /// The configured rule.
    pub fn rule(&self) -> CrashRule {
        self.rule
    }

    /// Broadcasts the value (call exactly once).
    pub fn propose(&mut self, value: V, _rng: &mut StdRng, out: &mut Outbox<CrashMsg<V, U::Msg>>) {
        if self.own.is_some() {
            return;
        }
        self.own = Some(value.clone());
        self.view.set(self.me, value.clone());
        out.broadcast(CrashMsg::Value(value));
    }

    /// Feeds one received message; returns a newly made decision.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &CrashMsg<V, U::Msg>,
        rng: &mut StdRng,
        out: &mut Outbox<CrashMsg<V, U::Msg>>,
    ) -> Option<CrashDecision<V>> {
        match msg {
            CrashMsg::Value(v) => self.on_value(from, v, rng, out),
            CrashMsg::Uc(m) => {
                self.uc.on_message(from, m, rng, &mut self.uc_out);
                forward_uc(&mut self.uc_out, out);
                if self.decided.is_none() {
                    if let Some(v) = self.uc.decision() {
                        let d = CrashDecision {
                            value: v.clone(),
                            path: CrashPath::Underlying,
                        };
                        self.decided = Some(d.clone());
                        return Some(d);
                    }
                }
                None
            }
        }
    }

    fn on_value(
        &mut self,
        from: ProcessId,
        v: &V,
        rng: &mut StdRng,
        out: &mut Outbox<CrashMsg<V, U::Msg>>,
    ) -> Option<CrashDecision<V>> {
        if self.view.get(from).is_none() {
            self.view.set(from, v.clone());
        }
        match self.rule {
            CrashRule::Brasileiro => self.brasileiro_step(rng, out),
            CrashRule::Adaptive => self.adaptive_step(rng, out),
        }
    }

    /// \[2\]: one evaluation at exactly `n − t` receipts.
    fn brasileiro_step(
        &mut self,
        rng: &mut StdRng,
        out: &mut Outbox<CrashMsg<V, U::Msg>>,
    ) -> Option<CrashDecision<V>> {
        if self.evaluated || self.view.len_non_default() < self.config.quorum() {
            return None;
        }
        self.evaluated = true;
        let mut decision = None;
        let (first, count) = self.view.first_with_count().expect("quorum entries");
        let (first, count) = (first.clone(), count);
        if count == self.view.len_non_default() && self.decided.is_none() {
            // All received values are equal: decide.
            let d = CrashDecision {
                value: first.clone(),
                path: CrashPath::OneStep,
            };
            self.decided = Some(d.clone());
            decision = Some(d);
        }
        // Proposal adoption: a value with ≥ n − 2t copies (unique whenever
        // some process decided, since 2(n − 2t) > n − t for n > 3t). Only
        // the most frequent value can hold n − 2t > (n − t)/2 copies of a
        // quorum-sized view, so the top tally entry settles it.
        let est = if count >= self.config.echo_threshold() {
            first
        } else {
            self.own.clone().expect("proposed before values arrive")
        };
        self.uc_proposed = true;
        self.uc.propose(est, rng, &mut self.uc_out);
        forward_uc(&mut self.uc_out, out);
        decision
    }

    /// Adaptive rule: re-checked on every receipt; UC activated at `n − t`.
    fn adaptive_step(
        &mut self,
        rng: &mut StdRng,
        out: &mut Outbox<CrashMsg<V, U::Msg>>,
    ) -> Option<CrashDecision<V>> {
        let missing = self.config.n() - self.view.len_non_default();
        let mut decision = None;
        if self.decided.is_none() && self.view.frequency_margin() > 2 * missing {
            let d = CrashDecision {
                value: self.view.first().expect("non-empty view").clone(),
                path: CrashPath::OneStep,
            };
            self.decided = Some(d.clone());
            decision = Some(d);
        }
        if !self.uc_proposed && self.view.len_non_default() >= self.config.quorum() {
            self.uc_proposed = true;
            let est = self.view.first().expect("quorum entries").clone();
            self.uc.propose(est, rng, &mut self.uc_out);
            forward_uc(&mut self.uc_out, out);
        }
        decision
    }
}

impl<V, U> dex_adversary::ProtocolForgery for CrashMsg<V, U>
where
    V: Value,
    U: Clone + core::fmt::Debug + Send + 'static,
{
    type Value = V;

    fn forge_proposal(_me: ProcessId, _to: ProcessId, value: V) -> Vec<Self> {
        vec![CrashMsg::Value(value)]
    }
}

fn forward_uc<V, U>(uc_out: &mut Outbox<U>, out: &mut Outbox<CrashMsg<V, U>>) {
    uc_out.map_drain_into(out, CrashMsg::Uc);
}

/// A decision as observed inside a simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrashRecord<V> {
    /// The decided value.
    pub value: V,
    /// The mechanism that produced it.
    pub path: CrashPath,
    /// Causal step depth of the decision.
    pub depth: StepDepth,
    /// Virtual time of the decision.
    pub at: Time,
}

/// Simulation adapter for [`CrashOneStep`].
#[derive(Debug)]
pub struct CrashActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    process: CrashOneStep<V, U>,
    proposal: V,
    decision: Option<CrashRecord<V>>,
    obs: Recorder,
}

impl<V, U> CrashActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    /// Creates the actor; it proposes `proposal` at simulation start.
    pub fn new(process: CrashOneStep<V, U>, proposal: V) -> Self {
        CrashActor {
            process,
            proposal,
            decision: None,
            obs: Recorder::disabled(),
        }
    }

    /// Turns on structured event recording (see `dex-obs`) for process
    /// index `me`.
    pub fn enable_obs(&mut self, me: u16) {
        self.obs = Recorder::new(me);
    }

    /// The structured-event recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// The recorded decision, if any.
    pub fn decision(&self) -> Option<&CrashRecord<V>> {
        self.decision.as_ref()
    }
}

impl<V, U> Actor for CrashActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V> + Send + 'static,
{
    type Msg = CrashMsg<V, U::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let v = self.proposal.clone();
        if self.obs.is_active() {
            self.obs.record(EventKind::ViewSet {
                view: ViewTag::J1,
                origin: self.obs.me(),
                code: obs_code(&v),
            });
        }
        self.process.propose(v, ctx.rng(), &mut out);
        flush(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        // First value wins in the receipt view: record fresh entries only.
        if self.obs.is_active() {
            if let CrashMsg::Value(v) = msg {
                if self.process.view.get(from).is_none() {
                    self.obs.record(EventKind::ViewSet {
                        view: ViewTag::J1,
                        origin: from.index() as u16,
                        code: obs_code(v),
                    });
                }
            }
        }
        let mut out = Outbox::new();
        let d = self.process.on_message(from, msg, ctx.rng(), &mut out);
        flush(&mut out, ctx);
        if let Some(d) = d {
            self.obs.record(EventKind::Decide {
                scheme: match d.path {
                    CrashPath::OneStep => Scheme::OneStep,
                    CrashPath::Underlying => Scheme::Fallback,
                },
                code: obs_code(&d.value),
            });
            self.decision = Some(CrashRecord {
                value: d.value,
                path: d.path,
                depth: ctx.depth(),
                at: ctx.now(),
            });
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        self.obs.active_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_underlying::{OracleConsensus, OracleMsg};

    type Proc = CrashOneStep<u64, OracleConsensus<u64>>;
    type Out = Outbox<CrashMsg<u64, OracleMsg<u64>>>;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn proc(n: usize, t: usize, rule: CrashRule) -> Proc {
        let cfg = SystemConfig::new(n, t).unwrap();
        CrashOneStep::new(cfg, p(0), rule, OracleConsensus::new(cfg, p(0), p(0)))
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn brasileiro_decides_on_unanimous_sample() {
        // n = 4, t = 1 (crash model: 3t + 1).
        let mut pr = proc(4, 1, CrashRule::Brasileiro);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        assert!(pr
            .on_message(p(1), &CrashMsg::Value(5), &mut rng(), &mut out)
            .is_none());
        let d = pr
            .on_message(p(2), &CrashMsg::Value(5), &mut rng(), &mut out)
            .expect("3 unanimous receipts at n - t = 3");
        assert_eq!(d.value, 5);
        assert_eq!(d.path, CrashPath::OneStep);
    }

    #[test]
    fn brasileiro_mixed_sample_adopts_majority() {
        let mut pr = proc(4, 1, CrashRule::Brasileiro);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        out.drain();
        pr.on_message(p(1), &CrashMsg::Value(5), &mut rng(), &mut out);
        let d = pr.on_message(p(2), &CrashMsg::Value(9), &mut rng(), &mut out);
        assert!(d.is_none(), "not unanimous");
        // n − 2t = 2 copies of 5 ⇒ est = 5.
        let sent = out.drain();
        assert!(sent
            .iter()
            .any(|(_, m)| matches!(m, CrashMsg::Uc(OracleMsg::Propose(5)))));
    }

    #[test]
    fn brasileiro_evaluates_once() {
        let mut pr = proc(4, 1, CrashRule::Brasileiro);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        pr.on_message(p(1), &CrashMsg::Value(9), &mut rng(), &mut out);
        pr.on_message(p(2), &CrashMsg::Value(5), &mut rng(), &mut out);
        // The 4th value would make the view unanimous-majority, but the
        // rule already fired.
        assert!(pr
            .on_message(p(3), &CrashMsg::Value(5), &mut rng(), &mut out)
            .is_none());
        assert!(pr.decision().is_none());
    }

    #[test]
    fn adaptive_rule_fires_exactly_at_margin_threshold() {
        // n = 7, t = 2 (crash: 3t + 1). With 6 entries (missing 1), the
        // rule needs margin > 2.
        let mut pr = proc(7, 2, CrashRule::Adaptive);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        for j in 1..4 {
            // 4 fives, missing 3 ⇒ margin 4 ≤ 6: no decision.
            assert!(pr
                .on_message(p(j), &CrashMsg::Value(5), &mut rng(), &mut out)
                .is_none());
        }
        assert!(pr
            .on_message(p(4), &CrashMsg::Value(9), &mut rng(), &mut out)
            .is_none()); // 5 entries, margin 3 ≤ 4
        let d = pr
            .on_message(p(5), &CrashMsg::Value(5), &mut rng(), &mut out)
            .expect("6 entries, margin 5 - 1 = 4 > 2·1 = 2");
        assert_eq!(d.value, 5);
        assert_eq!(d.path, CrashPath::OneStep);
    }

    #[test]
    fn adaptive_rule_is_adaptive() {
        // With all 7 entries present (f = 0) even margin 1 suffices… margin
        // must be > 0: 4-vs-3 has margin 1 > 0 ⇒ one-step with no crashes!
        let mut pr = proc(7, 2, CrashRule::Adaptive);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        for j in 1..4 {
            pr.on_message(p(j), &CrashMsg::Value(5), &mut rng(), &mut out);
        }
        for j in 4..6 {
            assert!(pr
                .on_message(p(j), &CrashMsg::Value(9), &mut rng(), &mut out)
                .is_none());
        }
        let d = pr
            .on_message(p(6), &CrashMsg::Value(9), &mut rng(), &mut out)
            .expect("full view, margin 1 > 0");
        assert_eq!(d.value, 5);
    }

    #[test]
    fn uc_decision_adopted_when_one_step_fails() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let mut pr: Proc = CrashOneStep::new(
            cfg,
            p(1),
            CrashRule::Brasileiro,
            OracleConsensus::new(cfg, p(1), p(0)),
        );
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        let d = pr
            .on_message(
                p(0),
                &CrashMsg::Uc(OracleMsg::Decide(9)),
                &mut rng(),
                &mut out,
            )
            .expect("adopt UC decision");
        assert_eq!(d.value, 9);
        assert_eq!(d.path, CrashPath::Underlying);
    }

    #[test]
    fn rule_labels() {
        assert_eq!(CrashRule::Brasileiro.label(), "brasileiro");
        assert_eq!(CrashRule::Adaptive.label(), "crash-adaptive");
    }
}
