//! The non-expedited baseline: go straight to the underlying consensus.

use crate::bosco::flush;
use dex_obs::{obs_code, EventKind, Recorder, Scheme};
use dex_simnet::{Actor, Context, Time};
use dex_types::{ProcessId, StepDepth, Value};
use dex_underlying::{Outbox, UnderlyingConsensus};
use rand::rngs::StdRng;

/// A process that simply proposes its value to the underlying consensus —
/// the classic two-step-optimal path with no one-step attempt. With the
/// oracle underlying consensus this pins the two-step lower bound of \[9\]
/// that one-step algorithms try to beat for favourable inputs.
#[derive(Debug)]
pub struct UnderlyingOnlyProcess<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    uc: U,
    _marker: std::marker::PhantomData<V>,
}

impl<V, U> UnderlyingOnlyProcess<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    /// Wraps an underlying-consensus endpoint.
    pub fn new(uc: U) -> Self {
        UnderlyingOnlyProcess {
            uc,
            _marker: std::marker::PhantomData,
        }
    }

    /// Proposes to the underlying consensus.
    pub fn propose(&mut self, value: V, rng: &mut StdRng, out: &mut Outbox<U::Msg>) {
        self.uc.propose(value, rng, out);
    }

    /// Routes one message; returns the decision when it first appears.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &U::Msg,
        rng: &mut StdRng,
        out: &mut Outbox<U::Msg>,
    ) -> Option<V> {
        let before = self.uc.decision().is_some();
        self.uc.on_message(from, msg, rng, out);
        if !before {
            return self.uc.decision().cloned();
        }
        None
    }

    /// The decided value, if any.
    pub fn decision(&self) -> Option<&V> {
        self.uc.decision()
    }
}

/// A decision as observed inside a simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnderlyingOnlyRecord<V> {
    /// The decided value.
    pub value: V,
    /// Causal step depth of the decision (2 with the oracle primitive).
    pub depth: StepDepth,
    /// Virtual time of the decision.
    pub at: Time,
}

/// Simulation adapter for [`UnderlyingOnlyProcess`].
#[derive(Debug)]
pub struct UnderlyingOnlyActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    process: UnderlyingOnlyProcess<V, U>,
    proposal: V,
    decision: Option<UnderlyingOnlyRecord<V>>,
    obs: Recorder,
}

impl<V, U> UnderlyingOnlyActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    /// Creates the actor; it proposes `proposal` at simulation start.
    pub fn new(process: UnderlyingOnlyProcess<V, U>, proposal: V) -> Self {
        UnderlyingOnlyActor {
            process,
            proposal,
            decision: None,
            obs: Recorder::disabled(),
        }
    }

    /// Turns on structured event recording (see `dex-obs`) for process
    /// index `me`.
    pub fn enable_obs(&mut self, me: u16) {
        self.obs = Recorder::new(me);
    }

    /// The structured-event recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// The recorded decision, if any.
    pub fn decision(&self) -> Option<&UnderlyingOnlyRecord<V>> {
        self.decision.as_ref()
    }
}

impl<V, U> Actor for UnderlyingOnlyActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V> + Send + 'static,
{
    type Msg = U::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let v = self.proposal.clone();
        self.process.propose(v, ctx.rng(), &mut out);
        flush(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let d = self.process.on_message(from, msg, ctx.rng(), &mut out);
        flush(&mut out, ctx);
        if let Some(value) = d {
            self.obs.record(EventKind::Decide {
                scheme: Scheme::Fallback,
                code: obs_code(&value),
            });
            self.decision = Some(UnderlyingOnlyRecord {
                value,
                depth: ctx.depth(),
                at: ctx.now(),
            });
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        self.obs.active_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_simnet::{DelayModel, Simulation};
    use dex_types::SystemConfig;
    use dex_underlying::OracleConsensus;

    #[test]
    fn oracle_underlying_only_decides_in_two_steps() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let actors: Vec<_> = (0..4)
            .map(|i| {
                let me = ProcessId::new(i);
                UnderlyingOnlyActor::new(
                    UnderlyingOnlyProcess::new(OracleConsensus::new(cfg, me, ProcessId::new(0))),
                    7u64,
                )
            })
            .collect();
        let mut sim = Simulation::builder(actors)
            .seed(1)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(100_000).quiescent);
        for a in sim.actors() {
            let d = a.decision().expect("decided");
            assert_eq!(d.value, 7);
            assert_eq!(d.depth, StepDepth::new(2), "two-step lower bound");
        }
    }

    #[test]
    fn state_machine_reports_decision_once() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let me = ProcessId::new(1);
        let mut proc: UnderlyingOnlyProcess<u64, OracleConsensus<u64>> =
            UnderlyingOnlyProcess::new(OracleConsensus::new(cfg, me, ProcessId::new(0)));
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Outbox::new();
        proc.propose(3, &mut rng, &mut out);
        let d = proc.on_message(
            ProcessId::new(0),
            &dex_underlying::OracleMsg::Decide(3),
            &mut rng,
            &mut out,
        );
        assert_eq!(d, Some(3));
        // Re-delivery does not re-report.
        let d2 = proc.on_message(
            ProcessId::new(0),
            &dex_underlying::OracleMsg::Decide(3),
            &mut rng,
            &mut out,
        );
        assert_eq!(d2, None);
        assert_eq!(proc.decision(), Some(&3));
    }
}
