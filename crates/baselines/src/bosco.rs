//! The Bosco one-step Byzantine consensus baseline.

use dex_broadcast::EchoAggregator;
use dex_obs::{obs_code, EventKind, Recorder, Scheme, ViewTag};
use dex_simnet::{Actor, Context, MsgClass, Time};
use dex_types::{Dest, ProcessId, StepDepth, SystemConfig, Value, View};
use dex_underlying::{Outbox, UnderlyingConsensus};
use rand::rngs::StdRng;

/// Wire messages of Bosco.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoscoMsg<V, U> {
    /// The single round of votes.
    Vote(V),
    /// Underlying-consensus traffic.
    Uc(U),
    /// Aggregated votes, batching identically to the DEX echo batches
    /// (`DexMsg::EchoBatch`): every vote the sender coalesced in one
    /// delivery tick, unbatched by receivers in entry order. Bosco emits
    /// exactly one vote per process, so the compression is trivial — this
    /// exists for structural parity so every algorithm behind `RunSpec`'s
    /// aggregation switch batches the same way.
    VoteBatch(Vec<V>),
    /// Local flush timer for the vote aggregator (self-addressed, never
    /// crosses a network link).
    VoteFlushTick,
}

/// Classifies Bosco wire traffic for the per-class
/// [`NetStats`](dex_simnet::NetStats) breakdown.
pub fn bosco_msg_class<V, U>(msg: &BoscoMsg<V, U>) -> MsgClass {
    match msg {
        BoscoMsg::Vote(_) => MsgClass::Init,
        BoscoMsg::VoteBatch(entries) => MsgClass::Batch(entries.len() as u32),
        BoscoMsg::Uc(_) | BoscoMsg::VoteFlushTick => MsgClass::Other,
    }
}

/// Wire size of Bosco traffic: shallow except for the heap-carried batch.
pub fn bosco_msg_bytes<V, U>(msg: &BoscoMsg<V, U>) -> usize {
    let shallow = core::mem::size_of_val(msg);
    match msg {
        BoscoMsg::VoteBatch(entries) => shallow + entries.len() * core::mem::size_of::<V>(),
        _ => shallow,
    }
}

/// Which mechanism decided.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BoscoPath {
    /// The `(n + 3t) / 2` supermajority rule fired on the vote round.
    OneStep,
    /// Adopted from the underlying consensus.
    Underlying,
}

/// A decision with its mechanism.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoscoDecision<V> {
    /// The decided value.
    pub value: V,
    /// The mechanism that produced it.
    pub path: BoscoPath,
}

/// One process's Bosco state machine.
///
/// See the [crate docs](crate) for the algorithm. Works for any `n > 3t`
/// (the underlying consensus in use may require more); its one-step
/// *guarantees* hold at `n > 5t` (weak) / `n > 7t` (strong).
#[derive(Debug)]
pub struct BoscoProcess<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    config: SystemConfig,
    me: ProcessId,
    uc: U,
    own: Option<V>,
    votes: View<V>,
    evaluated: bool,
    decided: Option<BoscoDecision<V>>,
    /// Reusable buffer for underlying-consensus output.
    uc_out: Outbox<U::Msg>,
}

impl<V, U> BoscoProcess<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    /// Creates one process's instance.
    pub fn new(config: SystemConfig, me: ProcessId, uc: U) -> Self {
        BoscoProcess {
            config,
            me,
            uc,
            own: None,
            votes: View::bottom(config.n()),
            evaluated: false,
            decided: None,
            uc_out: Outbox::new(),
        }
    }

    /// The local decision, if any.
    pub fn decision(&self) -> Option<&BoscoDecision<V>> {
        self.decided.as_ref()
    }

    /// The one-step supermajority threshold: strictly more than
    /// `(n + 3t) / 2` votes.
    fn decide_threshold(&self) -> usize {
        (self.config.n() + 3 * self.config.t()) / 2 + 1
    }

    /// The proposal-adoption threshold: strictly more than `(n − t) / 2`.
    fn adopt_threshold(&self) -> usize {
        (self.config.n() - self.config.t()) / 2 + 1
    }

    /// Broadcasts the vote (call exactly once).
    pub fn propose(&mut self, value: V, _rng: &mut StdRng, out: &mut Outbox<BoscoMsg<V, U::Msg>>) {
        if self.own.is_some() {
            return;
        }
        self.own = Some(value.clone());
        self.votes.set(self.me, value.clone());
        out.broadcast(BoscoMsg::Vote(value));
    }

    /// Feeds one received message; returns a newly made decision.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &BoscoMsg<V, U::Msg>,
        rng: &mut StdRng,
        out: &mut Outbox<BoscoMsg<V, U::Msg>>,
    ) -> Option<BoscoDecision<V>> {
        match msg {
            BoscoMsg::Vote(v) => self.on_vote(from, v, rng, out),
            // Aggregation plumbing is demuxed by the actor layer; the
            // state machine never sees these variants.
            BoscoMsg::VoteBatch(_) | BoscoMsg::VoteFlushTick => None,
            BoscoMsg::Uc(m) => {
                self.uc.on_message(from, m, rng, &mut self.uc_out);
                forward_uc(&mut self.uc_out, out);
                if self.decided.is_none() {
                    if let Some(v) = self.uc.decision() {
                        let d = BoscoDecision {
                            value: v.clone(),
                            path: BoscoPath::Underlying,
                        };
                        self.decided = Some(d.clone());
                        return Some(d);
                    }
                }
                None
            }
        }
    }

    fn on_vote(
        &mut self,
        from: ProcessId,
        v: &V,
        rng: &mut StdRng,
        out: &mut Outbox<BoscoMsg<V, U::Msg>>,
    ) -> Option<BoscoDecision<V>> {
        if self.votes.get(from).is_none() {
            self.votes.set(from, v.clone());
        }
        // Single evaluation at exactly n − t votes — Bosco is not adaptive.
        if self.evaluated || self.votes.len_non_default() < self.config.quorum() {
            return None;
        }
        self.evaluated = true;

        let mut decision = None;
        // The decide threshold exceeds n/2, so only the most frequent value
        // can reach it: one O(1) tally lookup replaces the histogram scan.
        let top = self.votes.first_with_count();
        if let Some((winner, count)) = top {
            if count >= self.decide_threshold() {
                let d = BoscoDecision {
                    value: winner.clone(),
                    path: BoscoPath::OneStep,
                };
                self.decided = Some(d.clone());
                decision = Some(d);
            }
        }

        // Proposal adoption: a unique value above (n − t) / 2. Unique ⇔ the
        // most frequent value reaches the threshold and the runner-up does
        // not (for t ≥ 2, two values can clear it simultaneously).
        let adopt = self.adopt_threshold();
        let runner_up = self.votes.second_with_count().map_or(0, |(_, c)| c);
        let x = match top {
            Some((v, c)) if c >= adopt && runner_up < adopt => v.clone(),
            _ => self.own.clone().expect("proposed before votes arrive"),
        };
        self.uc.propose(x, rng, &mut self.uc_out);
        forward_uc(&mut self.uc_out, out);
        decision
    }
}

impl<V, U> dex_adversary::ProtocolForgery for BoscoMsg<V, U>
where
    V: Value,
    U: Clone + core::fmt::Debug + Send + 'static,
{
    type Value = V;

    fn forge_proposal(_me: ProcessId, _to: ProcessId, value: V) -> Vec<Self> {
        vec![BoscoMsg::Vote(value)]
    }
}

fn forward_uc<V, U>(uc_out: &mut Outbox<U>, out: &mut Outbox<BoscoMsg<V, U>>) {
    uc_out.map_drain_into(out, BoscoMsg::Uc);
}

/// A decision as observed inside a simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoscoRecord<V> {
    /// The decided value.
    pub value: V,
    /// The mechanism that produced it.
    pub path: BoscoPath,
    /// Causal step depth of the decision.
    pub depth: StepDepth,
    /// Virtual time of the decision.
    pub at: Time,
}

/// Simulation adapter for [`BoscoProcess`].
#[derive(Debug)]
pub struct BoscoActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    process: BoscoProcess<V, U>,
    proposal: V,
    decision: Option<BoscoRecord<V>>,
    obs: Recorder,
    /// Vote aggregation state; `None` keeps the wire protocol
    /// byte-identical to pre-aggregation builds.
    agg: Option<EchoAggregator<ProcessId, V>>,
}

impl<V, U> BoscoActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    /// Creates the actor; it proposes `proposal` at simulation start.
    pub fn new(process: BoscoProcess<V, U>, proposal: V) -> Self {
        BoscoActor {
            process,
            proposal,
            decision: None,
            obs: Recorder::disabled(),
            agg: None,
        }
    }

    /// Turns on vote aggregation: outgoing votes are coalesced per
    /// delivery tick into [`BoscoMsg::VoteBatch`] multicasts, exactly like
    /// the DEX echo batches.
    pub fn enable_aggregation(&mut self) {
        self.agg = Some(EchoAggregator::new());
    }

    /// Drains the protocol outbox, diverting `Dest::All` votes into the
    /// aggregator when aggregation is on (keyed by this process — each
    /// process votes once, so the key only guards against re-offers).
    fn flush_agg(
        &mut self,
        out: &mut Outbox<BoscoMsg<V, U::Msg>>,
        ctx: &mut Context<'_, BoscoMsg<V, U::Msg>>,
    ) {
        let me = ctx.me();
        for (dest, m) in out.drain_iter() {
            match (self.agg.as_mut(), dest, m) {
                (Some(agg), Dest::All, BoscoMsg::Vote(v)) => {
                    agg.offer(me, v, ctx.depth().next());
                }
                (_, dest, m) => ctx.send_dest(dest, m),
            }
        }
        if let Some(agg) = self.agg.as_mut() {
            if agg.try_arm() {
                ctx.send_self_after(1, BoscoMsg::VoteFlushTick);
            }
        }
    }

    /// Turns on structured event recording (see `dex-obs`) for process
    /// index `me`.
    pub fn enable_obs(&mut self, me: u16) {
        self.obs = Recorder::new(me);
    }

    /// The structured-event recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// The recorded decision, if any.
    pub fn decision(&self) -> Option<&BoscoRecord<V>> {
        self.decision.as_ref()
    }
}

impl<V, U> Actor for BoscoActor<V, U>
where
    V: Value,
    U: UnderlyingConsensus<V> + Send + 'static,
{
    type Msg = BoscoMsg<V, U::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let v = self.proposal.clone();
        if self.obs.is_active() {
            self.obs.record(EventKind::ViewSet {
                view: ViewTag::J1,
                origin: self.obs.me(),
                code: obs_code(&v),
            });
        }
        self.process.propose(v, ctx.rng(), &mut out);
        self.flush_agg(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let d = match msg {
            BoscoMsg::VoteFlushTick => {
                // Only our own timer may flush; a forged tick from a peer
                // must not drain the aggregator.
                if from != ctx.me() {
                    return;
                }
                // Aggregation off (or a restart raced the timer): nothing
                // buffered, nothing to send.
                let Some(agg) = self.agg.as_mut() else { return };
                for (depth, entries) in agg.take_batches() {
                    let values: Vec<V> = entries.into_iter().map(|(_, v)| v).collect();
                    ctx.send_dest_at(Dest::All, BoscoMsg::VoteBatch(values), depth);
                }
                return;
            }
            BoscoMsg::VoteBatch(values) => {
                // Unbatch in entry order, feeding each vote through the
                // exact path an unbatched `Vote` would take (obs peek
                // included).
                let mut decision = None;
                for v in values {
                    if self.obs.is_active() && self.process.votes.get(from).is_none() {
                        self.obs.record(EventKind::ViewSet {
                            view: ViewTag::J1,
                            origin: from.index() as u16,
                            code: obs_code(v),
                        });
                    }
                    let d = self.process.on_message(
                        from,
                        &BoscoMsg::Vote(v.clone()),
                        ctx.rng(),
                        &mut out,
                    );
                    decision = decision.or(d);
                }
                decision
            }
            _ => {
                // First value wins in the vote view, so only a fresh entry
                // is a mutation worth recording.
                if self.obs.is_active() {
                    if let BoscoMsg::Vote(v) = msg {
                        if self.process.votes.get(from).is_none() {
                            self.obs.record(EventKind::ViewSet {
                                view: ViewTag::J1,
                                origin: from.index() as u16,
                                code: obs_code(v),
                            });
                        }
                    }
                }
                self.process.on_message(from, msg, ctx.rng(), &mut out)
            }
        };
        self.flush_agg(&mut out, ctx);
        if let Some(d) = d {
            self.obs.record(EventKind::Decide {
                scheme: match d.path {
                    BoscoPath::OneStep => Scheme::OneStep,
                    BoscoPath::Underlying => Scheme::Fallback,
                },
                code: obs_code(&d.value),
            });
            self.decision = Some(BoscoRecord {
                value: d.value,
                path: d.path,
                depth: ctx.depth(),
                at: ctx.now(),
            });
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        self.obs.active_mut()
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        bosco_msg_bytes(msg)
    }

    fn msg_class(msg: &Self::Msg) -> MsgClass {
        bosco_msg_class(msg)
    }
}

pub(crate) fn flush<M: Clone>(out: &mut Outbox<M>, ctx: &mut Context<'_, M>) {
    for (dest, m) in out.drain_iter() {
        ctx.send_dest(dest, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_underlying::{OracleConsensus, OracleMsg};

    type Proc = BoscoProcess<u64, OracleConsensus<u64>>;
    type Out = Outbox<BoscoMsg<u64, OracleMsg<u64>>>;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn proc(n: usize, t: usize, me: usize) -> Proc {
        let cfg = SystemConfig::new(n, t).unwrap();
        BoscoProcess::new(cfg, p(me), OracleConsensus::new(cfg, p(me), p(0)))
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn thresholds_match_bosco_paper() {
        // n = 7, t = 1: decide > 5 (i.e. ≥ 6), adopt > 3 (i.e. ≥ 4).
        let pr = proc(7, 1, 0);
        assert_eq!(pr.decide_threshold(), 6);
        assert_eq!(pr.adopt_threshold(), 4);
    }

    #[test]
    fn unanimous_votes_decide_one_step() {
        let mut pr = proc(7, 1, 0);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        let mut d = None;
        for j in 1..6 {
            d = pr.on_message(p(j), &BoscoMsg::Vote(5), &mut rng(), &mut out);
        }
        let d = d.expect("6 unanimous votes ≥ decide threshold 6");
        assert_eq!(d.value, 5);
        assert_eq!(d.path, BoscoPath::OneStep);
    }

    #[test]
    fn one_dissent_blocks_one_step_but_adopts_majority() {
        let mut pr = proc(7, 1, 0);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        out.drain();
        for j in 1..5 {
            assert!(pr
                .on_message(p(j), &BoscoMsg::Vote(5), &mut rng(), &mut out)
                .is_none());
        }
        let d = pr.on_message(p(5), &BoscoMsg::Vote(9), &mut rng(), &mut out);
        assert!(d.is_none(), "5 matching votes < 6");
        // But the UC was called with the majority value 5 (count 5 ≥ 4).
        let sent = out.drain();
        assert!(sent
            .iter()
            .any(|(_, m)| matches!(m, BoscoMsg::Uc(OracleMsg::Propose(5)))));
    }

    #[test]
    fn evaluation_happens_exactly_once() {
        // The 7th vote would lift the count to 6, but Bosco already
        // evaluated at n − t = 6 votes: no late one-step decision. This is
        // the non-adaptive behaviour DEX improves upon.
        let mut pr = proc(7, 1, 0);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        for j in 1..5 {
            pr.on_message(p(j), &BoscoMsg::Vote(5), &mut rng(), &mut out);
        }
        assert!(pr
            .on_message(p(5), &BoscoMsg::Vote(9), &mut rng(), &mut out)
            .is_none());
        assert!(pr
            .on_message(p(6), &BoscoMsg::Vote(5), &mut rng(), &mut out)
            .is_none());
        assert!(pr.decision().is_none());
    }

    #[test]
    fn no_unique_majority_proposes_own_value() {
        let mut pr = proc(7, 1, 0);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        out.drain();
        // Votes: own 5, then 9, 9, 9, 2, 2 → 9 has 3 < 4, nothing adopts.
        for (j, v) in [(1, 9), (2, 9), (3, 9), (4, 2)] {
            pr.on_message(p(j), &BoscoMsg::Vote(v), &mut rng(), &mut out);
        }
        pr.on_message(p(5), &BoscoMsg::Vote(2), &mut rng(), &mut out);
        let sent = out.drain();
        assert!(sent
            .iter()
            .any(|(_, m)| matches!(m, BoscoMsg::Uc(OracleMsg::Propose(5)))));
    }

    #[test]
    fn uc_decision_is_adopted() {
        let mut pr = proc(7, 1, 1);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        let d = pr
            .on_message(
                p(0),
                &BoscoMsg::Uc(OracleMsg::Decide(8)),
                &mut rng(),
                &mut out,
            )
            .expect("adopt UC decision");
        assert_eq!(d.value, 8);
        assert_eq!(d.path, BoscoPath::Underlying);
    }

    #[test]
    fn duplicate_votes_first_wins() {
        let mut pr = proc(7, 1, 0);
        let mut out: Out = Outbox::new();
        pr.propose(5, &mut rng(), &mut out);
        pr.on_message(p(1), &BoscoMsg::Vote(5), &mut rng(), &mut out);
        pr.on_message(p(1), &BoscoMsg::Vote(9), &mut rng(), &mut out);
        assert_eq!(pr.votes.get(p(1)), Some(&5));
    }
}
