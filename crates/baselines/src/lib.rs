//! Baseline one-step Byzantine consensus algorithms (Table 1).
//!
//! * [`BoscoProcess`] — the one-step algorithm of Song & van Renesse
//!   ("Bosco: One-Step Byzantine Asynchronous Consensus", DISC 2008),
//!   reference \[12\] of the DEX paper. One round of `VOTE`s; on receiving
//!   `n − t` of them (a **single, non-adaptive** evaluation — the contrast
//!   DEX's incremental views exploit):
//!   - decide `v` if more than `(n + 3t) / 2` votes carry `v`,
//!   - adopt `v` as the underlying-consensus proposal if a unique `v` has
//!     more than `(n − t) / 2` votes, else keep the own value,
//!   - call the underlying consensus unconditionally.
//!
//!   The same algorithm is *weakly* one-step for `n > 5t` (one-step decision
//!   guaranteed only with unanimous proposals and zero actual faults) and
//!   *strongly* one-step for `n > 7t` (unanimous correct proposals suffice,
//!   regardless of Byzantine interference) — the two Bosco rows of Table 1.
//!
//! * [`UnderlyingOnlyProcess`] — no expedition at all: propose the own
//!   value to the underlying consensus immediately. With the idealized
//!   oracle this decides in two steps always; it is the "plain consensus"
//!   baseline for average-step comparisons.
//!
//! Both come with `dex-simnet` actor adapters ([`BoscoActor`],
//! [`UnderlyingOnlyActor`]) mirroring `dex_core::DexActor`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bosco;
pub mod crash;
mod underlying_only;

pub use bosco::{
    bosco_msg_bytes, bosco_msg_class, BoscoActor, BoscoDecision, BoscoMsg, BoscoPath, BoscoProcess,
    BoscoRecord,
};
pub use crash::{
    CrashActor, CrashDecision, CrashMsg, CrashOneStep, CrashPath, CrashRecord, CrashRule,
};
pub use underlying_only::{UnderlyingOnlyActor, UnderlyingOnlyProcess, UnderlyingOnlyRecord};
