//! **E6 — The 3-vs-4-step trade-off** (§1.2 drawback, §5): DEX sacrifices
//! the third-step decision (4-step worst case in well-behaved runs vs
//! Bosco's 3) but wins on average once its much larger fast-path region
//! kicks in.
//!
//! Two-value Bernoulli contention sweep at `n = 7t + 1` (so Bosco is even
//! strongly one-step): each process proposes value 1 with probability `p`,
//! else 0. At `p = 1` everyone is one-step. As `p` drops, Bosco falls off a
//! cliff (its only fast path needs a near-unanimous vote set), while DEX
//! degrades gracefully through its two-step channel before paying 4 steps.
//! The table locates the crossover where DEX's mean steps beat Bosco's.

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::BernoulliMix;

/// Options for the average-case experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `7t + 1`).
    pub t: usize,
    /// Actual faults per run (silent).
    pub f: usize,
    /// Runs per probability point.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 2,
            f: 0,
            runs: 100,
            seed0: 0,
        }
    }
}

/// Mean decision steps of `algo` under contention `p`.
pub fn mean_steps(cfg: SystemConfig, algo: Algo, p: f64, f: usize, runs: usize, seed0: u64) -> f64 {
    let workload = BernoulliMix { p, a: 1, b: 0 };
    let stats = run_batch_auto(&BatchSpec {
        chaos: crate::spec::ChaosSpec::None,
        config: cfg,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        f,
        placement: Placement::LastK,
        workload: &workload,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        runs,
        seed0,
        max_events: 5_000_000,
        aggregate: false,
    });
    assert!(stats.clean(), "violations at p={p}: {stats:?}");
    stats.steps.mean()
}

/// Runs E6 and renders the sweep table.
pub fn run(opts: Opts) -> Table {
    let t = opts.t;
    let cfg = SystemConfig::new(7 * t + 1, t).expect("n = 7t + 1 > 3t");
    let mut table = Table::new(vec![
        "p(common value)".into(),
        "dex-freq mean steps".into(),
        "dex-prv mean steps".into(),
        "bosco mean steps".into(),
        "underlying-only mean steps".into(),
    ]);
    for p10 in (50..=100).step_by(5) {
        let p = p10 as f64 / 100.0;
        let dex = mean_steps(cfg, Algo::DexFreq, p, opts.f, opts.runs, opts.seed0);
        let prv = mean_steps(
            cfg,
            Algo::DexPrv { m: 1 },
            p,
            opts.f,
            opts.runs,
            opts.seed0 + 1_000_000,
        );
        let bosco = mean_steps(
            cfg,
            Algo::Bosco,
            p,
            opts.f,
            opts.runs,
            opts.seed0 + 2_000_000,
        );
        let plain = mean_steps(
            cfg,
            Algo::UnderlyingOnly,
            p,
            opts.f,
            opts.runs,
            opts.seed0 + 3_000_000,
        );
        table.row(vec![
            format!("{p:.2}"),
            format!("{dex:.2}"),
            format!("{prv:.2}"),
            format!("{bosco:.2}"),
            format!("{plain:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_behave_as_predicted() {
        let cfg = SystemConfig::new(8, 1).unwrap();
        // p = 1: both one-step.
        assert_eq!(mean_steps(cfg, Algo::DexFreq, 1.0, 0, 10, 0), 1.0);
        assert_eq!(mean_steps(cfg, Algo::Bosco, 1.0, 0, 10, 0), 1.0);
        // p = 0.5: heavy contention; DEX pays up to 4, Bosco up to 3, the
        // plain baseline always 2.
        let plain = mean_steps(cfg, Algo::UnderlyingOnly, 0.5, 0, 10, 0);
        assert_eq!(plain, 2.0);
    }

    #[test]
    fn dex_beats_bosco_at_moderate_contention() {
        // At p = 0.85, n = 15, t = 2: expected margin ≈ 0.7·15 = 10.5 > 2t
        // most of the time (two-step or better for DEX), while a unanimous
        // first-13 vote set for Bosco is rare.
        let cfg = SystemConfig::new(15, 2).unwrap();
        let dex = mean_steps(cfg, Algo::DexFreq, 0.85, 0, 25, 5);
        let bosco = mean_steps(cfg, Algo::Bosco, 0.85, 0, 25, 5);
        assert!(
            dex < bosco,
            "expected DEX ({dex:.2}) to beat Bosco ({bosco:.2}) at p = 0.85"
        );
    }
}
