//! **E3 — Identical Broadcast** (Fig. 2 + Fig. 3): agreement under
//! equivocation, the exact two-step cost, and termination, across system
//! sizes and adversaries.

use dex_broadcast::{Action, IdbMessage, IdenticalBroadcast};
use dex_metrics::Table;
use dex_simnet::{Actor, Context, DelayModel, Simulation};
use dex_types::{ProcessId, StepDepth, SystemConfig};

type Msg = IdbMessage<ProcessId, u64>;

/// What the Byzantine sender does in an IDB run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IdbAdversary {
    /// No faults.
    None,
    /// Faulty senders stay silent.
    Silent,
    /// Faulty senders send different `init`s to different halves and
    /// conflicting echoes to everyone.
    Equivocate,
}

impl IdbAdversary {
    fn label(self) -> &'static str {
        match self {
            IdbAdversary::None => "none",
            IdbAdversary::Silent => "silent",
            IdbAdversary::Equivocate => "equivocate",
        }
    }
}

enum Node {
    Correct {
        value: u64,
        machine: IdenticalBroadcast<ProcessId, u64>,
        delivered: Vec<(ProcessId, u64, StepDepth)>,
    },
    Byz(IdbAdversary),
}

impl Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.me();
        match self {
            Node::Correct { value, .. } => {
                ctx.broadcast(IdenticalBroadcast::id_send(me, *value));
            }
            Node::Byz(IdbAdversary::Equivocate) => {
                let n = ctx.n();
                for i in 0..n {
                    let v = if i < n / 2 { 666 } else { 777 };
                    ctx.send(ProcessId::new(i), IdbMessage::Init { key: me, value: v });
                }
            }
            Node::Byz(_) => {}
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Msg, ctx: &mut Context<'_, Msg>) {
        match self {
            Node::Correct {
                machine, delivered, ..
            } => {
                for action in machine.on_message(from, msg) {
                    match action {
                        Action::Broadcast(m) => ctx.broadcast(m),
                        Action::Deliver { key, value } => {
                            delivered.push((key, value, ctx.depth()));
                        }
                    }
                }
            }
            Node::Byz(IdbAdversary::Equivocate) => {
                if let IdbMessage::Init { key, .. } = msg {
                    let n = ctx.n();
                    for i in 0..n {
                        let v = if i % 2 == 0 { 666 } else { 777 };
                        ctx.send(
                            ProcessId::new(i),
                            IdbMessage::Echo {
                                key: *key,
                                value: v,
                            },
                        );
                    }
                }
            }
            Node::Byz(_) => {}
        }
    }
}

/// Aggregate results of one `(n, t, adversary)` grid point.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdbStats {
    /// Runs executed.
    pub runs: usize,
    /// Runs where two correct processes delivered different values for the
    /// same sender (must stay 0 — IDB Agreement, Thm. 4).
    pub agreement_violations: usize,
    /// Correct-sender broadcasts that some correct process failed to
    /// deliver (must stay 0 — IDB Termination).
    pub missed_correct_broadcasts: usize,
    /// Deliveries at a causal depth deeper than 2. Fig. 3's cost is two
    /// point-to-point steps; under heavy reordering the `n − 2t`
    /// *amplification* path (an echo reacting to echoes) can occasionally
    /// complete a broadcast at depth 3. This stays 0 in well-behaved runs
    /// (see [`measure_lockstep`]) and small otherwise.
    pub deeper_than_two: usize,
    /// Total deliveries observed.
    pub deliveries: usize,
}

/// Like [`measure`], but over a lockstep (constant-delay) network, the
/// well-behaved regime where Fig. 3's exact two-step cost must hold for
/// every delivery.
pub fn measure_lockstep(cfg: SystemConfig, runs: usize, seed0: u64) -> IdbStats {
    measure_with(
        cfg,
        IdbAdversary::None,
        runs,
        seed0,
        DelayModel::Constant(1),
    )
}

/// Runs one grid point with the default jittered network.
pub fn measure(cfg: SystemConfig, adversary: IdbAdversary, runs: usize, seed0: u64) -> IdbStats {
    measure_with(
        cfg,
        adversary,
        runs,
        seed0,
        DelayModel::Uniform { min: 1, max: 20 },
    )
}

fn measure_with(
    cfg: SystemConfig,
    adversary: IdbAdversary,
    runs: usize,
    seed0: u64,
    delay: DelayModel,
) -> IdbStats {
    let n = cfg.n();
    let f = match adversary {
        IdbAdversary::None => 0,
        _ => cfg.t(),
    };
    let mut stats = IdbStats::default();
    for i in 0..runs {
        let nodes: Vec<Node> = (0..n)
            .map(|p| {
                if p >= n - f {
                    Node::Byz(adversary)
                } else {
                    Node::Correct {
                        value: 100 + p as u64,
                        machine: IdenticalBroadcast::new(cfg),
                        delivered: Vec::new(),
                    }
                }
            })
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(seed0 + i as u64)
            .delay(delay.clone())
            .build();
        let out = sim.run(10_000_000);
        assert!(out.quiescent, "IDB run must drain");
        stats.runs += 1;

        // Collect per-origin delivered values across correct processes.
        let mut per_origin: Vec<Vec<u64>> = vec![Vec::new(); n];
        for node in sim.actors() {
            if let Node::Correct { delivered, .. } = node {
                for (origin, value, depth) in delivered {
                    stats.deliveries += 1;
                    per_origin[origin.index()].push(*value);
                    if *depth > StepDepth::new(2) {
                        stats.deeper_than_two += 1;
                    }
                    assert!(
                        *depth >= StepDepth::new(2),
                        "an IDB delivery can never take fewer than two steps"
                    );
                }
            }
        }
        let correct_count = n - f;
        for (origin, values) in per_origin.iter().enumerate() {
            let mut distinct = values.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() > 1 {
                stats.agreement_violations += 1;
            }
            if origin < correct_count && values.len() < correct_count {
                stats.missed_correct_broadcasts += 1;
            }
        }
    }
    stats
}

/// Runs E3 over the standard grid and renders the table.
pub fn run(runs: usize, seed0: u64) -> Table {
    let mut table = Table::new(vec![
        "n".into(),
        "t".into(),
        "adversary".into(),
        "agreement violations".into(),
        "missed correct broadcasts".into(),
        "deliveries deeper than 2 steps".into(),
        "deliveries".into(),
    ]);
    for t in 1..=2 {
        for n in [4 * t + 1, 5 * t + 1, 6 * t + 1] {
            let cfg = SystemConfig::new(n, t).expect("n > 4t > 3t");
            for adversary in [
                IdbAdversary::None,
                IdbAdversary::Silent,
                IdbAdversary::Equivocate,
            ] {
                let s = measure(cfg, adversary, runs, seed0);
                table.row(vec![
                    n.to_string(),
                    t.to_string(),
                    adversary.label().into(),
                    s.agreement_violations.to_string(),
                    s.missed_correct_broadcasts.to_string(),
                    s.deeper_than_two.to_string(),
                    s.deliveries.to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idb_properties_hold_at_minimum_resilience() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        for adversary in [
            IdbAdversary::None,
            IdbAdversary::Silent,
            IdbAdversary::Equivocate,
        ] {
            let s = measure(cfg, adversary, 15, 11);
            assert_eq!(s.agreement_violations, 0, "{adversary:?}");
            assert_eq!(s.missed_correct_broadcasts, 0, "{adversary:?}");
            assert!(s.deliveries > 0);
            // Depth-3 deliveries (amplification overtaking an init) are
            // legal but rare under mild jitter.
            let rate = s.deeper_than_two as f64 / s.deliveries as f64;
            assert!(rate < 0.2, "{adversary:?}: {rate}");
        }
    }

    #[test]
    fn lockstep_runs_cost_exactly_two_steps() {
        // The well-behaved regime: every delivery at depth exactly 2.
        let cfg = SystemConfig::new(5, 1).unwrap();
        let s = measure_lockstep(cfg, 10, 5);
        assert_eq!(s.deeper_than_two, 0);
        assert_eq!(s.agreement_violations, 0);
        assert_eq!(s.missed_correct_broadcasts, 0);
    }
}
