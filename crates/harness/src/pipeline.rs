//! Pipelined multi-slot replication runs: the committed-values/sec side
//! of the harness.
//!
//! A [`PipelineRun`] drives a cluster of `dex-replication` replicas
//! keeping a window of `W` log slots in flight concurrently, each slot
//! carrying a batch of client values (see
//! [`dex_workloads::slot_batches`]). The throughput metric is *committed
//! values per kilo-tick of virtual time* — a deterministic quantity (same
//! spec + seed ⇒ same number), which is what lets the bench regression
//! gate assert hard speedup ratios instead of tolerating wall-clock noise.
//!
//! [`PipelineRun::traced`] re-executes the run with event recording and
//! assembles the checked trace artifact, carrying
//! [`PipelineMeta`](dex_obs::PipelineMeta) so the checker's pipeline
//! invariants (`window-bound`, `slot-reuse-isolation`) apply.

use crate::spec::RunSpec;
use dex_obs::{PipelineMeta, ProcessTrace, RunTrace, SchemeRules, TraceMeta};
use dex_replication::{run_generic_cluster, GenericClusterOptions, Node, Replica, TotalOrder};
use dex_simnet::{DelayModel, Simulation};
use dex_types::{ProcessId, SystemConfig};
use dex_workloads::slot_batches;

/// Log slots a CLI `--pipeline` invocation commits (the bench binary picks
/// its own slot counts per system size).
pub const DEFAULT_SLOTS: u64 = 16;

/// One pipelined replication run, fully determined by its fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineRun {
    /// System size and fault bound (replicas run DEX-freq: `n > 6t`).
    pub config: SystemConfig,
    /// Slots each replica keeps in flight past its committed prefix.
    pub window: u64,
    /// Client values per slot batch.
    pub batch: u64,
    /// Log slots to commit.
    pub slots: u64,
    /// Simulation seed (also seeds the client-value stream).
    pub seed: u64,
    /// Coalesce each replica's per-tick echo fan-out into one batched
    /// multicast (`--aggregate`); off preserves the unbatched wire.
    pub aggregate: bool,
}

/// What a pipelined run produced and what it cost.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// Client values committed into the log (`slots × batch`).
    pub committed_values: u64,
    /// Virtual time at which the cluster drained.
    pub ticks: u64,
    /// Payload bytes the network carried.
    pub bytes_on_wire: u64,
    /// Payload clones performed by the network layer (stays `0`: all
    /// replication traffic rides the `Dest::All` slab fast path).
    pub payload_clones: u64,
    /// `Dest::All` multicasts dispatched.
    pub multicasts: u64,
    /// Slot instances recycled from the pool, summed over replicas.
    pub recycled: u64,
    /// Wire messages saved by UC-batch coalescing, summed over replicas.
    pub uc_coalesced: u64,
    /// Individual echo sends avoided by echo aggregation, summed over
    /// replicas (`0` when aggregation is off).
    pub echoes_coalesced: u64,
    /// Full network counters (per-class sends, batched echoes).
    pub net: dex_simnet::NetStats,
    /// The committed log (batches, in slot order) every correct replica
    /// agreed on.
    pub log: Vec<Vec<u64>>,
}

impl PipelineOutcome {
    /// Committed client values per 1000 ticks of virtual time — the
    /// deterministic throughput metric the bench gates ride on.
    pub fn values_per_ktick(&self) -> u64 {
        self.committed_values * 1000 / self.ticks.max(1)
    }
}

impl PipelineRun {
    /// Builds the run a [`RunSpec`] describes, committing `slots` slots.
    ///
    /// Fails on invalid `n`/`t` and on specs whose knobs the replication
    /// engine does not model (chaos schedules, Byzantine adversaries —
    /// those live in the dedicated replication tests, not the throughput
    /// path).
    pub fn from_spec(spec: &RunSpec, slots: u64) -> Result<Self, String> {
        let config = spec.config()?;
        if !config.supports_frequency_pair() {
            return Err(format!(
                "pipelined replicas run DEX-freq: need n > 6t, got n = {}, t = {}",
                spec.n, spec.t
            ));
        }
        if !spec.chaos.is_none() {
            return Err("--pipeline does not combine with --chaos".into());
        }
        if spec.f != 0 {
            return Err("--pipeline measures fault-free throughput (--f 0)".into());
        }
        Ok(PipelineRun {
            config,
            window: spec.pipeline.window,
            batch: spec.pipeline.batch,
            slots,
            seed: spec.seed,
            aggregate: spec.aggregate.is_on(),
        })
    }

    /// The per-replica pending queue: every replica observes the same
    /// client batch stream (client broadcast without contention, §1.1).
    fn pending(&self) -> Vec<Vec<Vec<u64>>> {
        vec![slot_batches(self.seed, self.slots, self.batch); self.config.n()]
    }

    /// Executes the run on the measurement path (no event recording).
    ///
    /// # Panics
    ///
    /// Panics if a correct replica fails to commit the full prefix — a
    /// liveness bug, not a measurement.
    pub fn execute(&self) -> PipelineOutcome {
        let outcome = run_generic_cluster::<TotalOrder<Vec<u64>>>(GenericClusterOptions {
            window: self.window,
            aggregate: self.aggregate,
            ..GenericClusterOptions::new(self.config, self.pending(), self.slots, self.seed)
        });
        assert!(outcome.converged(), "pipelined cluster must converge");
        let log = outcome.logs[0].clone().expect("replica 0 is correct");
        PipelineOutcome {
            committed_values: log.iter().map(|batch| batch.len() as u64).sum(),
            ticks: outcome.ticks,
            bytes_on_wire: outcome.net.bytes_on_wire,
            payload_clones: outcome.net.payload_clones,
            multicasts: outcome.net.multicasts,
            recycled: outcome.recycled.iter().sum(),
            uc_coalesced: outcome.uc_coalesced.iter().sum(),
            echoes_coalesced: outcome.echoes_coalesced.iter().sum(),
            net: outcome.net,
            log,
        }
    }

    /// Executes the run with event recording and assembles the trace
    /// artifact input: the outcome plus a [`RunTrace`] whose metadata
    /// carries [`PipelineMeta`] — which is what switches the checker's
    /// `window-bound` and `slot-reuse-isolation` invariants on.
    pub fn traced(&self) -> (PipelineOutcome, RunTrace) {
        let nodes: Vec<Node<TotalOrder<Vec<u64>>>> = self
            .pending()
            .into_iter()
            .enumerate()
            .map(|(i, queue)| {
                let mut r = Replica::new(
                    self.config,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    queue,
                    self.slots,
                );
                r.enable_obs();
                if self.window > 1 {
                    r.enable_pipelining(self.window);
                }
                if self.aggregate {
                    r.enable_echo_aggregation();
                }
                Node::Correct(r)
            })
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(self.seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        let run = sim.run(50_000_000);
        assert!(run.quiescent, "pipelined cluster must drain");
        let stats = sim.stats().clone();
        let mut log = None;
        let mut recycled = 0;
        let mut uc_coalesced = 0;
        let mut echoes_coalesced = 0;
        let processes: Vec<ProcessTrace> = sim
            .actors()
            .iter()
            .map(|node| {
                let Node::Correct(r) = node else {
                    unreachable!("traced pipeline clusters are fault-free")
                };
                assert_eq!(
                    r.log().committed_prefix(),
                    self.slots as usize,
                    "replica {} missed slots",
                    r.me()
                );
                log.get_or_insert_with(|| r.log().prefix());
                recycled += r.mux().recycled();
                uc_coalesced += r.uc_coalesced();
                echoes_coalesced += r.echoes_coalesced();
                r.obs().trace()
            })
            .collect();
        let log = log.expect("at least one replica");
        let outcome = PipelineOutcome {
            committed_values: log.iter().map(|batch| batch.len() as u64).sum(),
            ticks: run.ended_at.as_units(),
            bytes_on_wire: stats.bytes_on_wire,
            payload_clones: stats.payload_clones,
            multicasts: stats.multicasts,
            recycled,
            uc_coalesced,
            echoes_coalesced,
            net: stats.clone(),
            log,
        };
        let trace = RunTrace {
            meta: TraceMeta {
                seed: self.seed,
                n: self.config.n() as u16,
                t: self.config.t() as u16,
                algo: "replication-pipeline".to_string(),
                rules: SchemeRules::Opaque,
                faulty: Vec::new(),
                legend: Vec::new(),
                chaos: None,
                pipeline: Some(PipelineMeta {
                    window: self.window,
                    batch: self.batch,
                    bytes_on_wire: outcome.bytes_on_wire,
                    sent_by_class: [
                        stats.sent_init,
                        stats.sent_echo,
                        stats.sent_batch,
                        stats.sent_other,
                    ],
                    echoes_batched: stats.echoes_batched,
                }),
            },
            processes,
        };
        (outcome, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PipelineSpec;

    fn spec(window: u64, batch: u64, seed: u64) -> RunSpec {
        RunSpec {
            pipeline: PipelineSpec { window, batch },
            seed,
            ..RunSpec::default()
        }
    }

    #[test]
    fn sequential_and_pipelined_commit_the_same_log() {
        let slots = 6;
        let seq = PipelineRun::from_spec(&spec(1, 3, 9), slots)
            .unwrap()
            .execute();
        let pipe = PipelineRun::from_spec(&spec(4, 3, 9), slots)
            .unwrap()
            .execute();
        assert_eq!(seq.log, pipe.log, "same seed ⇒ per-slot-identical logs");
        assert_eq!(seq.committed_values, slots * 3);
        assert!(
            pipe.ticks < seq.ticks,
            "window 4 must finish earlier ({} vs {})",
            pipe.ticks,
            seq.ticks
        );
        assert_eq!(pipe.payload_clones, 0, "slab fast path only");
    }

    #[test]
    fn traced_run_carries_pipeline_meta_and_passes_the_checker() {
        let run = PipelineRun::from_spec(&spec(4, 2, 31), 6).unwrap();
        let (outcome, trace) = run.traced();
        let meta = trace.meta.pipeline.as_ref().unwrap();
        assert_eq!(meta.window, 4);
        assert_eq!(meta.batch, 2);
        assert_eq!(meta.bytes_on_wire, outcome.bytes_on_wire);
        assert!(meta.bytes_on_wire > 0);
        let report = dex_obs::check(&trace);
        assert!(report.is_ok(), "{:?}", report.violations);
        let names: Vec<&str> = report.checks.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"window-bound"));
        assert!(names.contains(&"slot-reuse-isolation"));
    }

    #[test]
    fn incompatible_specs_are_rejected() {
        let mut bad = spec(8, 4, 0);
        bad.f = 1;
        assert!(PipelineRun::from_spec(&bad, 4).is_err());
        let mut chaotic = spec(8, 4, 0);
        chaotic.chaos = crate::spec::ChaosSpec::DupHeavy { p: 0.3 };
        assert!(PipelineRun::from_spec(&chaotic, 4).is_err());
        let mut small = spec(8, 4, 0);
        small.n = 6; // 6 ≤ 6t with t = 1
        assert!(PipelineRun::from_spec(&small, 4).is_err());
    }
}
