//! **E1 — Table 1**: empirical feasibility comparison of one-step and
//! two-step decision across algorithms and resilience levels.
//!
//! For every algorithm and every system size `n ∈ {5t+1, 6t+1, 7t+1}`
//! (where the algorithm is constructible at all), three scenarios:
//!
//! * **1-step (f = 0)** — unanimous input, no faults: fraction of correct
//!   processes deciding in one step. This is the *weakly* one-step
//!   situation.
//! * **1-step (f = t, equivocating)** — unanimous correct proposals, `t`
//!   equivocating Byzantine processes: the *strongly* one-step situation.
//! * **2-step path** — an input inside the two-step condition but outside
//!   the one-step condition (margin `2t + 2f < margin ≤ 4t`): fraction of
//!   correct processes deciding in **at most two** steps. Only
//!   condition-based algorithms (DEX) have this channel; Bosco and the
//!   plain baseline must take their fallback (≥ 3 steps).
//!
//! Rows for crash-model algorithms from Table 1 (Brasileiro, Mostefaoui,
//! Izumi–Masuzawa) are reported analytically in `EXPERIMENTS.md`; they do
//! not run in a Byzantine system.

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::{SplitCount, Unanimous};

/// Options for the Table 1 experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound.
    pub t: usize,
    /// Runs per scenario.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 1,
            runs: 100,
            seed0: 0,
        }
    }
}

/// Whether `algo` can be instantiated at configuration `cfg`.
fn constructible(algo: Algo, cfg: SystemConfig) -> bool {
    match algo {
        Algo::DexFreq => cfg.supports_frequency_pair(),
        Algo::DexPrv { .. } => cfg.supports_privileged_pair(),
        Algo::Bosco | Algo::UnderlyingOnly => cfg.supports_one_step(),
        // Crash algorithms live in their own experiment (crash_rows) — the
        // Byzantine table never runs them.
        Algo::Brasileiro | Algo::CrashAdaptive => false,
    }
}

fn batch(
    cfg: SystemConfig,
    algo: Algo,
    strategy: ByzantineStrategy<u64>,
    f: usize,
    workload: &(dyn dex_workloads::InputGenerator + Sync),
    runs: usize,
    seed0: u64,
) -> crate::runner::BatchStats {
    run_batch_auto(&BatchSpec {
        chaos: crate::spec::ChaosSpec::None,
        config: cfg,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy,
        f,
        placement: Placement::LastK,
        workload,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        runs,
        seed0,
        max_events: 5_000_000,
        aggregate: false,
    })
}

/// Runs E1 and renders the feasibility table.
///
/// # Panics
///
/// Panics if any run violates agreement, unanimity or termination — Table 1
/// is only meaningful for safe runs.
pub fn run(opts: Opts) -> Table {
    let t = opts.t;
    let mut table = Table::new(vec![
        "algorithm".into(),
        "n".into(),
        "1-step f=0".into(),
        "1-step f=t (equivocate)".into(),
        "<=2-step on C2 input".into(),
        "mean steps on C2 input".into(),
    ]);
    let algos = [
        Algo::Bosco,
        Algo::DexPrv { m: 1 },
        Algo::DexFreq,
        Algo::UnderlyingOnly,
    ];
    for n in [5 * t + 1, 6 * t + 1, 7 * t + 1] {
        let cfg = SystemConfig::new(n, t).expect("n > 3t by construction");
        for algo in algos {
            if !constructible(algo, cfg) {
                table.row(vec![
                    algo.label().into(),
                    n.to_string(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                ]);
                continue;
            }
            // Scenario A: unanimous, no failures. The privileged pair only
            // expedites its privileged value, so the unanimous value is 1.
            let unanimous = Unanimous { value: 1 };
            let a = batch(
                cfg,
                algo,
                ByzantineStrategy::Silent,
                0,
                &unanimous,
                opts.runs,
                opts.seed0,
            );
            assert!(a.clean(), "scenario A violations: {a:?}");

            // Scenario B: unanimous correct proposals, t equivocators.
            let b = batch(
                cfg,
                algo,
                ByzantineStrategy::EchoPoison { values: vec![1, 0] },
                t,
                &unanimous,
                opts.runs,
                opts.seed0 + 10_000,
            );
            assert!(b.clean(), "scenario B violations: {b:?}");

            // Scenario C: margin inside C²_0 but outside C¹_0 for the
            // frequency pair: margin = 2t + 2 means minor_count =
            // (n − 2t − 2) / 2. For the privileged pair the analogous
            // input has #m = 2t + 1 < 3t + 1 privileged entries... both are
            // served by a two-value split biased to value 1.
            // Smallest minority that pushes the margin to ≤ 4t (outside
            // C¹_0) while staying > 2t (inside C²_0): margin = n − 2·mc.
            let minor_count = (n - 4 * t).div_ceil(2);
            let split = SplitCount {
                major: 1,
                minor: 0,
                minor_count,
            };
            let c = batch(
                cfg,
                algo,
                ByzantineStrategy::Silent,
                0,
                &split,
                opts.runs,
                opts.seed0 + 20_000,
            );
            assert!(c.clean(), "scenario C violations: {c:?}");
            let le2 = c.path_fraction("1-step") + c.path_fraction("2-step");

            table.row(vec![
                algo.label().into(),
                n.to_string(),
                format!("{:.2}", a.path_fraction("1-step")),
                format!("{:.2}", b.path_fraction("1-step")),
                format!("{le2:.2}"),
                format!("{:.2}", c.steps.mean()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_headline_claims_hold_for_t1() {
        let table = run(Opts {
            t: 1,
            runs: 10,
            seed0: 42,
        });
        let csv = table.to_csv();
        // DEX-freq is n/a at n = 5t+1 = 6 but fully one-step at n = 7.
        assert!(csv.contains("dex-freq,6,n/a"));
        assert!(csv.contains("dex-freq,7,1.00"));
        // Bosco at n = 5t+1 achieves one-step with f = 0.
        assert!(csv.lines().any(|l| l.starts_with("bosco,6,1.00")));
        // The plain baseline never decides in one step.
        assert!(csv
            .lines()
            .filter(|l| l.starts_with("underlying-only"))
            .all(|l| l.split(',').nth(2) == Some("0.00")));
    }
}
