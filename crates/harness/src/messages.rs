//! **E11 — Message complexity** (implicit in the paper's design): DEX buys
//! its two-step channel with Identical Broadcast traffic.
//!
//! Per consensus instance, DEX sends `n²` direct proposals plus one IDB
//! instance per process (`n²` inits + up to `n³` echoes) plus the fallback
//! traffic; Bosco sends `n²` votes plus fallback traffic; the plain
//! baseline only the fallback's `O(n)`. This experiment measures delivered
//! messages per run across system sizes and decision paths, making the
//! asymptotic gap — and the fact that it does not depend on which path
//! decides — concrete.

use crate::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_metrics::{Summary, Table};
use dex_simnet::DelayModel;
use dex_types::{InputVector, SystemConfig};

/// Options for the message-complexity experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Runs per point.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { runs: 20, seed0: 0 }
    }
}

/// Mean delivered messages for one `(algo, n, input)` point.
pub fn mean_messages(
    cfg: SystemConfig,
    algo: Algo,
    input: &InputVector<u64>,
    runs: usize,
    seed0: u64,
) -> f64 {
    let mut messages = Summary::new();
    for i in 0..runs {
        let r = run_instance(&RunInstance {
            faults: dex_simnet::FaultSchedule::none(),
            config: cfg,
            algo,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan: FaultPlan::none(),
            input: input.clone(),
            delay: DelayModel::Uniform { min: 1, max: 10 },
            seed: seed0 + i as u64,
            max_events: 50_000_000,
            aggregate: false,
        });
        assert!(r.quiescent && r.agreement_ok() && r.all_decided());
        messages.add(r.messages as f64);
    }
    messages.mean()
}

/// Runs E11 and renders the message-count table.
pub fn run(opts: Opts) -> Table {
    let mut table = Table::new(vec![
        "n".into(),
        "t".into(),
        "input".into(),
        "dex-freq msgs".into(),
        "bosco msgs".into(),
        "underlying-only msgs".into(),
        "dex/bosco ratio".into(),
    ]);
    for t in [1usize, 2, 3] {
        let n = 7 * t + 1;
        let cfg = SystemConfig::new(n, t).expect("n = 7t + 1");
        for (label, input) in [
            ("unanimous", InputVector::unanimous(n, 1)),
            ("split", {
                let mut e = vec![1u64; n];
                for x in e.iter_mut().take(n / 2) {
                    *x = 0;
                }
                InputVector::new(e)
            }),
        ] {
            let dex = mean_messages(cfg, Algo::DexFreq, &input, opts.runs, opts.seed0);
            let bosco = mean_messages(cfg, Algo::Bosco, &input, opts.runs, opts.seed0);
            let plain = mean_messages(cfg, Algo::UnderlyingOnly, &input, opts.runs, opts.seed0);
            table.row(vec![
                n.to_string(),
                t.to_string(),
                label.into(),
                format!("{dex:.0}"),
                format!("{bosco:.0}"),
                format!("{plain:.0}"),
                format!("{:.1}", dex / bosco),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dex_pays_cubic_idb_traffic() {
        let cfg = SystemConfig::new(8, 1).unwrap();
        let input = InputVector::unanimous(8, 1);
        let dex = mean_messages(cfg, Algo::DexFreq, &input, 3, 0);
        let bosco = mean_messages(cfg, Algo::Bosco, &input, 3, 0);
        let plain = mean_messages(cfg, Algo::UnderlyingOnly, &input, 3, 0);
        // DEX ≥ n² proposals + n² inits + n³ echoes ≫ Bosco ≈ n² + UC.
        assert!(dex > bosco * 3.0, "dex {dex} vs bosco {bosco}");
        assert!(bosco > plain, "bosco {bosco} vs plain {plain}");
        // Sanity: DEX's unanimous-run traffic is at least n³ echo messages.
        assert!(dex >= 8.0 * 8.0 * 8.0, "dex {dex}");
    }

    #[test]
    fn message_count_is_path_independent_for_dex() {
        // DEX always runs both channels and the UC proposal, so unanimous
        // (1-step) and split (fallback) runs cost similar traffic.
        let cfg = SystemConfig::new(8, 1).unwrap();
        let unanimous = mean_messages(cfg, Algo::DexFreq, &InputVector::unanimous(8, 1), 3, 1);
        let split = mean_messages(
            cfg,
            Algo::DexFreq,
            &InputVector::new(vec![1, 1, 1, 1, 0, 0, 0, 0]),
            3,
            1,
        );
        let ratio = split / unanimous;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }
}
