//! **E2 — Fig. 1 semantics**: annotated execution traces of Algorithm DEX
//! and decision-path censuses per input class.

use crate::nodes::DexNode;
use crate::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use crate::ucwrap::AnyUc;
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_conditions::FrequencyPair;
use dex_core::{DexActor, DexProcess};
use dex_metrics::{Counter, Table};
use dex_simnet::{DelayModel, Simulation};
use dex_types::{InputVector, ProcessId, SystemConfig};

/// Produces a rendered network trace of one DEX run plus a per-process
/// decision summary — a direct illustration of which Fig. 1 lines fire.
pub fn annotated_run(input: InputVector<u64>, t: usize, seed: u64) -> String {
    let cfg = SystemConfig::new(input.n(), t).expect("valid config");
    let nodes: Vec<DexNode> = cfg
        .processes()
        .map(|me| {
            DexNode::Freq(DexActor::new(
                DexProcess::new(
                    cfg,
                    me,
                    FrequencyPair::new(cfg).expect("n > 6t"),
                    AnyUc::oracle(cfg, me, ProcessId::new(0)),
                ),
                *input.get(me),
            ))
        })
        .collect();
    let mut sim = Simulation::builder(nodes)
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build();
    sim.enable_trace();
    let out = sim.run(1_000_000);
    let mut rendered = String::new();
    rendered.push_str(&format!("input: {input:?}\n"));
    rendered.push_str(&sim.trace().expect("tracing enabled").render());
    rendered.push_str(&format!("quiescent: {}\n", out.quiescent));
    for (i, node) in sim.actors().iter().enumerate() {
        if let DexNode::Freq(a) = node {
            match a.decision() {
                Some(d) => rendered.push_str(&format!(
                    "p{i} decided {} via {} at depth {} ({})\n",
                    d.value,
                    d.path.label(),
                    d.depth.get(),
                    d.at
                )),
                None => rendered.push_str(&format!("p{i} undecided\n")),
            }
        }
    }
    rendered
}

/// Census of decision paths per input class (unanimous / `C¹` / `C² \ C¹` /
/// outside), `runs` seeds each — the statistical counterpart of the trace.
pub fn path_census(t: usize, runs: usize, seed0: u64) -> Table {
    let n = 6 * t + 1;
    let cfg = SystemConfig::new(n, t).expect("n = 6t + 1");
    let classes: Vec<(&str, usize)> = vec![
        // (label, minority count) — margin = n − 2·mc.
        ("unanimous", 0),
        ("C1 (margin > 4t)", (n - (4 * t + 1)) / 2),
        // Largest margin at or below 4t, still above 2t: margin = n − 2·mc.
        ("C2 \\ C1", (n - 4 * t).div_ceil(2)),
        ("outside", (n - 1) / 2),
    ];
    let mut table = Table::new(vec![
        "input class".into(),
        "margin".into(),
        "1-step".into(),
        "2-step".into(),
        "fallback".into(),
    ]);
    for (label, mc) in classes {
        let mut paths: Counter<&'static str> = Counter::new();
        for i in 0..runs {
            let mut entries = vec![1u64; n];
            for e in entries.iter_mut().take(mc) {
                *e = 0;
            }
            let result = run_instance(&RunInstance {
                faults: dex_simnet::FaultSchedule::none(),
                config: cfg,
                algo: Algo::DexFreq,
                underlying: UnderlyingKind::Oracle,
                strategy: ByzantineStrategy::Silent,
                fault_plan: FaultPlan::none(),
                input: InputVector::new(entries),
                delay: DelayModel::Uniform { min: 1, max: 10 },
                seed: seed0 + i as u64,
                max_events: 5_000_000,
                aggregate: false,
            });
            assert!(result.agreement_ok() && result.all_decided());
            for r in result.decided() {
                paths.add(r.path);
            }
        }
        table.row(vec![
            label.into(),
            (n - 2 * mc.min(n / 2)).to_string(),
            format!("{:.2}", paths.fraction(&"1-step")),
            format!("{:.2}", paths.fraction(&"2-step")),
            format!("{:.2}", paths.fraction(&"fallback")),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotated_run_shows_one_step_decisions() {
        let rendered = annotated_run(InputVector::unanimous(7, 5), 1, 3);
        assert!(rendered.contains("SEND"));
        assert!(rendered.contains("DELIVER"));
        for i in 0..7 {
            assert!(
                rendered.contains(&format!("p{i} decided 5 via 1-step at depth 1")),
                "missing decision line for p{i}:\n{rendered}"
            );
        }
    }

    #[test]
    fn census_classes_map_to_paths() {
        let table = path_census(1, 5, 9);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // unanimous → all 1-step; outside → all fallback.
        assert!(lines[1].starts_with("unanimous,7,1.00,0.00,0.00"), "{csv}");
        assert!(lines[4].contains("outside"), "{csv}");
        assert!(lines[4].ends_with("0.00,0.00,1.00"), "{csv}");
    }
}
