//! **E4 — Adaptiveness** (§1.2, §2.3, Lemma 4): the one-step region grows
//! as the *actual* number of faults shrinks.
//!
//! DEX-freq on `n = 6t + 1` processes. The input is a deterministic
//! two-value split with `mc` minority entries (frequency margin
//! `n − 2·mc`), and `f` Byzantine processes run `ConsistentLie(minor)` —
//! each fault simultaneously removes a majority proposal and adds a
//! minority one, the exact worst case of the `dist(J, I) ≤ k` metric. The
//! effective view margin is therefore `n − 2·mc − 2·f`, and Lemma 4
//! predicts a **one-step decision iff `n − 2·mc > 4t + 2f`** — a staircase
//! in `(mc, f)`.
//!
//! Bosco runs the same grid as contrast: its single non-adaptive
//! evaluation at `n − t` votes keys only on `t`, so its one-step region
//! does not grow when `f < t`.

use crate::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_metrics::{Summary, Table};
use dex_simnet::DelayModel;
use dex_types::{InputVector, ProcessId, SystemConfig};

/// Options for the adaptiveness experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `6t + 1`).
    pub t: usize,
    /// Seeds per grid point.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 2,
            runs: 50,
            seed0: 0,
        }
    }
}

/// Deterministic split input: the first `mc` *correct-range* entries are
/// `minor`, everything else `major`; the faulty tail keeps `major` as its
/// nominal value (the adversary betrays it anyway).
fn split_input(n: usize, mc: usize) -> InputVector<u64> {
    let mut entries = vec![1u64; n];
    for e in entries.iter_mut().take(mc) {
        *e = 0;
    }
    InputVector::new(entries)
}

/// One grid point: fraction of correct processes deciding in one step.
fn one_step_fraction(
    cfg: SystemConfig,
    algo: Algo,
    mc: usize,
    f: usize,
    runs: usize,
    seed0: u64,
) -> f64 {
    let mut fractions = Summary::new();
    for i in 0..runs {
        let result = run_instance(&RunInstance {
            faults: dex_simnet::FaultSchedule::none(),
            config: cfg,
            algo,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::ConsistentLie { value: 0 },
            fault_plan: FaultPlan::from_ids(cfg, (cfg.n() - f..cfg.n()).map(ProcessId::new)),
            input: split_input(cfg.n(), mc),
            delay: DelayModel::Uniform { min: 1, max: 10 },
            seed: seed0 + i as u64,
            max_events: 5_000_000,
            aggregate: false,
        });
        assert!(result.quiescent && result.agreement_ok() && result.all_decided());
        let correct = result.decided().count();
        let one_step = result.decided().filter(|r| r.path == "1-step").count();
        fractions.add(one_step as f64 / correct as f64);
    }
    fractions.mean()
}

/// Runs E4 and renders the staircase table.
pub fn run(opts: Opts) -> Table {
    let t = opts.t;
    let n = 6 * t + 1;
    let cfg = SystemConfig::new(n, t).expect("n = 6t + 1 > 3t");
    let mut table = Table::new(vec![
        "margin (n-2mc)".into(),
        "f".into(),
        "in C1_f (margin > 4t+2f)".into(),
        "dex-freq 1-step".into(),
        "bosco 1-step".into(),
    ]);
    for mc in 0..=t + 1 {
        for f in 0..=t {
            let margin = n as i64 - 2 * mc as i64;
            let predicted = margin > (4 * t + 2 * f) as i64;
            let dex = one_step_fraction(cfg, Algo::DexFreq, mc, f, opts.runs, opts.seed0);
            let bosco =
                one_step_fraction(cfg, Algo::Bosco, mc, f, opts.runs, opts.seed0 + 1_000_000);
            table.row(vec![
                margin.to_string(),
                f.to_string(),
                if predicted { "yes" } else { "no" }.into(),
                format!("{dex:.2}"),
                format!("{bosco:.2}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma4_staircase_t1() {
        // n = 7, t = 1. Margin 7 (mc = 0): C¹_0 and C¹_1 ⇒ one-step for
        // f ∈ {0, 1}. Margin 5 (mc = 1): C¹_0 only ⇒ one-step iff f = 0.
        let cfg = SystemConfig::new(7, 1).unwrap();
        assert_eq!(one_step_fraction(cfg, Algo::DexFreq, 0, 0, 10, 0), 1.0);
        assert_eq!(one_step_fraction(cfg, Algo::DexFreq, 0, 1, 10, 0), 1.0);
        assert_eq!(one_step_fraction(cfg, Algo::DexFreq, 1, 0, 10, 0), 1.0);
        // Margin 5 ≤ 4t + 2f = 6 with f = 1: the liar removes a majority
        // entry and adds a minority one; view margin 3 ≤ 4.
        assert_eq!(one_step_fraction(cfg, Algo::DexFreq, 1, 1, 10, 0), 0.0);
    }

    #[test]
    fn bosco_is_not_adaptive() {
        // Same margin-5 input with f = 0: Bosco's threshold needs more than
        // (n + 3t) / 2 = 5 matching votes among the first 6; the one
        // dissenter makes that a coin flip on arrival order, and with
        // f = 1 lying it is impossible. DEX decides 1.0 of the time at
        // f = 0 (previous test); Bosco must be strictly worse.
        let cfg = SystemConfig::new(7, 1).unwrap();
        let bosco = one_step_fraction(cfg, Algo::Bosco, 1, 0, 30, 7);
        assert!(bosco < 1.0, "bosco fraction {bosco}");
    }
}
