//! The million-client campaign engine: testbed sweeps over seeds ×
//! adversaries × chaos schedules × legal `(n, t)` pairs, aggregated into
//! fast-decision-rate curves.
//!
//! The paper's central empirical claim is *average-case* speed: most
//! inputs land in the one-step/two-step fast conditions, and adaptively
//! more as `f < t`. A single acceptance run cannot show that — a
//! [`CampaignSpec`] can: it fans a [`PhaseSchedule`]-driven population
//! workload (see [`dex_workloads::campaign`]) across every cell of the
//! sweep grid, runs the (deterministic, independent) runs on a
//! work-stealing pool of scoped threads, and folds the per-run
//! [`RunDigest`]s into one byte-stable artifact:
//! `results/campaign_<name>.json`.
//!
//! # Determinism
//!
//! Workers share one atomic cursor over the task grid and record digests
//! into *per-worker* vectors; which worker executes which task is
//! scheduling-dependent, but every task is a pure function of
//! `(cell, run)` — the seed is `seed0 + run`, the input vector, fault
//! plan and chaos schedule all derive from that seed exactly as a
//! single-run [`RunSpec`] would derive them (see
//! [`CampaignSpec::runspec_for`]). The aggregator then sorts all digests
//! by `(cell, run)` before folding, so the artifact is byte-identical
//! regardless of worker count or scheduling order — `--jobs 1` and
//! `--jobs 8` must `cmp` equal, and CI pins exactly that.

use crate::runner::{run_instance, Algo, Outcome, RunInstance, UnderlyingKind};
use crate::spec::{AdversarySpec, ChaosSpec, PipelineSpec, RunSpec, UnderlyingSpec, WorkloadSpec};
use dex_adversary::FaultPlan;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::{
    ClientPopulation, ContentionPhase, InputGenerator, PhaseSchedule, PopulationModel,
};
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One cell of the sweep grid: a system pair, an actual fault count, an
/// adversary and a chaos schedule. Each cell is run for every campaign
/// seed.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignCell {
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Actual Byzantine processes per run (`0..=t`).
    pub f: usize,
    /// Byzantine strategy.
    pub adversary: AdversarySpec,
    /// Network chaos schedule.
    pub chaos: ChaosSpec,
}

/// The full campaign description. See the module docs.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignSpec {
    /// Campaign name — keys the artifact path `results/campaign_<name>.json`.
    pub name: String,
    /// Algorithm under test.
    pub algo: Algo,
    /// Underlying consensus.
    pub underlying: UnderlyingSpec,
    /// Legal `(n, t)` pairs to sweep (each must satisfy the algorithm's
    /// resilience requirement).
    pub pairs: Vec<(usize, usize)>,
    /// Byzantine strategies to sweep.
    pub adversaries: Vec<AdversarySpec>,
    /// Chaos schedules to sweep (include [`ChaosSpec::None`] for the clean
    /// baseline).
    pub chaos: Vec<ChaosSpec>,
    /// The time-varying contention schedule; run `i` draws its input from
    /// phase `phases.phase_at(i)`.
    pub phases: PhaseSchedule,
    /// Seeds (runs) per cell; run `i` of every cell uses seed `seed0 + i`.
    pub seeds: usize,
    /// Base seed.
    pub seed0: u64,
    /// Link-delay model.
    pub delay: DelayModel,
    /// Delivery cap per run.
    pub max_events: u64,
}

impl CampaignSpec {
    /// The CI smoke campaign: 2 seeds × (clean + canonical MATRIX) × both
    /// legal `dex-freq` pairs × silent/equivocating adversaries, phases
    /// alternating a calm population with a *tense* one whose hot-key mass
    /// (0.6) lands input margins inside the Lemma-4 staircase band — the
    /// region where the fast conditions hold for small `f` but not for
    /// `f = t`, so the `f`-adaptivity the paper claims is visible even in
    /// a 100-run smoke. Small enough for a CI job, wide enough to exercise
    /// every sweep dimension.
    pub fn smoke() -> CampaignSpec {
        let mut chaos = vec![ChaosSpec::None];
        chaos.extend(ChaosSpec::MATRIX);
        CampaignSpec {
            name: "smoke".into(),
            algo: Algo::DexFreq,
            underlying: UnderlyingSpec::Oracle,
            pairs: vec![(7, 1), (13, 2)],
            adversaries: vec![AdversarySpec::Silent, AdversarySpec::Equivocate],
            chaos,
            phases: PhaseSchedule::new(vec![
                ContentionPhase::new("calm", PopulationModel::CALM, 1),
                ContentionPhase::new(
                    "tense",
                    PopulationModel {
                        clients: 1_000_000,
                        skew: 0.8,
                        hot: 0.6,
                        bias: 0.0,
                    },
                    3,
                ),
            ]),
            seeds: 4,
            // Pinned where the tense draws land inside the staircase band
            // for both pairs: every (pair, adversary, chaos) group is
            // strictly adaptive, so the CI assertion is not knife-edged.
            seed0: 2,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            max_events: 5_000_000,
        }
    }

    /// The full testbed campaign: thousands of seeds walking the canonical
    /// calm/crowd/dispersed day, every canonical chaos schedule plus the
    /// amnesiac crash-restart recovery schedule, four adversaries, both
    /// legal pairs.
    pub fn standard(seeds: usize, seed0: u64) -> CampaignSpec {
        let mut chaos = vec![ChaosSpec::None];
        chaos.extend(ChaosSpec::MATRIX);
        chaos.push(ChaosSpec::CrashRestart { down: 200, up: 300 });
        CampaignSpec {
            name: "standard".into(),
            algo: Algo::DexFreq,
            underlying: UnderlyingSpec::Oracle,
            pairs: vec![(7, 1), (13, 2)],
            adversaries: vec![
                AdversarySpec::Silent,
                AdversarySpec::Lie { value: 0 },
                AdversarySpec::Equivocate,
                AdversarySpec::EchoPoison,
            ],
            chaos,
            phases: PhaseSchedule::canonical(16),
            seeds,
            seed0,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            max_events: 50_000_000,
        }
    }

    /// Looks a named preset up (`smoke`, `standard`).
    pub fn by_name(name: &str) -> Option<CampaignSpec> {
        match name {
            "smoke" => Some(CampaignSpec::smoke()),
            "standard" => Some(CampaignSpec::standard(1000, 0)),
            _ => None,
        }
    }

    /// Validates the grid: every pair must be a legal system for the
    /// algorithm, and every sweep axis non-empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.pairs.is_empty() || self.adversaries.is_empty() || self.chaos.is_empty() {
            return Err("campaign sweep axes must be non-empty".into());
        }
        if self.seeds == 0 {
            return Err("campaign needs at least one seed".into());
        }
        for &(n, t) in &self.pairs {
            SystemConfig::new(n, t).map_err(|e| e.to_string())?;
            let legal = match self.algo {
                Algo::DexFreq => n > 6 * t,
                Algo::DexPrv { .. } | Algo::Bosco => n > 5 * t,
                _ => true,
            };
            if !legal {
                return Err(format!(
                    "pair ({n}, {t}) is illegal for {}",
                    self.algo.label()
                ));
            }
        }
        Ok(())
    }

    /// Enumerates the sweep grid in its canonical (artifact) order:
    /// pairs × `f = 0..=t` × adversaries × chaos.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::new();
        for &(n, t) in &self.pairs {
            for f in 0..=t {
                for adversary in &self.adversaries {
                    for chaos in &self.chaos {
                        cells.push(CampaignCell {
                            n,
                            t,
                            f,
                            adversary: *adversary,
                            chaos: chaos.clone(),
                        });
                    }
                }
            }
        }
        cells
    }

    /// Compiles one `(cell, run)` task down to the ordinary single-run
    /// [`RunSpec`] it is equivalent to — the campaign engine executes
    /// exactly what `dex-sim` with these flags would execute (pinned by a
    /// test), so any campaign data point can be replayed standalone.
    pub fn runspec_for(&self, cell: &CampaignCell, run: usize) -> RunSpec {
        let model = self.phases.phase_at(run).model;
        RunSpec {
            n: cell.n,
            t: cell.t,
            f: cell.f,
            algo: self.algo,
            workload: WorkloadSpec::HotKey {
                clients: model.clients,
                s: model.skew,
                hot: model.hot,
                bias: model.bias,
            },
            adversary: cell.adversary,
            underlying: self.underlying,
            placement: crate::runner::Placement::RandomK,
            delay: self.delay.clone(),
            chaos: cell.chaos.clone(),
            pipeline: PipelineSpec::default(),
            aggregate: crate::spec::AggregationSpec::Off,
            runtime: crate::spec::RuntimeSpec::Simnet,
            kill: crate::spec::KillSpec::default(),
            stats: false,
            runs: 1,
            seed: self.seed0 + run as u64,
            max_events: self.max_events,
            trace: false,
        }
    }

    /// The netd spelling of the same `(cell, run)` task: identical spec,
    /// but executed as real processes over TCP by the `dex-netd` cluster
    /// harness. Only fault-free cells are eligible — the netd consensus
    /// cell spawns one child per process and a Byzantine child would need
    /// its own adversarial binary. Used to record wall-clock fast-decision
    /// rates next to the simnet rates in the campaign artifact.
    pub fn runspec_for_netd(&self, cell: &CampaignCell, run: usize) -> Result<RunSpec, String> {
        if cell.f != 0 {
            return Err(format!(
                "campaign cell has f = {} but netd consensus children all run correct \
                 code; pick an f = 0 cell",
                cell.f
            ));
        }
        if !cell.chaos.is_none() {
            return Err(
                "campaign-over-netd compares fast-decision rates on clean networks; \
                 pick a chaos-free cell (netd chaos cells run via --cluster --chaos)"
                    .into(),
            );
        }
        let mut spec = self.runspec_for(cell, run);
        spec.runtime = crate::spec::RuntimeSpec::Netd { peers: None };
        Ok(spec)
    }
}

/// The compact per-run record a campaign worker keeps — decide-path
/// counts, latencies and safety bits; never the trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunDigest {
    /// Index into [`CampaignSpec::cells`].
    pub cell: usize,
    /// Run index within the cell (seed = `seed0 + run`).
    pub run: usize,
    /// Phase index of the run (see [`PhaseSchedule::phase_index`]).
    pub phase: usize,
    /// Frequency margin of the run's nominal input vector — the
    /// contention the population draw actually produced.
    pub margin: usize,
    /// Correct processes deciding in one step.
    pub one_step: u32,
    /// Correct processes deciding in two steps.
    pub two_step: u32,
    /// Correct processes adopting the underlying consensus.
    pub fallback: u32,
    /// Correct processes that never decided.
    pub undecided: u32,
    /// Virtual-time decision latencies, one per decided correct process.
    pub latencies: Vec<u64>,
    /// Messages delivered in the run.
    pub messages: u64,
    /// Whether all decided correct processes agreed.
    pub agreement_ok: bool,
    /// Whether the network drained before the event cap.
    pub quiescent: bool,
}

/// Executes one `(cell, run)` task against a pre-compiled population.
///
/// Mirrors the batch runner's per-index derivation exactly: the run's RNG
/// is seeded `seed ^ 0x5EED_5EED`, the input vector is drawn first, then
/// the fault plan, then the chaos schedule is compiled against it.
fn execute_task(
    spec: &CampaignSpec,
    cells: &[CampaignCell],
    populations: &[ClientPopulation],
    cell_idx: usize,
    run: usize,
) -> RunDigest {
    let cell = &cells[cell_idx];
    let config = SystemConfig::new(cell.n, cell.t).expect("validated pair");
    let phase = spec.phases.phase_index(run);
    let seed = spec.seed0 + run as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let input = populations[phase].generate(cell.n, &mut rng);
    let fault_plan = FaultPlan::random_k(config, cell.f, &mut rng);
    let faults = cell.chaos.build(config, &fault_plan);
    let margin = input.to_view().frequency_margin();
    let underlying = match spec.underlying {
        UnderlyingSpec::Oracle => UnderlyingKind::Oracle,
        UnderlyingSpec::Mvc => UnderlyingKind::Mvc { coin_seed: seed },
    };
    let result = run_instance(&RunInstance {
        config,
        algo: spec.algo,
        underlying,
        strategy: cell.adversary.strategy(),
        fault_plan,
        input,
        delay: spec.delay.clone(),
        faults,
        seed,
        max_events: spec.max_events,
        aggregate: false,
    });
    let mut digest = RunDigest {
        cell: cell_idx,
        run,
        phase,
        margin,
        one_step: 0,
        two_step: 0,
        fallback: 0,
        undecided: 0,
        latencies: Vec::new(),
        messages: result.messages,
        agreement_ok: result.agreement_ok(),
        quiescent: result.quiescent,
    };
    for outcome in &result.outcomes {
        match outcome {
            Outcome::Faulty => {}
            Outcome::Undecided => digest.undecided += 1,
            Outcome::Decided(r) => {
                match r.path {
                    "1-step" => digest.one_step += 1,
                    "2-step" => digest.two_step += 1,
                    _ => digest.fallback += 1,
                }
                digest.latencies.push(r.latency);
            }
        }
    }
    digest
}

/// Runs every `(cell, run)` task of the campaign on `jobs` scoped worker
/// threads and returns the raw per-run digests, in whatever order the
/// workers produced them.
///
/// Workers steal tasks off a shared atomic cursor (the grid is flat:
/// task `i` is cell `i / seeds`, run `i % seeds`) and fold digests into
/// per-worker vectors that are only merged after every worker has joined.
/// The digest *set* is identical for any `jobs ≥ 1`; [`aggregate`] sorts
/// before folding, so the artifact is too.
pub fn run_digests(spec: &CampaignSpec, jobs: usize) -> Result<Vec<RunDigest>, String> {
    spec.validate()?;
    let cells = spec.cells();
    let populations = spec.phases.compile();
    let total = cells.len() * spec.seeds;
    let jobs = jobs.clamp(1, total.max(1));
    let cursor = AtomicUsize::new(0);
    let mut digests: Vec<RunDigest> = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (cells, populations, cursor) = (&cells, &populations, &cursor);
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    local.push(execute_task(
                        spec,
                        cells,
                        populations,
                        i / spec.seeds,
                        i % spec.seeds,
                    ));
                }
                local
            }));
        }
        for handle in handles {
            digests.extend(handle.join().expect("campaign worker panicked"));
        }
    });
    Ok(digests)
}

/// Runs the whole campaign: [`run_digests`] then [`aggregate`]. The
/// returned report renders the byte-stable artifact regardless of `jobs`.
pub fn run_campaign(spec: &CampaignSpec, jobs: usize) -> Result<CampaignReport, String> {
    Ok(aggregate(spec, run_digests(spec, jobs)?))
}

/// Aggregated statistics of one grid cell.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CellStats {
    /// Runs executed.
    pub runs: usize,
    /// One-step decisions across all runs.
    pub one_step: u64,
    /// Two-step decisions across all runs.
    pub two_step: u64,
    /// Fallback decisions across all runs.
    pub fallback: u64,
    /// Correct processes that never decided.
    pub undecided: u64,
    /// All decision latencies, sorted ascending.
    pub latencies: Vec<u64>,
    /// Total messages delivered.
    pub messages: u64,
    /// Runs violating agreement (must stay 0).
    pub agreement_violations: usize,
    /// Runs hitting the event cap (must stay 0).
    pub non_quiescent: usize,
}

impl CellStats {
    /// Expedited decisions (one- or two-step).
    pub fn fast(&self) -> u64 {
        self.one_step + self.two_step
    }

    /// Correct-process observations (decided or not) — the fast-rate
    /// denominator.
    pub fn total(&self) -> u64 {
        self.one_step + self.two_step + self.fallback + self.undecided
    }

    /// Fast-decision rate, `None` for an empty cell.
    pub fn fast_rate(&self) -> Option<f64> {
        (self.total() > 0).then(|| self.fast() as f64 / self.total() as f64)
    }
}

/// A point on a fast-decision-rate curve: `fast / total` at some sweep
/// coordinate. Rate comparisons use exact cross-multiplication, never
/// floats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RatePoint {
    /// Expedited decisions.
    pub fast: u64,
    /// Observations.
    pub total: u64,
}

impl RatePoint {
    /// Exact `self > other` on the underlying fractions.
    pub fn rate_gt(&self, other: &RatePoint) -> bool {
        (self.fast as u128) * (other.total as u128) > (other.fast as u128) * (self.total as u128)
    }

    /// Exact `self < other` on the underlying fractions.
    pub fn rate_lt(&self, other: &RatePoint) -> bool {
        other.rate_gt(self)
    }
}

/// The aggregated campaign: per-cell statistics plus the derived
/// fast-decision-rate curves, renderable as the byte-stable artifact.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignReport {
    /// The spec the report was aggregated from.
    pub spec: CampaignSpec,
    /// The grid, in canonical order (parallel to `stats`).
    pub cells: Vec<CampaignCell>,
    /// Per-cell aggregates, in canonical cell order.
    pub stats: Vec<CellStats>,
    /// Fast-rate curves vs `f`, grouped by `(n, t, adversary, chaos)` in
    /// canonical order; each curve holds one point per `f = 0..=t`.
    pub by_f: Vec<FCurve>,
    /// Fast rate by input frequency margin, per pair.
    pub by_margin: Vec<MarginCurve>,
    /// Fast rate by contention phase, per pair.
    pub by_phase: Vec<PhaseCurve>,
}

/// A fast-rate-vs-`f` curve for one `(pair, adversary, chaos)` group.
#[derive(Clone, PartialEq, Debug)]
pub struct FCurve {
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Adversary of the group.
    pub adversary: AdversarySpec,
    /// Chaos schedule of the group.
    pub chaos: ChaosSpec,
    /// One point per `f`, ascending.
    pub points: Vec<(usize, RatePoint)>,
}

/// Fast rate bucketed by the input vector's frequency margin, for one pair
/// (pooled over every cell of that pair).
#[derive(Clone, PartialEq, Debug)]
pub struct MarginCurve {
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// `(margin, rate)` points, margin ascending.
    pub points: Vec<(usize, RatePoint)>,
}

/// Fast rate per contention phase, for one pair (pooled over every cell).
#[derive(Clone, PartialEq, Debug)]
pub struct PhaseCurve {
    /// System size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// `(phase index, rate)` points, phase ascending.
    pub points: Vec<(usize, RatePoint)>,
}

/// Folds per-run digests into the campaign report.
///
/// Order-independent by construction: digests are sorted by `(cell, run)`
/// before any floating-point fold, so a shuffled digest vector renders the
/// byte-identical artifact (pinned by a proptest).
pub fn aggregate(spec: &CampaignSpec, mut digests: Vec<RunDigest>) -> CampaignReport {
    digests.sort_by_key(|d| (d.cell, d.run));
    let cells = spec.cells();
    let mut stats = vec![CellStats::default(); cells.len()];
    let mut margin: BTreeMap<(usize, usize), BTreeMap<usize, RatePoint>> = BTreeMap::new();
    let mut phase: BTreeMap<(usize, usize), BTreeMap<usize, RatePoint>> = BTreeMap::new();
    for d in &digests {
        let cell = &cells[d.cell];
        let s = &mut stats[d.cell];
        s.runs += 1;
        s.one_step += u64::from(d.one_step);
        s.two_step += u64::from(d.two_step);
        s.fallback += u64::from(d.fallback);
        s.undecided += u64::from(d.undecided);
        s.latencies.extend_from_slice(&d.latencies);
        s.messages += d.messages;
        if !d.agreement_ok {
            s.agreement_violations += 1;
        }
        if !d.quiescent {
            s.non_quiescent += 1;
        }
        let fast = u64::from(d.one_step + d.two_step);
        let total = u64::from(d.one_step + d.two_step + d.fallback + d.undecided);
        let m = margin
            .entry((cell.n, cell.t))
            .or_default()
            .entry(d.margin)
            .or_insert(RatePoint { fast: 0, total: 0 });
        m.fast += fast;
        m.total += total;
        let p = phase
            .entry((cell.n, cell.t))
            .or_default()
            .entry(d.phase)
            .or_insert(RatePoint { fast: 0, total: 0 });
        p.fast += fast;
        p.total += total;
    }
    for s in &mut stats {
        s.latencies.sort_unstable();
    }
    // f-curves: cells sharing (pair, adversary, chaos) differ only in f and
    // appear in f-ascending canonical order.
    let mut by_f: Vec<FCurve> = Vec::new();
    for (cell, s) in cells.iter().zip(&stats) {
        let point = RatePoint {
            fast: s.fast(),
            total: s.total(),
        };
        match by_f.iter_mut().find(|c| {
            c.n == cell.n && c.t == cell.t && c.adversary == cell.adversary && c.chaos == cell.chaos
        }) {
            Some(curve) => curve.points.push((cell.f, point)),
            None => by_f.push(FCurve {
                n: cell.n,
                t: cell.t,
                adversary: cell.adversary,
                chaos: cell.chaos.clone(),
                points: vec![(cell.f, point)],
            }),
        }
    }
    let by_margin = margin
        .into_iter()
        .map(|((n, t), points)| MarginCurve {
            n,
            t,
            points: points.into_iter().collect(),
        })
        .collect();
    let by_phase = phase
        .into_iter()
        .map(|((n, t), points)| PhaseCurve {
            n,
            t,
            points: points.into_iter().collect(),
        })
        .collect();
    CampaignReport {
        spec: spec.clone(),
        cells,
        stats,
        by_f,
        by_margin,
        by_phase,
    }
}

/// Result of the `f`-monotonicity audit (see
/// [`CampaignReport::check_f_monotonicity`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FMonotonicity {
    /// Groups where the fast rate *increased* with `f` — each a violation
    /// of the paper's adaptivity claim, described for the failure message.
    pub violations: Vec<String>,
    /// Groups where the rate at some `f < t` strictly exceeds the rate at
    /// `f = t`.
    pub strict: usize,
    /// As `strict`, but restricted to canonical chaos schedules (the
    /// MATRIX) — the acceptance criterion's bar.
    pub strict_canonical: usize,
}

impl FMonotonicity {
    /// `true` when no group's rate increased with `f`.
    pub fn monotone(&self) -> bool {
        self.violations.is_empty()
    }
}

fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn rate_json(p: &RatePoint) -> String {
    if p.total == 0 {
        "null".into()
    } else {
        format!("{:.6}", p.fast as f64 / p.total as f64)
    }
}

impl CampaignReport {
    /// Total runs aggregated.
    pub fn runs(&self) -> usize {
        self.stats.iter().map(|s| s.runs).sum()
    }

    /// Total safety/liveness violations (must stay 0 for a clean campaign;
    /// non-quiescent runs under non-eventually-clean schedules — amnesiac
    /// crash-restart — are reported separately per cell, not counted here
    /// as violations of the protocol).
    pub fn agreement_violations(&self) -> usize {
        self.stats.iter().map(|s| s.agreement_violations).sum()
    }

    /// Audits every `f`-curve: the fast-decision rate must be monotone
    /// non-increasing in `f`, and strictly higher at some `f < t` than at
    /// `f = t` in at least one group (the adaptivity the paper claims).
    /// Rate comparisons are exact (cross-multiplied), so ties never count
    /// either way.
    pub fn check_f_monotonicity(&self) -> FMonotonicity {
        let mut out = FMonotonicity::default();
        for curve in &self.by_f {
            for pair in curve.points.windows(2) {
                let (f_lo, lo) = pair[0];
                let (f_hi, hi) = pair[1];
                if lo.rate_lt(&hi) {
                    out.violations.push(format!(
                        "(n={}, t={}, adversary={}, chaos={}): fast rate rose from {} at f={} to {} at f={}",
                        curve.n,
                        curve.t,
                        curve.adversary.flag(),
                        curve.chaos.flag(),
                        rate_json(&lo),
                        f_lo,
                        rate_json(&hi),
                        f_hi,
                    ));
                }
            }
            let at_t = curve.points.last().expect("f = t point").1;
            let strict = curve
                .points
                .iter()
                .any(|(f, p)| *f < curve.t && p.rate_gt(&at_t));
            if strict {
                out.strict += 1;
                if ChaosSpec::MATRIX.contains(&curve.chaos) {
                    out.strict_canonical += 1;
                }
            }
        }
        out
    }

    /// Renders the byte-stable campaign artifact: fixed key order, exact
    /// integers, rates at fixed 6-decimal precision, every float derived
    /// from data folded in sorted `(cell, run)` order.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"campaign\": \"{}\",\n  \"algo\": \"{}\",\n  \"underlying\": \"{}\",\n  \"seeds\": {},\n  \"seed0\": {},\n",
            self.spec.name,
            self.spec.algo.label(),
            self.spec.underlying.flag(),
            self.spec.seeds,
            self.spec.seed0,
        );
        out.push_str("  \"phases\": [");
        for (i, ph) in self.spec.phases.phases().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let m = &ph.model;
            let _ = write!(
                out,
                "{{\"label\": \"{}\", \"runs\": {}, \"clients\": {}, \"skew\": {:.3}, \"hot\": {:.3}, \"bias\": {:.3}}}",
                ph.label, ph.runs, m.clients, m.skew, m.hot, m.bias
            );
        }
        out.push_str("],\n  \"cells\": [\n");
        for (i, (cell, s)) in self.cells.iter().zip(&self.stats).enumerate() {
            let fast = RatePoint {
                fast: s.fast(),
                total: s.total(),
            };
            let _ = writeln!(
                out,
                "    {{\"pair\": [{}, {}], \"f\": {}, \"adversary\": \"{}\", \"chaos\": \"{}\", \
                 \"runs\": {}, \"one_step\": {}, \"two_step\": {}, \"fallback\": {}, \"undecided\": {}, \
                 \"fast_rate\": {}, \"messages\": {}, \"agreement_violations\": {}, \"non_quiescent\": {}, \
                 \"latency\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}}}{}",
                cell.n,
                cell.t,
                cell.f,
                cell.adversary.flag(),
                cell.chaos.flag(),
                s.runs,
                s.one_step,
                s.two_step,
                s.fallback,
                s.undecided,
                rate_json(&fast),
                s.messages,
                s.agreement_violations,
                s.non_quiescent,
                quantile_sorted(&s.latencies, 0.50),
                quantile_sorted(&s.latencies, 0.90),
                quantile_sorted(&s.latencies, 0.99),
                s.latencies.last().copied().unwrap_or(0),
                if i + 1 == self.cells.len() { "" } else { "," },
            );
        }
        out.push_str("  ],\n  \"curves\": {\n    \"fast_by_f\": [\n");
        for (i, curve) in self.by_f.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"pair\": [{}, {}], \"adversary\": \"{}\", \"chaos\": \"{}\", \"points\": [",
                curve.n,
                curve.t,
                curve.adversary.flag(),
                curve.chaos.flag(),
            );
            for (j, (f, p)) in curve.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"f\": {}, \"fast\": {}, \"total\": {}, \"rate\": {}}}",
                    f,
                    p.fast,
                    p.total,
                    rate_json(p)
                );
            }
            let _ = writeln!(
                out,
                "]}}{}",
                if i + 1 == self.by_f.len() { "" } else { "," }
            );
        }
        out.push_str("    ],\n    \"fast_by_margin\": [\n");
        for (i, curve) in self.by_margin.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"pair\": [{}, {}], \"points\": [",
                curve.n, curve.t
            );
            for (j, (m, p)) in curve.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"margin\": {}, \"fast\": {}, \"total\": {}, \"rate\": {}}}",
                    m,
                    p.fast,
                    p.total,
                    rate_json(p)
                );
            }
            let _ = writeln!(
                out,
                "]}}{}",
                if i + 1 == self.by_margin.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("    ],\n    \"fast_by_phase\": [\n");
        for (i, curve) in self.by_phase.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"pair\": [{}, {}], \"points\": [",
                curve.n, curve.t
            );
            for (j, (ph, p)) in curve.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"phase\": {}, \"label\": \"{}\", \"fast\": {}, \"total\": {}, \"rate\": {}}}",
                    ph,
                    self.spec.phases.phases()[*ph].label,
                    p.fast,
                    p.total,
                    rate_json(p)
                );
            }
            let _ = writeln!(
                out,
                "]}}{}",
                if i + 1 == self.by_phase.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        let _ = write!(
            out,
            "    ]\n  }},\n  \"totals\": {{\"runs\": {}, \"agreement_violations\": {}}}\n}}\n",
            self.runs(),
            self.agreement_violations(),
        );
        out
    }

    /// Renders a markdown table of fast-decision rates by `f` — the CI
    /// step-summary view.
    pub fn summary_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### Campaign `{}` — fast-decision rates ({} runs)\n",
            self.spec.name,
            self.runs()
        );
        out.push_str("| pair | adversary | chaos |");
        let max_t = self.spec.pairs.iter().map(|&(_, t)| t).max().unwrap_or(0);
        for f in 0..=max_t {
            let _ = write!(out, " f={f} |");
        }
        out.push('\n');
        out.push_str("|---|---|---|");
        for _ in 0..=max_t {
            out.push_str("---|");
        }
        out.push('\n');
        for curve in &self.by_f {
            let _ = write!(
                out,
                "| ({}, {}) | {} | {} |",
                curve.n,
                curve.t,
                curve.adversary.flag(),
                curve.chaos.flag()
            );
            for f in 0..=max_t {
                match curve.points.iter().find(|(pf, _)| *pf == f) {
                    Some((_, p)) if p.total > 0 => {
                        let _ = write!(out, " {:.3} |", p.fast as f64 / p.total as f64);
                    }
                    _ => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny campaign for unit tests: one pair, clean + one
    /// chaos schedule, 4 seeds.
    fn tiny() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            algo: Algo::DexFreq,
            underlying: UnderlyingSpec::Oracle,
            pairs: vec![(7, 1)],
            adversaries: vec![AdversarySpec::Silent],
            chaos: vec![ChaosSpec::None, ChaosSpec::DupHeavy { p: 0.35 }],
            phases: PhaseSchedule::new(vec![
                ContentionPhase::new(
                    "calm",
                    PopulationModel {
                        clients: 1000,
                        skew: 1.2,
                        hot: 0.9,
                        bias: 0.0,
                    },
                    1,
                ),
                ContentionPhase::new(
                    "crowd",
                    PopulationModel {
                        clients: 1000,
                        skew: 0.8,
                        hot: 0.3,
                        bias: 0.2,
                    },
                    1,
                ),
            ]),
            seeds: 4,
            seed0: 0,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            max_events: 5_000_000,
        }
    }

    #[test]
    fn grid_enumeration_is_canonical() {
        let spec = tiny();
        let cells = spec.cells();
        // 1 pair × f ∈ {0, 1} × 1 adversary × 2 chaos.
        assert_eq!(cells.len(), 4);
        assert_eq!((cells[0].f, cells[0].chaos.clone()), (0, ChaosSpec::None));
        assert_eq!(cells[3].f, 1);
        assert!(matches!(cells[3].chaos, ChaosSpec::DupHeavy { .. }));
    }

    #[test]
    fn worker_count_does_not_change_the_artifact() {
        let spec = tiny();
        let one = run_campaign(&spec, 1).unwrap();
        let eight = run_campaign(&spec, 8).unwrap();
        assert_eq!(one.render_json(), eight.render_json());
        assert_eq!(one.runs(), 16);
        assert_eq!(one.agreement_violations(), 0);
    }

    #[test]
    fn aggregation_is_order_independent() {
        let spec = tiny();
        let cells = spec.cells();
        let populations = spec.phases.compile();
        let mut digests = Vec::new();
        for cell in 0..cells.len() {
            for run in 0..spec.seeds {
                digests.push(execute_task(&spec, &cells, &populations, cell, run));
            }
        }
        let forward = aggregate(&spec, digests.clone()).render_json();
        digests.reverse();
        assert_eq!(aggregate(&spec, digests).render_json(), forward);
    }

    #[test]
    fn campaign_task_equals_its_compiled_runspec() {
        // The engine must execute exactly what the compiled per-seed
        // RunSpec executes: same decide paths, same latency sum.
        let spec = tiny();
        let cells = spec.cells();
        let populations = spec.phases.compile();
        for (cell_idx, run) in [(0usize, 0usize), (1, 1), (3, 2)] {
            let digest = execute_task(&spec, &cells, &populations, cell_idx, run);
            let stats = spec.runspec_for(&cells[cell_idx], run).run().unwrap();
            assert_eq!(stats.runs, 1);
            assert_eq!(
                u64::from(digest.one_step),
                stats.paths.count(&"1-step"),
                "cell {cell_idx} run {run}"
            );
            assert_eq!(u64::from(digest.fallback), stats.paths.count(&"fallback"));
            let latency_sum: u64 = digest.latencies.iter().sum();
            assert_eq!(
                latency_sum as f64,
                stats.latency.mean() * stats.latency.count() as f64
            );
        }
    }

    #[test]
    fn fast_rate_comparisons_are_exact() {
        let a = RatePoint { fast: 1, total: 3 };
        let b = RatePoint { fast: 2, total: 6 };
        let c = RatePoint { fast: 3, total: 6 };
        assert!(!a.rate_gt(&b) && !b.rate_gt(&a), "equal fractions tie");
        assert!(c.rate_gt(&a));
        assert!(a.rate_lt(&c));
    }

    #[test]
    fn monotonicity_audit_flags_rising_rates() {
        let spec = tiny();
        let report = run_campaign(&spec, 2).unwrap();
        let audit = report.check_f_monotonicity();
        assert!(audit.monotone(), "{:?}", audit.violations);
        // Forge a rising curve and check it is flagged.
        let mut bad = report.clone();
        bad.by_f[0].points = vec![
            (0, RatePoint { fast: 1, total: 10 }),
            (1, RatePoint { fast: 9, total: 10 }),
        ];
        let audit = bad.check_f_monotonicity();
        assert!(!audit.monotone());
        assert!(audit.violations[0].contains("rose"));
    }

    #[test]
    fn validate_rejects_illegal_pairs_and_empty_axes() {
        let mut spec = tiny();
        spec.pairs = vec![(6, 1)]; // dex-freq needs n > 6t
        assert!(spec.validate().is_err());
        let mut spec = tiny();
        spec.chaos.clear();
        assert!(spec.validate().is_err());
        let mut spec = tiny();
        spec.seeds = 0;
        assert!(spec.validate().is_err());
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(CampaignSpec::by_name("smoke").unwrap().name, "smoke");
        assert_eq!(CampaignSpec::by_name("standard").unwrap().name, "standard");
        assert!(CampaignSpec::by_name("nope").is_none());
        CampaignSpec::smoke().validate().unwrap();
        CampaignSpec::standard(10, 0).validate().unwrap();
    }

    #[test]
    fn markdown_summary_has_one_row_per_group() {
        let report = run_campaign(&tiny(), 2).unwrap();
        let md = report.summary_markdown();
        // 1 pair × 1 adversary × 2 chaos = 2 curve rows.
        assert_eq!(md.matches("| (7, 1) |").count(), 2);
        assert!(md.contains("f=0"));
    }
}
