//! **E7 — Complementarity of the two legal pairs** (§1.2): the expedited
//! regions of `P_freq` and `P_prv` are complementary.
//!
//! Two workload families on `n = 6t + 1` (both pairs constructible):
//!
//! * **Commit-heavy** (`BernoulliMix` with the privileged value `m = 1`):
//!   the privileged pair fires whenever `#m` clears its thresholds even if
//!   the margin over Abort is modest; the frequency pair needs the margin
//!   itself.
//! * **Hot-value splits with `m` absent** (`SplitCount` between 2 and 3):
//!   the frequency pair can expedite any popular value; the privileged pair
//!   never fires because `m` is not proposed at all.

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::{BernoulliMix, InputGenerator, SplitCount};

/// Options for the pair-complementarity experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `6t + 1`).
    pub t: usize,
    /// Runs per workload point.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 2,
            runs: 100,
            seed0: 0,
        }
    }
}

/// Fast-decision fractions of one algorithm on one workload.
pub struct FastFractions {
    /// Fraction of decisions at one step.
    pub one_step: f64,
    /// Fraction of decisions at one or two steps.
    pub le_two_step: f64,
}

/// Measures fast-path fractions for `algo` on `workload`.
pub fn fast_fractions(
    cfg: SystemConfig,
    algo: Algo,
    workload: &(dyn InputGenerator + Sync),
    runs: usize,
    seed0: u64,
) -> FastFractions {
    let stats = run_batch_auto(&BatchSpec {
        chaos: crate::spec::ChaosSpec::None,
        config: cfg,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        f: 0,
        placement: Placement::LastK,
        workload,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        runs,
        seed0,
        max_events: 5_000_000,
        aggregate: false,
    });
    assert!(stats.clean(), "{stats:?}");
    FastFractions {
        one_step: stats.path_fraction("1-step"),
        le_two_step: stats.path_fraction("1-step") + stats.path_fraction("2-step"),
    }
}

/// Runs E7 and renders the comparison table.
pub fn run(opts: Opts) -> Table {
    let t = opts.t;
    let n = 6 * t + 1;
    let cfg = SystemConfig::new(n, t).expect("n = 6t + 1 > 3t");
    let mut table = Table::new(vec![
        "workload".into(),
        "freq 1-step".into(),
        "freq <=2-step".into(),
        "prv 1-step".into(),
        "prv <=2-step".into(),
    ]);

    // Commit-heavy sweep: the privileged value m = 1 vs abort = 0.
    for p10 in [60, 70, 80, 90, 100] {
        let workload = BernoulliMix {
            p: p10 as f64 / 100.0,
            a: 1,
            b: 0,
        };
        let freq = fast_fractions(cfg, Algo::DexFreq, &workload, opts.runs, opts.seed0);
        let prv = fast_fractions(cfg, Algo::DexPrv { m: 1 }, &workload, opts.runs, opts.seed0);
        table.row(vec![
            workload.name(),
            format!("{:.2}", freq.one_step),
            format!("{:.2}", freq.le_two_step),
            format!("{:.2}", prv.one_step),
            format!("{:.2}", prv.le_two_step),
        ]);
    }

    // Splits between two non-privileged values (m = 1 absent).
    for minor_count in [0, 1, t] {
        let workload = SplitCount {
            major: 2,
            minor: 3,
            minor_count,
        };
        let freq = fast_fractions(cfg, Algo::DexFreq, &workload, opts.runs, opts.seed0 + 77);
        let prv = fast_fractions(
            cfg,
            Algo::DexPrv { m: 1 },
            &workload,
            opts.runs,
            opts.seed0 + 77,
        );
        table.row(vec![
            workload.name(),
            format!("{:.2}", freq.one_step),
            format!("{:.2}", freq.le_two_step),
            format!("{:.2}", prv.one_step),
            format!("{:.2}", prv.le_two_step),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prv_wins_commit_heavy_freq_wins_foreign_values() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        // n = 7, t = 1, p = 0.8: E[#m] = 5.6 — P1_prv (#m > 3) very likely;
        // freq P1 needs margin > 4, i.e. #m ≥ 6 — much rarer.
        let commitish = BernoulliMix { p: 0.8, a: 1, b: 0 };
        let freq = fast_fractions(cfg, Algo::DexFreq, &commitish, 40, 1);
        let prv = fast_fractions(cfg, Algo::DexPrv { m: 1 }, &commitish, 40, 1);
        assert!(
            prv.one_step > freq.one_step,
            "prv {:.2} vs freq {:.2}",
            prv.one_step,
            freq.one_step
        );

        // Unanimous on value 2 (m absent): freq one-step, prv never fast.
        let foreign = SplitCount {
            major: 2,
            minor: 3,
            minor_count: 0,
        };
        let freq = fast_fractions(cfg, Algo::DexFreq, &foreign, 10, 2);
        let prv = fast_fractions(cfg, Algo::DexPrv { m: 1 }, &foreign, 10, 2);
        assert_eq!(freq.one_step, 1.0);
        assert_eq!(prv.one_step, 0.0);
        assert_eq!(prv.le_two_step, 0.0);
    }
}
