//! Single-run and batch experiment execution.

use crate::nodes::{BoscoNode, CrashNode, DexNode, PlainNode};
use crate::spec::ChaosSpec;
use crate::ucwrap::AnyUc;
use dex_adversary::{ByzantineActor, ByzantineStrategy, FaultPlan};
use dex_baselines::{
    BoscoActor, BoscoPath, BoscoProcess, CrashActor, CrashOneStep, CrashPath, CrashRule,
    UnderlyingOnlyActor, UnderlyingOnlyProcess,
};
use dex_conditions::{FrequencyPair, PrivilegedPair};
use dex_core::{DecisionPath, DexActor, DexProcess};
use dex_metrics::{Counter, Summary};
use dex_obs::{obs_code, ChaosMeta, ProcessTrace, RunTrace, SchemeRules, TraceMeta};
use dex_simnet::{DelayModel, FaultSchedule, Simulation};
use dex_types::{InputVector, ProcessId, SystemConfig};
use dex_workloads::InputGenerator;
use rand::rngs::StdRng;

/// Which algorithm a run executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algo {
    /// DEX with the frequency-based pair (`n > 6t`).
    DexFreq,
    /// DEX with the privileged-value pair (`n > 5t`); `m` is the privileged
    /// value.
    DexPrv {
        /// The privileged value.
        m: u64,
    },
    /// The Bosco baseline (weakly one-step at `n > 5t`, strongly at
    /// `n > 7t`).
    Bosco,
    /// No expedition: straight to the underlying consensus.
    UnderlyingOnly,
    /// Crash-model baseline of Brasileiro et al. \[2\] (`n > 3t`, crash
    /// faults only — run it with the `Silent` strategy).
    Brasileiro,
    /// Adaptive condition-based crash-model one-step rule (spirit of
    /// Izumi–Masuzawa \[8\]; crash faults only).
    CrashAdaptive,
}

impl Algo {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Algo::DexFreq => "dex-freq",
            Algo::DexPrv { .. } => "dex-prv",
            Algo::Bosco => "bosco",
            Algo::UnderlyingOnly => "underlying-only",
            Algo::Brasileiro => "brasileiro",
            Algo::CrashAdaptive => "crash-adaptive",
        }
    }
}

/// Which underlying consensus a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnderlyingKind {
    /// Idealized 2-step coordinator.
    Oracle,
    /// Real randomized stack, with a shared common-coin seed.
    Mvc {
        /// Shared seed of the common-coin abstraction.
        coin_seed: u64,
    },
}

/// Full description of a single run.
#[derive(Clone, Debug)]
pub struct RunInstance {
    /// System size and fault bound.
    pub config: SystemConfig,
    /// Algorithm under test.
    pub algo: Algo,
    /// Underlying consensus implementation.
    pub underlying: UnderlyingKind,
    /// Strategy executed by every Byzantine process.
    pub strategy: ByzantineStrategy<u64>,
    /// Which processes are Byzantine.
    pub fault_plan: FaultPlan,
    /// The input vector; faulty entries are the adversary's nominal values.
    pub input: InputVector<u64>,
    /// Network delay model.
    pub delay: DelayModel,
    /// Network chaos schedule (partitions, lossy links, crash windows);
    /// [`FaultSchedule::none()`] for a clean network.
    pub faults: FaultSchedule,
    /// Simulation seed.
    pub seed: u64,
    /// Delivery cap (guards against livelock).
    pub max_events: u64,
    /// Enable echo/vote aggregation on correct nodes (Byzantine nodes never
    /// batch). Off keeps the wire byte-identical to the pre-aggregation
    /// runner.
    pub aggregate: bool,
}

/// Result of one correct process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessResult {
    /// The decided value.
    pub value: u64,
    /// `"1-step"`, `"2-step"` or `"fallback"`.
    pub path: &'static str,
    /// Causal communication steps to the decision.
    pub steps: u32,
    /// Virtual-time latency to the decision.
    pub latency: u64,
}

/// Per-process outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The process was Byzantine; its behaviour is not measured.
    Faulty,
    /// A correct process that never decided (a termination violation when
    /// the run was quiescent).
    Undecided,
    /// A correct process that decided.
    Decided(ProcessResult),
}

/// Result of one run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunResult {
    /// Outcome of each process, indexed by id.
    pub outcomes: Vec<Outcome>,
    /// Whether the network drained before the event cap.
    pub quiescent: bool,
    /// Total messages delivered.
    pub messages: u64,
    /// Full network counters for the run (per-class sends, batched echoes,
    /// bytes on wire).
    pub net: dex_simnet::NetStats,
}

impl RunResult {
    /// Iterates over the decided correct processes.
    pub fn decided(&self) -> impl Iterator<Item = &ProcessResult> {
        self.outcomes.iter().filter_map(|o| match o {
            Outcome::Decided(r) => Some(r),
            _ => None,
        })
    }

    /// Agreement: all decided correct processes agree.
    pub fn agreement_ok(&self) -> bool {
        let mut values = self.decided().map(|r| r.value);
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    /// Termination: every correct process decided.
    pub fn all_decided(&self) -> bool {
        !self
            .outcomes
            .iter()
            .any(|o| matches!(o, Outcome::Undecided))
    }

    /// Unanimity: when all correct processes proposed `v`, all decisions
    /// must be `v`. Returns `true` when the premise does not apply.
    pub fn unanimity_ok(&self, input: &InputVector<u64>, plan: &FaultPlan) -> bool {
        let mut correct_values = input
            .iter()
            .filter(|(p, _)| !plan.is_faulty(*p))
            .map(|(_, v)| *v);
        let Some(first) = correct_values.next() else {
            return true;
        };
        if !correct_values.all(|v| v == first) {
            return true; // premise does not hold
        }
        self.decided().all(|r| r.value == first)
    }

    /// The largest step count among decided processes.
    pub fn max_steps(&self) -> Option<u32> {
        self.decided().map(|r| r.steps).max()
    }

    /// Mean step count among decided processes.
    pub fn mean_steps(&self) -> Option<f64> {
        let (mut sum, mut n) = (0u64, 0u64);
        for r in self.decided() {
            sum += u64::from(r.steps);
            n += 1;
        }
        (n > 0).then(|| sum as f64 / n as f64)
    }
}

fn byz_strategy(spec: &RunInstance) -> ByzantineStrategy<u64> {
    spec.strategy.clone()
}

fn make_uc(spec: &RunInstance, me: ProcessId) -> AnyUc {
    match spec.underlying {
        UnderlyingKind::Oracle => {
            AnyUc::oracle(spec.config, me, spec.fault_plan.coordinator(spec.config))
        }
        UnderlyingKind::Mvc { coin_seed } => AnyUc::mvc(spec.config, me, coin_seed),
    }
}

/// Executes one run.
///
/// # Panics
///
/// Panics if the spec's algorithm cannot be instantiated for its
/// configuration (e.g. `DexFreq` with `n ≤ 6t`) or the fault plan exceeds
/// `t` — misconfigured experiments should fail loudly.
pub fn run_instance(spec: &RunInstance) -> RunResult {
    assert_eq!(
        spec.input.n(),
        spec.config.n(),
        "input vector must match system size"
    );
    dispatch_spec(spec, false).0
}

/// A run's measured result together with the structured event trace of
/// every process (see `dex-obs`). Byzantine processes contribute empty
/// traces; the checker excludes them anyway.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// The ordinary measured result.
    pub result: RunResult,
    /// The full trace, ready for [`dex_obs::check`].
    pub trace: RunTrace,
}

/// Like [`run_instance`], but with per-process event recording enabled, so the
/// finished run can be replayed through the `dex-obs` invariant checker.
///
/// # Panics
///
/// Panics under the same conditions as [`run_instance`].
pub fn run_instance_traced(spec: &RunInstance) -> TracedRun {
    assert_eq!(
        spec.input.n(),
        spec.config.n(),
        "input vector must match system size"
    );
    let (result, processes) = dispatch_spec(spec, true);
    TracedRun {
        result,
        trace: RunTrace {
            meta: trace_meta(spec),
            processes,
        },
    }
}

fn dispatch_spec(spec: &RunInstance, trace: bool) -> (RunResult, Vec<ProcessTrace>) {
    match spec.algo {
        Algo::DexFreq | Algo::DexPrv { .. } => run_dex(spec, trace),
        Algo::Bosco => run_bosco(spec, trace),
        Algo::UnderlyingOnly => run_plain(spec, trace),
        Algo::Brasileiro => run_crash(spec, CrashRule::Brasileiro, trace),
        Algo::CrashAdaptive => run_crash(spec, CrashRule::Adaptive, trace),
    }
}

/// Builds the checker-facing metadata for a run: which invariant family
/// applies (DEX predicate rules vs. opaque structural checks), who is
/// faulty, and a code→value legend for humans reading the artifact.
fn trace_meta(spec: &RunInstance) -> TraceMeta {
    let rules = match spec.algo {
        Algo::DexFreq => SchemeRules::Frequency,
        Algo::DexPrv { m } => SchemeRules::Privileged {
            m_code: obs_code(&m),
        },
        _ => SchemeRules::Opaque,
    };
    let faulty: Vec<u16> = spec
        .config
        .processes()
        .filter(|p| spec.fault_plan.is_faulty(*p))
        .map(|p| p.index() as u16)
        .collect();
    let mut legend = std::collections::BTreeMap::new();
    for (_, v) in spec.input.iter() {
        legend.insert(obs_code(v), v.to_string());
    }
    if let Algo::DexPrv { m } = spec.algo {
        legend.insert(obs_code(&m), m.to_string());
    }
    TraceMeta {
        seed: spec.seed,
        n: spec.config.n() as u16,
        t: spec.config.t() as u16,
        algo: spec.algo.label().to_string(),
        rules,
        faulty,
        legend: legend.into_iter().collect(),
        chaos: chaos_meta(&spec.faults, &spec.fault_plan),
        pipeline: None,
    }
}

/// Derives the checker-facing chaos metadata from a run's compiled fault
/// schedule. `eventually_clean` — the premise of the termination-after-heal
/// invariant — holds when every disturbance is transient: all crashed
/// processes recover, and every probabilistic *drop* is confined to links
/// touching a FaultPlan-faulty process (a correct↔correct link that loses
/// messages voids any liveness guarantee; duplication never does).
fn chaos_meta(faults: &FaultSchedule, plan: &FaultPlan) -> Option<ChaosMeta> {
    if faults.is_empty() {
        return None;
    }
    let drops_budgeted = faults.links().iter().filter(|l| l.drop > 0.0).all(|l| {
        l.from.is_some_and(|q| plan.is_faulty(q)) || l.to.is_some_and(|q| plan.is_faulty(q))
    });
    Some(ChaosMeta {
        last_heal: faults.last_heal().unwrap_or(0),
        eventually_clean: faults.all_recover() && drops_budgeted,
        crashes: faults
            .crash_windows()
            .iter()
            .map(|w| (w.process.index() as u16, w.from, w.until))
            .collect(),
    })
}

/// Harvests every node's trace after a run, substituting an empty trace
/// for nodes that recorded nothing (Byzantine or recording disabled).
fn collect_traces<'a, N: 'a>(
    nodes: impl Iterator<Item = &'a N>,
    obs_trace: impl Fn(&N) -> Option<ProcessTrace>,
) -> Vec<ProcessTrace> {
    nodes
        .enumerate()
        .map(|(i, n)| {
            obs_trace(n).unwrap_or(ProcessTrace {
                id: i as u16,
                events: Vec::new(),
            })
        })
        .collect()
}

/// Builds the crash-model actor vector for a run — shared by the simnet
/// and threaded execution paths, so both runtimes drive byte-identical
/// actor populations.
fn crash_nodes(spec: &RunInstance, rule: CrashRule) -> Vec<CrashNode> {
    let cfg = spec.config;
    cfg.processes()
        .map(|me| {
            if spec.fault_plan.is_faulty(me) {
                CrashNode::Byz(ByzantineActor::new(byz_strategy(spec)))
            } else {
                CrashNode::Correct(CrashActor::new(
                    CrashOneStep::new(cfg, me, rule, make_uc(spec, me)),
                    *spec.input.get(me),
                ))
            }
        })
        .collect()
}

/// Reads one crash-model node's outcome after a run (any runtime).
fn crash_node_outcome(node: &CrashNode) -> Outcome {
    match node {
        CrashNode::Byz(_) => Outcome::Faulty,
        CrashNode::Correct(a) => match a.decision() {
            None => Outcome::Undecided,
            Some(d) => Outcome::Decided(ProcessResult {
                value: d.value,
                path: match d.path {
                    CrashPath::OneStep => DecisionPath::OneStep.label(),
                    CrashPath::Underlying => DecisionPath::Underlying.label(),
                },
                steps: d.depth.get(),
                latency: d.at.as_units(),
            }),
        },
    }
}

fn run_crash(spec: &RunInstance, rule: CrashRule, trace: bool) -> (RunResult, Vec<ProcessTrace>) {
    let mut nodes = crash_nodes(spec, rule);
    if trace {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.enable_obs(i as u16);
        }
    }
    let mut sim = Simulation::builder(nodes)
        .seed(spec.seed)
        .delay(spec.delay.clone())
        .faults(spec.faults.clone())
        .build();
    let run = sim.run(spec.max_events);
    let outcomes = sim.actors().iter().map(crash_node_outcome).collect();
    let traces = collect_traces(sim.actors().iter(), CrashNode::obs_trace);
    (
        RunResult {
            outcomes,
            quiescent: run.quiescent,
            messages: sim.stats().delivered,
            net: sim.stats().clone(),
        },
        traces,
    )
}

/// Builds the DEX actor vector for a run (frequency or privileged pair),
/// applying the spec's aggregation switch — shared by the simnet and
/// threaded execution paths.
fn dex_nodes(spec: &RunInstance) -> Vec<DexNode> {
    let cfg = spec.config;
    let mut nodes: Vec<DexNode> = cfg
        .processes()
        .map(|me| {
            if spec.fault_plan.is_faulty(me) {
                DexNode::Byz(ByzantineActor::new(byz_strategy(spec)))
            } else {
                let proposal = *spec.input.get(me);
                match spec.algo {
                    Algo::DexFreq => DexNode::Freq(DexActor::new(
                        DexProcess::new(
                            cfg,
                            me,
                            FrequencyPair::new(cfg).expect("n > 6t required for DexFreq"),
                            make_uc(spec, me),
                        ),
                        proposal,
                    )),
                    Algo::DexPrv { m } => DexNode::Prv(DexActor::new(
                        DexProcess::new(
                            cfg,
                            me,
                            PrivilegedPair::new(cfg, m).expect("n > 5t required for DexPrv"),
                            make_uc(spec, me),
                        ),
                        proposal,
                    )),
                    _ => unreachable!(),
                }
            }
        })
        .collect();
    if spec.aggregate {
        for node in nodes.iter_mut() {
            node.enable_aggregation();
        }
    }
    nodes
}

/// Reads one DEX node's outcome after a run (any runtime).
fn dex_node_outcome(node: &DexNode) -> Outcome {
    match node {
        DexNode::Byz(_) => Outcome::Faulty,
        DexNode::Freq(a) => dex_outcome(a.decision()),
        DexNode::Prv(a) => dex_outcome(a.decision()),
    }
}

fn run_dex(spec: &RunInstance, trace: bool) -> (RunResult, Vec<ProcessTrace>) {
    let mut nodes = dex_nodes(spec);
    if trace {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.enable_obs(i as u16);
        }
    }
    let mut sim = Simulation::builder(nodes)
        .seed(spec.seed)
        .delay(spec.delay.clone())
        .faults(spec.faults.clone())
        .build();
    let run = sim.run(spec.max_events);
    let outcomes = sim.actors().iter().map(dex_node_outcome).collect();
    let traces = collect_traces(sim.actors().iter(), DexNode::obs_trace);
    (
        RunResult {
            outcomes,
            quiescent: run.quiescent,
            messages: sim.stats().delivered,
            net: sim.stats().clone(),
        },
        traces,
    )
}

fn dex_outcome(d: Option<&dex_core::DecisionRecord<u64>>) -> Outcome {
    match d {
        None => Outcome::Undecided,
        Some(d) => Outcome::Decided(ProcessResult {
            value: d.value,
            path: d.path.label(),
            steps: d.depth.get(),
            latency: d.at.as_units(),
        }),
    }
}

/// Builds the Bosco actor vector for a run — shared by the simnet and
/// threaded execution paths.
fn bosco_nodes(spec: &RunInstance) -> Vec<BoscoNode> {
    let cfg = spec.config;
    let mut nodes: Vec<BoscoNode> = cfg
        .processes()
        .map(|me| {
            if spec.fault_plan.is_faulty(me) {
                BoscoNode::Byz(ByzantineActor::new(byz_strategy(spec)))
            } else {
                BoscoNode::Correct(BoscoActor::new(
                    BoscoProcess::new(cfg, me, make_uc(spec, me)),
                    *spec.input.get(me),
                ))
            }
        })
        .collect();
    if spec.aggregate {
        for node in nodes.iter_mut() {
            node.enable_aggregation();
        }
    }
    nodes
}

/// Reads one Bosco node's outcome after a run (any runtime).
fn bosco_node_outcome(node: &BoscoNode) -> Outcome {
    match node {
        BoscoNode::Byz(_) => Outcome::Faulty,
        BoscoNode::Correct(a) => match a.decision() {
            None => Outcome::Undecided,
            Some(d) => Outcome::Decided(ProcessResult {
                value: d.value,
                path: match d.path {
                    BoscoPath::OneStep => DecisionPath::OneStep.label(),
                    BoscoPath::Underlying => DecisionPath::Underlying.label(),
                },
                steps: d.depth.get(),
                latency: d.at.as_units(),
            }),
        },
    }
}

fn run_bosco(spec: &RunInstance, trace: bool) -> (RunResult, Vec<ProcessTrace>) {
    let mut nodes = bosco_nodes(spec);
    if trace {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.enable_obs(i as u16);
        }
    }
    let mut sim = Simulation::builder(nodes)
        .seed(spec.seed)
        .delay(spec.delay.clone())
        .faults(spec.faults.clone())
        .build();
    let run = sim.run(spec.max_events);
    let outcomes = sim.actors().iter().map(bosco_node_outcome).collect();
    let traces = collect_traces(sim.actors().iter(), BoscoNode::obs_trace);
    (
        RunResult {
            outcomes,
            quiescent: run.quiescent,
            messages: sim.stats().delivered,
            net: sim.stats().clone(),
        },
        traces,
    )
}

/// Builds the underlying-only actor vector for a run — shared by the
/// simnet and threaded execution paths.
fn plain_nodes(spec: &RunInstance) -> Vec<PlainNode> {
    let cfg = spec.config;
    cfg.processes()
        .map(|me| {
            if spec.fault_plan.is_faulty(me) {
                PlainNode::Byz(ByzantineActor::new(byz_strategy(spec)))
            } else {
                PlainNode::Correct(UnderlyingOnlyActor::new(
                    UnderlyingOnlyProcess::new(make_uc(spec, me)),
                    *spec.input.get(me),
                ))
            }
        })
        .collect()
}

/// Reads one underlying-only node's outcome after a run (any runtime).
fn plain_node_outcome(node: &PlainNode) -> Outcome {
    match node {
        PlainNode::Byz(_) => Outcome::Faulty,
        PlainNode::Correct(a) => match a.decision() {
            None => Outcome::Undecided,
            Some(d) => Outcome::Decided(ProcessResult {
                value: d.value,
                path: DecisionPath::Underlying.label(),
                steps: d.depth.get(),
                latency: d.at.as_units(),
            }),
        },
    }
}

fn run_plain(spec: &RunInstance, trace: bool) -> (RunResult, Vec<ProcessTrace>) {
    let mut nodes = plain_nodes(spec);
    if trace {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.enable_obs(i as u16);
        }
    }
    let mut sim = Simulation::builder(nodes)
        .seed(spec.seed)
        .delay(spec.delay.clone())
        .faults(spec.faults.clone())
        .build();
    let run = sim.run(spec.max_events);
    let outcomes = sim.actors().iter().map(plain_node_outcome).collect();
    let traces = collect_traces(sim.actors().iter(), PlainNode::obs_trace);
    (
        RunResult {
            outcomes,
            quiescent: run.quiescent,
            messages: sim.stats().delivered,
            net: sim.stats().clone(),
        },
        traces,
    )
}

/// How faulty processes are placed in batch runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// The last `f` processes are faulty (deterministic; keeps `p_0` as the
    /// oracle coordinator).
    LastK,
    /// `f` random non-`p_0` processes per run.
    RandomK,
}

/// Description of a batch of runs.
pub struct BatchSpec<'a> {
    /// System size and fault bound.
    pub config: SystemConfig,
    /// Algorithm under test.
    pub algo: Algo,
    /// Underlying consensus implementation.
    pub underlying: UnderlyingKind,
    /// Strategy executed by Byzantine processes.
    pub strategy: ByzantineStrategy<u64>,
    /// Actual number of faults per run (`f ≤ t`).
    pub f: usize,
    /// Fault placement policy.
    pub placement: Placement,
    /// Input-vector generator (fresh vector per run).
    pub workload: &'a (dyn InputGenerator + Sync),
    /// Delay model.
    pub delay: DelayModel,
    /// Symbolic chaos schedule, compiled per run against that run's fault
    /// plan (see [`ChaosSpec::build`]).
    pub chaos: ChaosSpec,
    /// Enable echo/vote aggregation on correct nodes in every run.
    pub aggregate: bool,
    /// Number of runs.
    pub runs: usize,
    /// Base seed; run `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Delivery cap per run.
    pub max_events: u64,
}

/// Aggregated results of a batch.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Number of runs executed.
    pub runs: usize,
    /// Decision-path histogram over all correct processes.
    pub paths: Counter<&'static str>,
    /// Step counts over all correct processes.
    pub steps: Summary,
    /// Virtual-time decision latencies.
    pub latency: Summary,
    /// Messages delivered per run.
    pub messages: Summary,
    /// Correct processes that never decided.
    pub undecided: usize,
    /// Runs violating agreement (must stay 0).
    pub agreement_violations: usize,
    /// Runs violating unanimity (must stay 0).
    pub unanimity_violations: usize,
    /// Runs that hit the event cap (must stay 0 for terminating protocols).
    pub non_quiescent: usize,
    /// Network counters summed over all runs (per-class sends, batched
    /// echoes, bytes on wire; `max_depth` takes the batch maximum).
    pub net: dex_simnet::NetStats,
}

impl BatchStats {
    /// Fraction of correct-process decisions that used `path`.
    pub fn path_fraction(&self, path: &'static str) -> f64 {
        self.paths.fraction(&path)
    }

    /// `true` when no safety or liveness violation was observed.
    pub fn clean(&self) -> bool {
        self.agreement_violations == 0
            && self.unanimity_violations == 0
            && self.undecided == 0
            && self.non_quiescent == 0
    }
}

/// Folds one finished run into the batch aggregate, checking the safety
/// and liveness predicates against that run's input and fault plan. Both
/// the simnet and threaded batch runners fold through here, so every
/// runtime is held to the same violation ledger.
fn fold_run(stats: &mut BatchStats, run: &RunResult, input: &InputVector<u64>, plan: &FaultPlan) {
    stats.runs += 1;
    if !run.quiescent {
        stats.non_quiescent += 1;
    }
    if !run.agreement_ok() {
        stats.agreement_violations += 1;
    }
    if !run.unanimity_ok(input, plan) {
        stats.unanimity_violations += 1;
    }
    for outcome in &run.outcomes {
        match outcome {
            Outcome::Faulty => {}
            Outcome::Undecided => stats.undecided += 1,
            Outcome::Decided(r) => {
                stats.paths.add(r.path);
                stats.steps.add(f64::from(r.steps));
                stats.latency.add(r.latency as f64);
            }
        }
    }
    stats.messages.add(run.messages as f64);
    stats.net.merge(&run.net);
}

/// Executes one indexed run of a batch and folds it into `stats`.
fn run_batch_index(spec: &BatchSpec<'_>, i: usize, stats: &mut BatchStats) {
    let seed = spec.seed0 + i as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let input = spec.workload.generate(spec.config.n(), &mut rng);
    let fault_plan = match spec.placement {
        Placement::LastK => FaultPlan::last_k(spec.config, spec.f),
        Placement::RandomK => FaultPlan::random_k(spec.config, spec.f, &mut rng),
    };
    let faults = spec.chaos.build(spec.config, &fault_plan);
    let run = run_instance(&RunInstance {
        config: spec.config,
        algo: spec.algo,
        underlying: spec.underlying,
        strategy: spec.strategy.clone(),
        fault_plan: fault_plan.clone(),
        input: input.clone(),
        delay: spec.delay.clone(),
        faults,
        seed,
        max_events: spec.max_events,
        aggregate: spec.aggregate,
    });
    fold_run(stats, &run, &input, &fault_plan);
}

/// Reconstructs batch run `i`'s spec — the same seed, workload draw and
/// fault placement [`run_batch`] would use — and executes it with event
/// recording enabled. This is how `--trace` replays a batch member
/// deterministically: same batch spec and index ⇒ identical trace.
pub fn traced_batch_run(spec: &BatchSpec<'_>, i: usize) -> TracedRun {
    let seed = spec.seed0 + i as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let input = spec.workload.generate(spec.config.n(), &mut rng);
    let fault_plan = match spec.placement {
        Placement::LastK => FaultPlan::last_k(spec.config, spec.f),
        Placement::RandomK => FaultPlan::random_k(spec.config, spec.f, &mut rng),
    };
    let faults = spec.chaos.build(spec.config, &fault_plan);
    run_instance_traced(&RunInstance {
        config: spec.config,
        algo: spec.algo,
        underlying: spec.underlying,
        strategy: spec.strategy.clone(),
        fault_plan,
        input,
        delay: spec.delay.clone(),
        faults,
        seed,
        max_events: spec.max_events,
        aggregate: spec.aggregate,
    })
}

/// Derives the threaded runtime's [`NetworkOptions`] from a spec's delay
/// model: virtual units map to microseconds, so `uniform:50:500` means a
/// 50–500 µs jitter window. Models without a CLI spelling fall back to
/// their nearest uniform envelope.
fn thread_options(delay: &DelayModel, seed: u64) -> dex_threadnet::NetworkOptions {
    let delay_us = match delay {
        DelayModel::Constant(d) => (*d, *d),
        DelayModel::Uniform { min, max } => (*min, *max),
        DelayModel::Exponential { mean } => (1, (2 * mean).max(1)),
        // Skewed/Targeted shape *which link* is slow, which the threaded
        // dispatcher's single jitter window cannot express; keep the
        // overall envelope.
        _ => (1, 10),
    };
    dex_threadnet::NetworkOptions {
        seed,
        delay_us,
        timeout: std::time::Duration::from_secs(30),
    }
}

/// Executes one run of a batch on the threaded runtime and reads it back
/// as the same [`RunResult`] the simulator path produces (latencies are
/// wall-clock microseconds instead of virtual ticks).
fn run_thread_instance(inst: &RunInstance) -> RunResult {
    let options = thread_options(&inst.delay, inst.seed);
    fn finish<N>(
        res: dex_threadnet::NetworkResult<N>,
        outcome: impl Fn(&N) -> Outcome,
    ) -> RunResult {
        RunResult {
            outcomes: res.actors.iter().map(outcome).collect(),
            quiescent: res.quiescent,
            messages: res.delivered,
            net: res.stats,
        }
    }
    match inst.algo {
        Algo::DexFreq | Algo::DexPrv { .. } => finish(
            dex_threadnet::run_network(dex_nodes(inst), options),
            dex_node_outcome,
        ),
        Algo::Bosco => finish(
            dex_threadnet::run_network(bosco_nodes(inst), options),
            bosco_node_outcome,
        ),
        Algo::UnderlyingOnly => finish(
            dex_threadnet::run_network(plain_nodes(inst), options),
            plain_node_outcome,
        ),
        Algo::Brasileiro => finish(
            dex_threadnet::run_network(crash_nodes(inst, CrashRule::Brasileiro), options),
            crash_node_outcome,
        ),
        Algo::CrashAdaptive => finish(
            dex_threadnet::run_network(crash_nodes(inst, CrashRule::Adaptive), options),
            crash_node_outcome,
        ),
    }
}

/// Executes a spec's batch on the threaded runtime (`--runtime
/// threadnet`): the same actors, workload draws and fault placements as
/// the simulator path — run `i` uses `seed + i`, the workload rng is
/// `seed ^ 0x5EED_5EED` — but each process is an OS thread and messages
/// cross a delay-jittered dispatcher, so latencies come back in
/// wall-clock microseconds.
///
/// The threaded runtime has no fault injector, so chaos schedules are
/// rejected rather than silently ignored.
pub fn run_thread_batch(spec: &crate::spec::RunSpec) -> Result<BatchStats, String> {
    let config = spec.config()?;
    if !spec.chaos.is_none() {
        return Err(format!(
            "--runtime threadnet has no fault injector; --chaos {} requires simnet \
             (netd owns the real kill -9 schedule)",
            spec.chaos.flag()
        ));
    }
    if !spec.pipeline.is_off() {
        return Err("--pipeline runs on the simnet engine; drop --runtime threadnet".into());
    }
    let workload = spec.workload.generator();
    let mut stats = BatchStats::default();
    for i in 0..spec.runs {
        let seed = spec.seed + i as u64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
        let input = workload.generate(config.n(), &mut rng);
        let fault_plan = match spec.placement {
            Placement::LastK => FaultPlan::last_k(config, spec.f),
            Placement::RandomK => FaultPlan::random_k(config, spec.f, &mut rng),
        };
        let run = run_thread_instance(&RunInstance {
            config,
            algo: spec.algo,
            underlying: spec.underlying_kind(),
            strategy: spec.adversary.strategy(),
            fault_plan: fault_plan.clone(),
            input: input.clone(),
            delay: spec.delay.clone(),
            faults: FaultSchedule::none(),
            seed,
            max_events: spec.max_events,
            aggregate: spec.aggregate.is_on(),
        });
        fold_run(&mut stats, &run, &input, &fault_plan);
    }
    Ok(stats)
}

/// Executes a batch of runs, aggregating statistics.
pub fn run_batch(spec: &BatchSpec<'_>) -> BatchStats {
    let mut stats = BatchStats::default();
    for i in 0..spec.runs {
        run_batch_index(spec, i, &mut stats);
    }
    stats
}

/// [`run_batch_parallel`] with one worker per available core — the default
/// for the experiment modules (results are identical to the sequential
/// runner's, just faster).
pub fn run_batch_auto(spec: &BatchSpec<'_>) -> BatchStats {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_batch_parallel(spec, threads)
}

/// Like [`run_batch`], but fans the (independent, individually seeded)
/// runs across `threads` OS threads. The aggregate statistics are
/// identical to the sequential runner's: every per-run quantity is keyed
/// by its seed, and [`BatchStats`] aggregation is order-insensitive
/// (counters commute; [`Summary`] quantiles sort internally).
pub fn run_batch_parallel(spec: &BatchSpec<'_>, threads: usize) -> BatchStats {
    let threads = threads.clamp(1, spec.runs.max(1));
    let mut partials: Vec<BatchStats> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let spec_ref = &*spec;
            handles.push(scope.spawn(move || {
                let mut stats = BatchStats::default();
                let mut i = worker;
                while i < spec_ref.runs {
                    run_batch_index(spec_ref, i, &mut stats);
                    i += threads;
                }
                stats
            }));
        }
        for handle in handles {
            partials.push(handle.join().expect("batch worker panicked"));
        }
    });
    let mut merged = BatchStats::default();
    for p in partials {
        merged.runs += p.runs;
        merged.undecided += p.undecided;
        merged.agreement_violations += p.agreement_violations;
        merged.unanimity_violations += p.unanimity_violations;
        merged.non_quiescent += p.non_quiescent;
        merged.steps.merge(&p.steps);
        merged.latency.merge(&p.latency);
        merged.messages.merge(&p.messages);
        merged.net.merge(&p.net);
        for (path, count) in p.paths.iter() {
            merged.paths.add_n(path, count);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_workloads::Unanimous;

    fn base_spec(n: usize, t: usize, algo: Algo, input: InputVector<u64>) -> RunInstance {
        RunInstance {
            config: SystemConfig::new(n, t).unwrap(),
            algo,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan: FaultPlan::none(),
            input,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            faults: FaultSchedule::none(),
            seed: 7,
            max_events: 1_000_000,
            aggregate: false,
        }
    }

    #[test]
    fn dex_freq_unanimous_is_one_step() {
        let spec = base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3));
        let r = run_instance(&spec);
        assert!(r.quiescent && r.agreement_ok() && r.all_decided());
        assert_eq!(r.max_steps(), Some(1));
        assert!(r.decided().all(|p| p.path == "1-step" && p.value == 3));
    }

    #[test]
    fn bosco_unanimous_is_one_step() {
        let spec = base_spec(7, 1, Algo::Bosco, InputVector::unanimous(7, 3));
        let r = run_instance(&spec);
        assert_eq!(r.max_steps(), Some(1));
        assert!(r.decided().all(|p| p.path == "1-step"));
    }

    #[test]
    fn underlying_only_is_two_steps() {
        let spec = base_spec(7, 1, Algo::UnderlyingOnly, InputVector::unanimous(7, 3));
        let r = run_instance(&spec);
        assert_eq!(r.max_steps(), Some(2));
        assert!(r.decided().all(|p| p.path == "fallback"));
    }

    #[test]
    fn dex_prv_commit_heavy_is_one_step() {
        // m = 1, 5 of 6 propose it: #m = 5 > 3t = 3.
        let input = InputVector::new(vec![1, 1, 1, 1, 1, 0]);
        let spec = base_spec(6, 1, Algo::DexPrv { m: 1 }, input);
        let r = run_instance(&spec);
        assert!(r.agreement_ok());
        assert!(r.decided().all(|p| p.value == 1));
        assert_eq!(r.max_steps(), Some(1));
    }

    #[test]
    fn silent_fault_run_with_dex() {
        let spec = RunInstance {
            fault_plan: FaultPlan::last_k(SystemConfig::new(7, 1).unwrap(), 1),
            ..base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3))
        };
        let r = run_instance(&spec);
        assert!(r.quiescent && r.agreement_ok() && r.all_decided());
        assert!(matches!(r.outcomes[6], Outcome::Faulty));
        // 6 unanimous entries reachable: margin 6 > 4 ⇒ still one-step.
        assert_eq!(r.max_steps(), Some(1));
    }

    #[test]
    fn equivocator_cannot_break_agreement() {
        for seed in 0..10 {
            let spec = RunInstance {
                fault_plan: FaultPlan::last_k(SystemConfig::new(7, 1).unwrap(), 1),
                strategy: ByzantineStrategy::EchoPoison { values: vec![3, 9] },
                seed,
                ..base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3))
            };
            let r = run_instance(&spec);
            assert!(r.agreement_ok(), "seed {seed}");
            assert!(r.unanimity_ok(&InputVector::unanimous(7, 3), &spec.fault_plan));
            assert!(r.all_decided(), "seed {seed}");
        }
    }

    #[test]
    fn batch_runner_aggregates_cleanly() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let workload = Unanimous { value: 5 };
        let stats = run_batch(&BatchSpec {
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            f: 1,
            placement: Placement::RandomK,
            workload: &workload,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            chaos: ChaosSpec::None,
            aggregate: false,
            runs: 20,
            seed0: 100,
            max_events: 1_000_000,
        });
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.runs, 20);
        assert_eq!(stats.path_fraction("1-step"), 1.0);
        assert_eq!(stats.steps.mean(), 1.0);
    }

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let workload = dex_workloads::BernoulliMix { p: 0.8, a: 1, b: 0 };
        let spec = BatchSpec {
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Equivocate { values: vec![0, 1] },
            f: 1,
            placement: Placement::RandomK,
            workload: &workload,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            chaos: ChaosSpec::None,
            aggregate: false,
            runs: 24,
            seed0: 9,
            max_events: 5_000_000,
        };
        let seq = run_batch(&spec);
        let par = run_batch_parallel(&spec, 4);
        assert!(seq.clean() && par.clean());
        assert_eq!(seq.runs, par.runs);
        assert_eq!(seq.steps.mean(), par.steps.mean());
        assert_eq!(seq.steps.quantile(0.99), par.steps.quantile(0.99));
        assert_eq!(seq.messages.mean(), par.messages.mean());
        assert_eq!(seq.paths.count(&"1-step"), par.paths.count(&"1-step"),);
    }

    #[test]
    fn chaos_batch_stays_safe_and_live() {
        // Partition + heal under an equivocating Byzantine process at f = t:
        // deliveries are deferred, never lost, so the batch must stay clean.
        let cfg = SystemConfig::new(7, 1).unwrap();
        let workload = dex_workloads::BernoulliMix { p: 0.8, a: 1, b: 0 };
        let stats = run_batch(&BatchSpec {
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Equivocate { values: vec![0, 1] },
            f: 1,
            placement: Placement::RandomK,
            workload: &workload,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            chaos: ChaosSpec::PartitionHeal { open: 5, heal: 120 },
            aggregate: false,
            runs: 12,
            seed0: 40,
            max_events: 5_000_000,
        });
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.runs, 12);
    }

    #[test]
    fn traced_chaos_run_carries_chaos_meta() {
        let mut spec = base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3));
        assert!(run_instance_traced(&spec).trace.meta.chaos.is_none());
        spec.faults = FaultSchedule::new().crash(ProcessId::new(2), 3, 90);
        let traced = run_instance_traced(&spec);
        let report = dex_obs::check(&traced.trace);
        let chaos = traced.trace.meta.chaos.expect("chaos meta for chaos run");
        assert_eq!(chaos.last_heal, 90);
        assert!(chaos.eventually_clean);
        assert_eq!(chaos.crashes, vec![(2, 3, Some(90))]);
        assert!(report.is_ok(), "{:?}", report.violations);
        assert!(report
            .checks
            .iter()
            .any(|(name, _)| *name == "termination-after-heal"));
    }

    #[test]
    fn unbudgeted_drops_void_the_liveness_premise() {
        // A drop probability on a correct↔correct link is a genuine loss:
        // the meta must not claim the schedule eventually comes clean.
        let spec = RunInstance {
            faults: FaultSchedule::new().lossy_link(Some(ProcessId::new(1)), None, 0.5, 0.0),
            ..base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3))
        };
        let chaos = run_instance_traced(&spec).trace.meta.chaos.unwrap();
        assert!(!chaos.eventually_clean);
    }

    #[test]
    fn thread_batch_runs_the_same_actors_over_threads() {
        let spec = crate::spec::RunSpec {
            runs: 2,
            f: 1,
            adversary: crate::spec::AdversarySpec::Equivocate,
            workload: crate::spec::WorkloadSpec::Bernoulli { p: 0.8 },
            runtime: crate::spec::RuntimeSpec::Thread,
            delay: DelayModel::Uniform { min: 10, max: 100 },
            ..Default::default()
        };
        let stats = spec.run().expect("thread batch runs");
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.runs, 2);
        assert!(stats.net.sent > 0 && stats.net.delivered > 0);
        assert!(stats.latency.mean() > 0.0, "wall-clock latencies");
        // Chaos schedules are rejected, not silently ignored.
        let chaotic = crate::spec::RunSpec {
            chaos: ChaosSpec::DropHeavy { p: 0.4 },
            ..spec
        };
        assert!(chaotic.run().is_err());
    }

    #[test]
    fn mvc_underlying_full_stack_run() {
        // Split input forces the randomized fallback to do real work.
        let input = InputVector::new(vec![3, 3, 3, 9, 9, 9, 9]);
        let spec = RunInstance {
            underlying: UnderlyingKind::Mvc { coin_seed: 11 },
            max_events: 10_000_000,
            ..base_spec(7, 1, Algo::DexFreq, input)
        };
        let r = run_instance(&spec);
        assert!(r.quiescent);
        assert!(r.agreement_ok());
        assert!(r.all_decided());
    }
}
