//! **E8 — Fast-path coverage** ("more chances to decide in one or two
//! steps", Table 1 narrative): fraction of realistic inputs decided fast.
//!
//! Two input families on `n = 7t + 1` (every algorithm constructible):
//!
//! * **Uniform** over a value domain of size `|V|` — worst-case disorder;
//! * **Zipf-distributed** replicated-state-machine requests — the paper's
//!   motivating scenario, where one hot request usually dominates.
//!
//! For each, the fraction of correct-process decisions at ≤ 1 and ≤ 2
//! causal steps, per algorithm. DEX's two-step channel is what separates it
//! from Bosco on mid-skew inputs.

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::{InputGenerator, UniformRandom, ZipfRequests};

/// Options for the coverage experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `7t + 1`).
    pub t: usize,
    /// Runs per point.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 1,
            runs: 200,
            seed0: 0,
        }
    }
}

fn fractions(
    cfg: SystemConfig,
    algo: Algo,
    workload: &(dyn InputGenerator + Sync),
    runs: usize,
    seed0: u64,
) -> (f64, f64) {
    let stats = run_batch_auto(&BatchSpec {
        chaos: crate::spec::ChaosSpec::None,
        config: cfg,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        f: 0,
        placement: Placement::LastK,
        workload,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        runs,
        seed0,
        max_events: 5_000_000,
        aggregate: false,
    });
    assert!(stats.clean(), "{stats:?}");
    let one = stats.path_fraction("1-step");
    (one, one + stats.path_fraction("2-step"))
}

/// Runs E8 and renders the coverage table.
pub fn run(opts: Opts) -> Table {
    let cfg = SystemConfig::new(7 * opts.t + 1, opts.t).expect("n = 7t + 1 > 3t");
    let mut table = Table::new(vec![
        "workload".into(),
        "dex-freq <=1".into(),
        "dex-freq <=2".into(),
        "bosco <=1".into(),
        "bosco <=2".into(),
    ]);
    let mut workloads: Vec<Box<dyn InputGenerator + Sync>> = Vec::new();
    for domain in [2, 4, 8] {
        workloads.push(Box::new(UniformRandom { domain }));
    }
    for s in [0.5, 1.0, 2.0, 3.0] {
        workloads.push(Box::new(ZipfRequests { domain: 16, s }));
    }
    for workload in &workloads {
        let (d1, d2) = fractions(cfg, Algo::DexFreq, workload.as_ref(), opts.runs, opts.seed0);
        let (b1, b2) = fractions(
            cfg,
            Algo::Bosco,
            workload.as_ref(),
            opts.runs,
            opts.seed0 + 500_000,
        );
        table.row(vec![
            workload.name(),
            format!("{d1:.2}"),
            format!("{d2:.2}"),
            format!("{b1:.2}"),
            format!("{b2:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_zipf_requests_mostly_expedite_for_dex() {
        let cfg = SystemConfig::new(8, 1).unwrap();
        let zipf = ZipfRequests { domain: 16, s: 3.0 };
        let (_, dex2) = fractions(cfg, Algo::DexFreq, &zipf, 30, 3);
        let (_, bosco2) = fractions(cfg, Algo::Bosco, &zipf, 30, 3);
        // DEX's ≤2-step coverage dominates Bosco's on skewed inputs.
        assert!(
            dex2 >= bosco2,
            "dex {dex2:.2} should cover at least bosco {bosco2:.2}"
        );
        assert!(
            dex2 > 0.5,
            "hot inputs should mostly expedite, got {dex2:.2}"
        );
    }
}
