//! The unified, serializable experiment specification.
//!
//! A [`RunSpec`] is the *single* description of an experiment: system size,
//! algorithm, workload, adversary, underlying consensus, delay model, chaos
//! schedule, pipeline window/batch, batch size and seed. It maps **1:1 onto the `dex-sim` CLI
//! flags** — [`RunSpec::from_args`] parses exactly what the binary accepts,
//! [`RunSpec::to_args`] renders a spec back into that flag vector, and
//! [`RunSpec::to_json`] emits a deterministic JSON description for
//! artifacts and logs. Experiment modules and tests construct a `RunSpec`
//! and call [`run`](RunSpec::run) / [`run_auto`](RunSpec::run_auto) /
//! [`traced`](RunSpec::traced); the lower-level [`RunInstance`] /
//! [`BatchSpec`](crate::runner::BatchSpec) remain available for
//! programmatic setups (custom generators, `Skewed`/`Targeted` delays,
//! hand-built fault schedules) that have no CLI spelling.
//!
//! Chaos schedules are specified *symbolically* ([`ChaosSpec`]) and
//! compiled per run against that run's Byzantine [`FaultPlan`] — so e.g.
//! `drop:0.3` always attaches its lossy links to the processes that are
//! *actually* faulty in run `i`, keeping correct↔correct links reliable and
//! liveness assertable.

use crate::runner::{
    run_batch, run_batch_auto, traced_batch_run, Algo, BatchSpec, BatchStats, Placement, TracedRun,
    UnderlyingKind,
};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_simnet::{DelayModel, FaultSchedule};
use dex_types::{ProcessId, SystemConfig};
use dex_workloads::{
    BernoulliMix, InputGenerator, PopulationModel, SplitCount, Unanimous, UniformRandom,
    ZipfRequests,
};
use std::fmt::Write as _;

/// Input-vector generator selection, mirroring `--workload`.
#[derive(Clone, PartialEq, Debug)]
pub enum WorkloadSpec {
    /// Every process proposes `value` (`unanimous:<v>`).
    Unanimous {
        /// The common proposal.
        value: u64,
    },
    /// Each process proposes `1` with probability `p`, else `0`
    /// (`bernoulli:<p>`).
    Bernoulli {
        /// Probability of proposing `1`.
        p: f64,
    },
    /// Uniform over `0..domain` (`uniform:<domain>`).
    Uniform {
        /// Domain size.
        domain: u64,
    },
    /// Zipf-distributed requests over `0..domain` (`zipf:<domain>:<s>`).
    Zipf {
        /// Domain size.
        domain: u64,
        /// Skew exponent.
        s: f64,
    },
    /// `minor_count` processes propose `0`, the rest `1`
    /// (`split:<minor_count>`).
    Split {
        /// Size of the minority.
        minor_count: usize,
    },
    /// Million-client hot-key population
    /// (`hotkey:<clients>:<s>:<hot>:<bias>`): Zipf popularity with skew
    /// `s` over `clients` request ids, extra mass `hot` on the hottest id,
    /// and per-process bias `bias` toward a deterministic home key — the
    /// campaign engine's population model
    /// ([`dex_workloads::PopulationModel`]) as a CLI workload, so every
    /// campaign cell compiles down to an ordinary per-seed `RunSpec`.
    HotKey {
        /// Number of distinct client request ids.
        clients: u64,
        /// Zipf popularity exponent.
        s: f64,
        /// Extra probability mass on the hottest id.
        hot: f64,
        /// Per-process home-key bias probability.
        bias: f64,
    },
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::Unanimous { value: 1 }
    }
}

impl WorkloadSpec {
    /// Instantiates the generator this spec describes.
    pub fn generator(&self) -> Box<dyn InputGenerator + Sync> {
        match *self {
            WorkloadSpec::Unanimous { value } => Box::new(Unanimous { value }),
            WorkloadSpec::Bernoulli { p } => Box::new(BernoulliMix { p, a: 1, b: 0 }),
            WorkloadSpec::Uniform { domain } => Box::new(UniformRandom { domain }),
            WorkloadSpec::Zipf { domain, s } => Box::new(ZipfRequests { domain, s }),
            WorkloadSpec::Split { minor_count } => Box::new(SplitCount {
                major: 1,
                minor: 0,
                minor_count,
            }),
            WorkloadSpec::HotKey {
                clients,
                s,
                hot,
                bias,
            } => Box::new(
                PopulationModel {
                    clients,
                    skew: s,
                    hot,
                    bias,
                }
                .compile(),
            ),
        }
    }

    /// Parses a `--workload` value.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let parts: Vec<&str> = raw.split(':').collect();
        let num = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|_| format!("bad {what} in workload {raw:?}"))
        };
        match parts.as_slice() {
            ["unanimous"] => Ok(WorkloadSpec::Unanimous { value: 1 }),
            ["unanimous", v] => Ok(WorkloadSpec::Unanimous {
                value: num(v, "value")?,
            }),
            ["bernoulli", p] => Ok(WorkloadSpec::Bernoulli {
                p: p.parse()
                    .map_err(|_| format!("bad probability in workload {raw:?}"))?,
            }),
            ["uniform", d] => Ok(WorkloadSpec::Uniform {
                domain: num(d, "domain")?,
            }),
            ["zipf", d, s] => Ok(WorkloadSpec::Zipf {
                domain: num(d, "domain")?,
                s: s.parse()
                    .map_err(|_| format!("bad skew in workload {raw:?}"))?,
            }),
            ["split", mc] => Ok(WorkloadSpec::Split {
                minor_count: num(mc, "minority count")? as usize,
            }),
            ["hotkey", clients, s, hot, bias] => {
                let prob = |s: &str, what: &str| -> Result<f64, String> {
                    let p: f64 = s
                        .parse()
                        .map_err(|_| format!("bad {what} in workload {raw:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("{what} {p} out of [0, 1] in workload {raw:?}"));
                    }
                    Ok(p)
                };
                let clients = num(clients, "client count")?;
                if clients == 0 {
                    return Err(format!("empty client population in workload {raw:?}"));
                }
                Ok(WorkloadSpec::HotKey {
                    clients,
                    s: s.parse()
                        .map_err(|_| format!("bad skew in workload {raw:?}"))?,
                    hot: prob(hot, "hot probability")?,
                    bias: prob(bias, "bias probability")?,
                })
            }
            _ => Err(format!("unknown workload {raw:?}")),
        }
    }

    /// Renders the `--workload` value this spec parses from.
    pub fn flag(&self) -> String {
        match self {
            WorkloadSpec::Unanimous { value } => format!("unanimous:{value}"),
            WorkloadSpec::Bernoulli { p } => format!("bernoulli:{p}"),
            WorkloadSpec::Uniform { domain } => format!("uniform:{domain}"),
            WorkloadSpec::Zipf { domain, s } => format!("zipf:{domain}:{s}"),
            WorkloadSpec::Split { minor_count } => format!("split:{minor_count}"),
            WorkloadSpec::HotKey {
                clients,
                s,
                hot,
                bias,
            } => format!("hotkey:{clients}:{s}:{hot}:{bias}"),
        }
    }
}

/// Byzantine-strategy selection, mirroring `--adversary`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdversarySpec {
    /// Crash-like silence (`silent`).
    #[default]
    Silent,
    /// Consistent lie with `value` (`lie:<v>`).
    Lie {
        /// The value it pushes.
        value: u64,
    },
    /// Equivocation between `0` and `1` (`equivocate`).
    Equivocate,
    /// Equivocation plus forged protocol reactions (`echo-poison`).
    EchoPoison,
    /// Honest proposal of `1` to the first `reach` recipients, then crash
    /// (`crash-mid:<reach>`).
    CrashMid {
        /// Recipients reached before crashing.
        reach: usize,
    },
}

impl AdversarySpec {
    /// Instantiates the strategy this spec describes.
    pub fn strategy(&self) -> ByzantineStrategy<u64> {
        match *self {
            AdversarySpec::Silent => ByzantineStrategy::Silent,
            AdversarySpec::Lie { value } => ByzantineStrategy::ConsistentLie { value },
            AdversarySpec::Equivocate => ByzantineStrategy::Equivocate { values: vec![0, 1] },
            AdversarySpec::EchoPoison => ByzantineStrategy::EchoPoison { values: vec![0, 1] },
            AdversarySpec::CrashMid { reach } => ByzantineStrategy::CrashMid { value: 1, reach },
        }
    }

    /// Parses an `--adversary` value.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw.split(':').collect::<Vec<_>>().as_slice() {
            ["silent"] => Ok(AdversarySpec::Silent),
            ["lie"] => Ok(AdversarySpec::Lie { value: 0 }),
            ["lie", v] => Ok(AdversarySpec::Lie {
                value: v
                    .parse()
                    .map_err(|_| format!("bad value in adversary {raw:?}"))?,
            }),
            ["equivocate"] => Ok(AdversarySpec::Equivocate),
            ["echo-poison"] => Ok(AdversarySpec::EchoPoison),
            ["crash-mid", r] => Ok(AdversarySpec::CrashMid {
                reach: r
                    .parse()
                    .map_err(|_| format!("bad reach in adversary {raw:?}"))?,
            }),
            _ => Err(format!("unknown adversary {raw:?}")),
        }
    }

    /// Renders the `--adversary` value this spec parses from.
    pub fn flag(&self) -> String {
        match self {
            AdversarySpec::Silent => "silent".into(),
            AdversarySpec::Lie { value } => format!("lie:{value}"),
            AdversarySpec::Equivocate => "equivocate".into(),
            AdversarySpec::EchoPoison => "echo-poison".into(),
            AdversarySpec::CrashMid { reach } => format!("crash-mid:{reach}"),
        }
    }
}

/// Underlying-consensus selection, mirroring `--underlying`. The MVC
/// common-coin seed is the run spec's base seed, resolved at batch time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UnderlyingSpec {
    /// Idealized 2-step coordinator (`oracle`).
    #[default]
    Oracle,
    /// Real randomized stack (`mvc`).
    Mvc,
}

impl UnderlyingSpec {
    /// Parses an `--underlying` value.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "oracle" => Ok(UnderlyingSpec::Oracle),
            "mvc" => Ok(UnderlyingSpec::Mvc),
            _ => Err(format!("unknown underlying {raw:?}")),
        }
    }

    /// Renders the `--underlying` value this spec parses from.
    pub fn flag(&self) -> &'static str {
        match self {
            UnderlyingSpec::Oracle => "oracle",
            UnderlyingSpec::Mvc => "mvc",
        }
    }
}

/// Symbolic chaos-schedule selection, mirroring `--chaos`.
///
/// A `ChaosSpec` is *compiled* into a concrete
/// [`FaultSchedule`] per run via [`build`](ChaosSpec::build), against that
/// run's Byzantine [`FaultPlan`] — drop-heavy schedules attach their lossy
/// links to the run's actually-faulty processes (so correct↔correct links
/// stay reliable), and crash/partition schedules avoid silencing the
/// processes the plan already controls.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum ChaosSpec {
    /// No chaos (`none`): the compiled schedule is empty and the run is
    /// bit-identical to a chaos-free build.
    #[default]
    None,
    /// Every link incident to a *FaultPlan-faulty* process drops messages
    /// with probability `p` (`drop:<p>`). Confining genuine losses to
    /// already-faulty processes keeps the fault budget honest: liveness
    /// must still hold.
    DropHeavy {
        /// Per-message drop probability, in `[0, 1]`.
        p: f64,
    },
    /// Every message is duplicated with probability `p` (`dup:<p>`) —
    /// harmless to first-write-wins protocols, by design.
    DupHeavy {
        /// Per-message duplication probability, in `[0, 1]`.
        p: f64,
    },
    /// The first `⌈n/2⌉` processes are cut off from the rest over
    /// `[open, heal)` (`partition:<open>:<heal>`); cross-cut messages are
    /// held and re-delivered after the heal.
    PartitionHeal {
        /// Instant the cut opens.
        open: u64,
        /// Instant the cut heals.
        heal: u64,
    },
    /// `max(t, 1)` correct, non-coordinator processes are silenced over
    /// `[down, up)` and recover (`crash:<down>:<up>`); `down ≥ 1` so the
    /// victims' `on_start` sends at time 0 stay legal.
    CrashRecover {
        /// Instant the victims go down (≥ 1).
        down: u64,
        /// Recovery instant.
        up: u64,
    },
    /// Like [`CrashRecover`](ChaosSpec::CrashRecover), but the victims
    /// come back with **amnesia** (`crash-restart:<down>:<up>`): in-window
    /// deliveries are *lost*, and at `up` the process is torn down and
    /// rebuilt through its [`Recoverable`](dex_simnet::Recoverable) hook.
    /// Because state is genuinely destroyed, such a schedule is *not*
    /// eventually clean — termination-after-heal is not assertable and the
    /// variant deliberately stays out of [`ChaosSpec::MATRIX`]; it exists
    /// for the recovery suite, where the replication layer's WAL + catch-up
    /// protocol is what restores liveness.
    CrashRestart {
        /// Instant the victims go down (≥ 1).
        down: u64,
        /// Restart instant.
        up: u64,
    },
}

impl ChaosSpec {
    /// The four canonical non-trivial schedules of the CI chaos matrix.
    pub const MATRIX: [ChaosSpec; 4] = [
        ChaosSpec::DropHeavy { p: 0.4 },
        ChaosSpec::DupHeavy { p: 0.35 },
        ChaosSpec::PartitionHeal { open: 5, heal: 120 },
        ChaosSpec::CrashRecover { down: 3, up: 100 },
    ];

    /// `true` for [`ChaosSpec::None`].
    pub fn is_none(&self) -> bool {
        *self == ChaosSpec::None
    }

    /// Short label for artifact names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosSpec::None => "none",
            ChaosSpec::DropHeavy { .. } => "drop",
            ChaosSpec::DupHeavy { .. } => "dup",
            ChaosSpec::PartitionHeal { .. } => "partition",
            ChaosSpec::CrashRecover { .. } => "crash",
            ChaosSpec::CrashRestart { .. } => "crash-restart",
        }
    }

    /// Parses a `--chaos` value.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let prob = |s: &str| -> Result<f64, String> {
            let p: f64 = s
                .parse()
                .map_err(|_| format!("bad probability in chaos {raw:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0, 1] in chaos {raw:?}"));
            }
            Ok(p)
        };
        let time = |s: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad time in chaos {raw:?}"))
        };
        match raw.split(':').collect::<Vec<_>>().as_slice() {
            ["none"] => Ok(ChaosSpec::None),
            ["drop", p] => Ok(ChaosSpec::DropHeavy { p: prob(p)? }),
            ["dup", p] => Ok(ChaosSpec::DupHeavy { p: prob(p)? }),
            ["partition", open, heal] => {
                let (open, heal) = (time(open)?, time(heal)?);
                if open > heal {
                    return Err(format!("partition window [{open}, {heal}) is inverted"));
                }
                Ok(ChaosSpec::PartitionHeal { open, heal })
            }
            ["crash", down, up] => {
                let (down, up) = (time(down)?, time(up)?);
                if down == 0 {
                    return Err("crash windows must start at t ≥ 1 (on_start runs at 0)".into());
                }
                if down > up {
                    return Err(format!("crash window [{down}, {up}) is inverted"));
                }
                Ok(ChaosSpec::CrashRecover { down, up })
            }
            ["crash-restart", down, up] => {
                let (down, up) = (time(down)?, time(up)?);
                if down == 0 {
                    return Err("crash windows must start at t ≥ 1 (on_start runs at 0)".into());
                }
                if down > up {
                    return Err(format!("crash-restart window [{down}, {up}) is inverted"));
                }
                Ok(ChaosSpec::CrashRestart { down, up })
            }
            _ => Err(format!("unknown chaos {raw:?}")),
        }
    }

    /// Renders the `--chaos` value this spec parses from.
    pub fn flag(&self) -> String {
        match self {
            ChaosSpec::None => "none".into(),
            ChaosSpec::DropHeavy { p } => format!("drop:{p}"),
            ChaosSpec::DupHeavy { p } => format!("dup:{p}"),
            ChaosSpec::PartitionHeal { open, heal } => format!("partition:{open}:{heal}"),
            ChaosSpec::CrashRecover { down, up } => format!("crash:{down}:{up}"),
            ChaosSpec::CrashRestart { down, up } => format!("crash-restart:{down}:{up}"),
        }
    }

    /// Compiles the spec against a canonical *last-`f`* fault budget —
    /// the placement the netd cluster harness uses, where the budget
    /// processes are real child processes running correct code whose
    /// liveness is simply not awaited. With `f == 0` the plan is empty
    /// (so `DropHeavy` compiles to an empty schedule, exactly as in the
    /// simulator: no faulty processes means nothing to attach drops to).
    pub fn build_with_budget(&self, config: SystemConfig, f: usize) -> FaultSchedule {
        let plan = if f > 0 {
            FaultPlan::last_k(config, f)
        } else {
            FaultPlan::none()
        };
        self.build(config, &plan)
    }

    /// Compiles the symbolic spec into a concrete [`FaultSchedule`] for a
    /// run whose Byzantine processes are given by `plan`.
    pub fn build(&self, config: SystemConfig, plan: &FaultPlan) -> FaultSchedule {
        match *self {
            ChaosSpec::None => FaultSchedule::none(),
            ChaosSpec::DropHeavy { p } => FaultSchedule::new().lossy_processes(
                config.processes().filter(|q| plan.is_faulty(*q)),
                p,
                0.0,
            ),
            ChaosSpec::DupHeavy { p } => FaultSchedule::new().dup_all(p),
            ChaosSpec::PartitionHeal { open, heal } => FaultSchedule::new().partition(
                config.processes().take(config.n().div_ceil(2)),
                open,
                heal,
            ),
            ChaosSpec::CrashRecover { down, up } => {
                // Crash correct, non-coordinator processes: the oracle
                // coordinator (p0) stays up so the fallback path works, and
                // crashing a Byzantine process would waste the window.
                let victims: Vec<ProcessId> = config
                    .processes()
                    .filter(|q| !plan.is_faulty(*q) && q.index() != 0)
                    .collect();
                let k = config.t().max(1).min(victims.len());
                let mut sched = FaultSchedule::new();
                for &q in victims.iter().rev().take(k) {
                    sched = sched.crash(q, down, up);
                }
                sched
            }
            ChaosSpec::CrashRestart { down, up } => {
                // Same victim choice as CrashRecover, but with amnesia:
                // in-window deliveries are lost and the process is rebuilt
                // through its `Recoverable` hook at `up`.
                let victims: Vec<ProcessId> = config
                    .processes()
                    .filter(|q| !plan.is_faulty(*q) && q.index() != 0)
                    .collect();
                let k = config.t().max(1).min(victims.len());
                let mut sched = FaultSchedule::new();
                for &q in victims.iter().rev().take(k) {
                    sched = sched.crash_restart(q, down, up);
                }
                sched
            }
        }
    }
}

/// Pipelined-replication selection, mirroring `--pipeline`
/// (`<window>:<batch>`).
///
/// The default `1:1` keeps `dex-sim` on the single-shot consensus path —
/// anything else routes the invocation through the pipelined replication
/// engine (see [`crate::pipeline`]): a cluster of replicas keeping
/// `window` log slots in flight concurrently, each slot carrying a batch
/// of `batch` client values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineSpec {
    /// Slots each replica may keep in flight past its committed prefix
    /// (`1` = the sequential engine, byte-for-byte).
    pub window: u64,
    /// Client values batched into each slot's proposed command.
    pub batch: u64,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            window: 1,
            batch: 1,
        }
    }
}

impl PipelineSpec {
    /// `true` when the spec is the default `1:1` — the single-shot
    /// consensus path, not the replication engine.
    pub fn is_off(&self) -> bool {
        *self == PipelineSpec::default()
    }

    /// Parses a `--pipeline` value (`<window>` or `<window>:<batch>`).
    pub fn parse(raw: &str) -> Result<Self, String> {
        let num = |s: &str, what: &str| -> Result<u64, String> {
            match s.parse() {
                Ok(v) if v > 0 => Ok(v),
                _ => Err(format!("bad {what} in pipeline {raw:?} (need ≥ 1)")),
            }
        };
        match raw.split(':').collect::<Vec<_>>().as_slice() {
            [w] => Ok(PipelineSpec {
                window: num(w, "window")?,
                batch: 1,
            }),
            [w, b] => Ok(PipelineSpec {
                window: num(w, "window")?,
                batch: num(b, "batch")?,
            }),
            _ => Err(format!("unknown pipeline {raw:?}")),
        }
    }

    /// Renders the `--pipeline` value this spec parses from.
    pub fn flag(&self) -> String {
        format!("{}:{}", self.window, self.batch)
    }
}

/// Echo/vote aggregation selection, mirroring the **valueless**
/// `--aggregate` flag.
///
/// `Off` (the default) keeps the wire protocol byte-identical to
/// pre-aggregation builds — the seed trace artifacts `cmp` equal. `On`
/// coalesces each process's per-tick echo flood (votes, for Bosco) into
/// one batched multicast per causal depth (see
/// [`dex_broadcast::EchoAggregator`]), cutting the IDB wire complexity
/// from `n²` point-to-point echoes to `n` batches per tick. Algorithms
/// without an echo/vote flood (`plain`, the crash rows) ignore the switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AggregationSpec {
    /// Unbatched echoes — the paper's literal message pattern.
    #[default]
    Off,
    /// Per-tick batched echoes riding the `Dest::All` zero-clone path.
    On,
}

impl AggregationSpec {
    /// `true` for [`AggregationSpec::Off`].
    pub fn is_off(&self) -> bool {
        *self == AggregationSpec::Off
    }

    /// `true` for [`AggregationSpec::On`].
    pub fn is_on(&self) -> bool {
        *self == AggregationSpec::On
    }

    /// Short label for JSON and reports.
    pub fn flag(&self) -> &'static str {
        match self {
            AggregationSpec::Off => "off",
            AggregationSpec::On => "on",
        }
    }
}

/// A per-process address table for the netd mesh (`--peers`), mapping
/// process `i` to the `host:port` its TCP listener binds (and peers dial).
/// The default — no table — keeps the established localhost layout
/// (`127.0.0.1`, `port_base + i`); an explicit table lets a cluster later
/// span hosts without touching the wire protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AddressTable {
    entries: Vec<(String, u16)>,
}

impl AddressTable {
    /// The canonical single-host table: `127.0.0.1:port_base + i`.
    pub fn localhost(n: usize, port_base: u16) -> Self {
        AddressTable {
            entries: (0..n)
                .map(|i| ("127.0.0.1".to_string(), port_base + i as u16))
                .collect(),
        }
    }

    /// Parses a `--peers` value: a comma-separated `host:port` list, one
    /// entry per process in id order (`"10.0.0.1:9000,10.0.0.2:9000"`).
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in raw.split(',') {
            let (host, port) = part
                .rsplit_once(':')
                .ok_or_else(|| format!("peer entry {part:?} is not host:port"))?;
            if host.is_empty() {
                return Err(format!("peer entry {part:?} has an empty host"));
            }
            let port: u16 = port
                .parse()
                .map_err(|_| format!("bad port in peer entry {part:?}"))?;
            entries.push((host.to_string(), port));
        }
        if entries.is_empty() {
            return Err("empty --peers table".into());
        }
        Ok(AddressTable { entries })
    }

    /// Renders the `--peers` value this table parses from.
    pub fn flag(&self) -> String {
        self.entries
            .iter()
            .map(|(h, p)| format!("{h}:{p}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Number of processes the table addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for a table with no entries (unreachable via `parse`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Host of process `i`.
    pub fn host(&self, i: usize) -> &str {
        &self.entries[i].0
    }

    /// Listener port of process `i`.
    pub fn port(&self, i: usize) -> u16 {
        self.entries[i].1
    }
}

/// The netd kill-9 schedule (`--kill <after>[:divergent]`): SIGKILL the
/// victim replica once its committed prefix reaches `after`, and — when
/// `divergent` — give every replica a *different* pending-command stream
/// so the kill lands mid-disagreement and recovery must reconcile real
/// divergence (WAL replay + `t+1` catch-up), not just replay identical
/// state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KillSpec {
    /// Victim committed-prefix threshold that triggers the SIGKILL (≥ 1).
    pub after: u64,
    /// Whether replicas propose divergent per-process pending commands.
    pub divergent: bool,
}

impl Default for KillSpec {
    fn default() -> Self {
        KillSpec {
            after: 1,
            divergent: false,
        }
    }
}

impl KillSpec {
    /// Parses a `--kill` value (`<after>` or `<after>:divergent`).
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (after, divergent) = match raw.split(':').collect::<Vec<_>>().as_slice() {
            [a] => (*a, false),
            [a, "divergent"] => (*a, true),
            _ => return Err(format!("unknown kill schedule {raw:?}")),
        };
        let after: u64 = after
            .parse()
            .map_err(|_| format!("bad prefix threshold in kill schedule {raw:?}"))?;
        if after == 0 {
            return Err("kill threshold must be ≥ 1 (a victim with nothing committed has no divergent state to recover)".into());
        }
        Ok(KillSpec { after, divergent })
    }

    /// Renders the `--kill` value this spec parses from.
    pub fn flag(&self) -> String {
        if self.divergent {
            format!("{}:divergent", self.after)
        } else {
            self.after.to_string()
        }
    }
}

/// Which runtime executes the batch (`--runtime`). All three run the same
/// actor state machines; what changes is the substrate carrying the
/// messages — and therefore what a run's numbers *mean* (virtual ticks vs
/// wall-clock microseconds vs real sockets).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum RuntimeSpec {
    /// The deterministic discrete-event simulator (`dex-simnet`) —
    /// reproducible schedules, fault injection, tracing.
    #[default]
    Simnet,
    /// One OS thread per process over crossbeam channels
    /// (`dex-threadnet`) — real concurrency, delay-jittered dispatch,
    /// wall-clock timers.
    Thread,
    /// One OS *process* per consensus process over real TCP sockets
    /// (`dex-netd`) — kill-9-able processes, optionally spread across
    /// hosts by an explicit [`AddressTable`] (`peers: None` keeps the
    /// localhost `port_base + i` layout). In-process execution is
    /// impossible by construction; [`RunSpec::run`] reports an error
    /// pointing at the `dex-netd` cluster harness, which owns the
    /// child-spawning orchestration.
    Netd {
        /// Explicit per-process `host:port` table, `None` for localhost.
        peers: Option<AddressTable>,
    },
}

impl RuntimeSpec {
    /// Parses a `--runtime` value.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "simnet" => Ok(RuntimeSpec::Simnet),
            "threadnet" => Ok(RuntimeSpec::Thread),
            "netd" => Ok(RuntimeSpec::Netd { peers: None }),
            _ => Err(format!(
                "unknown runtime {raw:?} (expected simnet, threadnet or netd)"
            )),
        }
    }

    /// Short label for flags, JSON and reports.
    pub fn flag(&self) -> &'static str {
        match self {
            RuntimeSpec::Simnet => "simnet",
            RuntimeSpec::Thread => "threadnet",
            RuntimeSpec::Netd { .. } => "netd",
        }
    }

    /// `true` for the netd runtime (with or without a peer table).
    pub fn is_netd(&self) -> bool {
        matches!(self, RuntimeSpec::Netd { .. })
    }

    /// The netd peer table, if the runtime is netd and one was given.
    pub fn peers(&self) -> Option<&AddressTable> {
        match self {
            RuntimeSpec::Netd { peers } => peers.as_ref(),
            _ => None,
        }
    }
}

/// The unified experiment description: every knob of a `dex-sim` batch, as
/// one serde-able value. See the module docs for the flag mapping.
#[derive(Clone, PartialEq, Debug)]
pub struct RunSpec {
    /// System size (`--n`).
    pub n: usize,
    /// Fault bound (`--t`).
    pub t: usize,
    /// Actual Byzantine processes per run, `≤ t` (`--f`).
    pub f: usize,
    /// Algorithm under test (`--algo`).
    pub algo: Algo,
    /// Input-vector generator (`--workload`).
    pub workload: WorkloadSpec,
    /// Byzantine strategy (`--adversary`).
    pub adversary: AdversarySpec,
    /// Underlying consensus (`--underlying`).
    pub underlying: UnderlyingSpec,
    /// Fault placement policy (`--placement`).
    pub placement: Placement,
    /// Link-delay model (`--delay`; `uniform:<min>:<max>`, `constant:<d>`
    /// or `exp:<mean>` — the `Skewed`/`Targeted` models have no CLI
    /// spelling and require the programmatic API).
    pub delay: DelayModel,
    /// Network chaos schedule (`--chaos`).
    pub chaos: ChaosSpec,
    /// Pipelined replication (`--pipeline <window>:<batch>`; `1:1` keeps
    /// the single-shot consensus path).
    pub pipeline: PipelineSpec,
    /// Echo/vote aggregation (the valueless `--aggregate` flag; off keeps
    /// the wire byte-identical to pre-aggregation builds).
    pub aggregate: AggregationSpec,
    /// Which runtime executes the batch (`--runtime`), with the optional
    /// netd peer table (`--peers`).
    pub runtime: RuntimeSpec,
    /// The netd kill-9 schedule (`--kill`); only the cluster harness's
    /// kill9 phase consults it. The default (`1`, non-divergent) is the
    /// established kill-at-first-commit schedule.
    pub kill: KillSpec,
    /// Print the per-class wire-statistics breakdown after the batch (the
    /// valueless `--stats` flag).
    pub stats: bool,
    /// Batch size (`--runs`).
    pub runs: usize,
    /// Base seed; run `i` uses `seed + i` (`--seed`).
    pub seed: u64,
    /// Delivery cap per run (`--max-events`).
    pub max_events: u64,
    /// Whether to re-execute run 0 with event recording (`--trace`).
    pub trace: bool,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            n: 7,
            t: 1,
            f: 0,
            algo: Algo::DexFreq,
            workload: WorkloadSpec::default(),
            adversary: AdversarySpec::default(),
            underlying: UnderlyingSpec::default(),
            placement: Placement::RandomK,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            chaos: ChaosSpec::default(),
            pipeline: PipelineSpec::default(),
            aggregate: AggregationSpec::default(),
            runtime: RuntimeSpec::default(),
            kill: KillSpec::default(),
            stats: false,
            runs: 20,
            seed: 0,
            max_events: 50_000_000,
            trace: false,
        }
    }
}

fn parse_algo(raw: &str) -> Result<Algo, String> {
    match raw.split(':').collect::<Vec<_>>().as_slice() {
        ["dex-freq"] => Ok(Algo::DexFreq),
        ["dex-prv"] => Ok(Algo::DexPrv { m: 1 }),
        ["dex-prv", m] => Ok(Algo::DexPrv {
            m: m.parse()
                .map_err(|_| format!("bad privileged value in algo {raw:?}"))?,
        }),
        ["bosco"] => Ok(Algo::Bosco),
        ["plain"] | ["underlying-only"] => Ok(Algo::UnderlyingOnly),
        ["brasileiro"] => Ok(Algo::Brasileiro),
        ["crash-adaptive"] => Ok(Algo::CrashAdaptive),
        _ => Err(format!("unknown algo {raw:?}")),
    }
}

fn algo_flag(algo: Algo) -> String {
    match algo {
        Algo::DexPrv { m } => format!("dex-prv:{m}"),
        Algo::UnderlyingOnly => "plain".into(),
        other => other.label().into(),
    }
}

fn parse_delay(raw: &str) -> Result<DelayModel, String> {
    let num = |s: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| format!("bad number in delay {raw:?}"))
    };
    match raw.split(':').collect::<Vec<_>>().as_slice() {
        ["constant", d] => Ok(DelayModel::Constant(num(d)?)),
        ["uniform", min, max] => Ok(DelayModel::Uniform {
            min: num(min)?,
            max: num(max)?,
        }),
        ["exp", mean] => Ok(DelayModel::Exponential { mean: num(mean)? }),
        _ => Err(format!("unknown delay {raw:?}")),
    }
}

fn delay_flag(delay: &DelayModel) -> String {
    match delay {
        DelayModel::Constant(d) => format!("constant:{d}"),
        DelayModel::Uniform { min, max } => format!("uniform:{min}:{max}"),
        DelayModel::Exponential { mean } => format!("exp:{mean}"),
        other => panic!("delay model {other:?} has no CLI spelling"),
    }
}

fn parse_placement(raw: &str) -> Result<Placement, String> {
    match raw {
        "random-k" => Ok(Placement::RandomK),
        "last-k" => Ok(Placement::LastK),
        _ => Err(format!("unknown placement {raw:?}")),
    }
}

fn placement_flag(placement: Placement) -> &'static str {
    match placement {
        Placement::RandomK => "random-k",
        Placement::LastK => "last-k",
    }
}

impl RunSpec {
    /// Validates the configuration (`n > t` constraints, `f ≤ t`) and
    /// returns the [`SystemConfig`].
    pub fn config(&self) -> Result<SystemConfig, String> {
        let config = SystemConfig::new(self.n, self.t).map_err(|e| e.to_string())?;
        if self.f > self.t {
            return Err(format!(
                "f = {} exceeds the fault bound t = {}",
                self.f, self.t
            ));
        }
        Ok(config)
    }

    /// Resolves the underlying-consensus kind (the MVC coin seed is the
    /// spec's base seed).
    pub fn underlying_kind(&self) -> UnderlyingKind {
        match self.underlying {
            UnderlyingSpec::Oracle => UnderlyingKind::Oracle,
            UnderlyingSpec::Mvc => UnderlyingKind::Mvc {
                coin_seed: self.seed,
            },
        }
    }

    /// Lowers the spec to a [`BatchSpec`] and hands it to `body` (the
    /// borrowed workload generator lives for the duration of the call).
    pub fn with_batch<R>(&self, body: impl FnOnce(&BatchSpec<'_>) -> R) -> Result<R, String> {
        let config = self.config()?;
        let workload = self.workload.generator();
        let batch = BatchSpec {
            config,
            algo: self.algo,
            underlying: self.underlying_kind(),
            strategy: self.adversary.strategy(),
            f: self.f,
            placement: self.placement,
            workload: workload.as_ref(),
            delay: self.delay.clone(),
            chaos: self.chaos.clone(),
            aggregate: self.aggregate.is_on(),
            runs: self.runs,
            seed0: self.seed,
            max_events: self.max_events,
        };
        Ok(body(&batch))
    }

    /// Executes the batch sequentially on the spec's runtime.
    ///
    /// `Simnet` runs the deterministic simulator; `Thread` hands the same
    /// actors to `dex-threadnet` (one OS thread per process, wall-clock
    /// delays from the spec's delay model). `Netd` cannot run in-process
    /// — the error points at the `dex-netd` cluster harness.
    pub fn run(&self) -> Result<BatchStats, String> {
        match &self.runtime {
            RuntimeSpec::Simnet => self.with_batch(run_batch),
            RuntimeSpec::Thread => crate::runner::run_thread_batch(self),
            RuntimeSpec::Netd { .. } => Err(
                "--runtime netd spawns real OS processes and cannot run in-process; \
                 use the dex-netd cluster harness (dex-netd --cluster <flags>)"
                    .into(),
            ),
        }
    }

    /// Executes the batch with one worker per core (same statistics). The
    /// threaded runtime already owns all cores per run, so it stays
    /// sequential across runs.
    pub fn run_auto(&self) -> Result<BatchStats, String> {
        match &self.runtime {
            RuntimeSpec::Simnet => self.with_batch(run_batch_auto),
            _ => self.run(),
        }
    }

    /// Re-executes batch run `i` with event recording enabled. Tracing
    /// re-runs a deterministic schedule, so it requires the simnet
    /// runtime.
    pub fn traced(&self, i: usize) -> Result<TracedRun, String> {
        if self.runtime != RuntimeSpec::Simnet {
            return Err(format!(
                "--trace re-executes a deterministic schedule and requires the simnet \
                 runtime (got --runtime {})",
                self.runtime.flag()
            ));
        }
        self.with_batch(|batch| traced_batch_run(batch, i))
    }

    /// The `results/` artifact path a `--trace` invocation of this spec
    /// writes: `trace_<seed>.json` for chaos-free specs (unchanged from
    /// the pre-chaos layout), `trace_chaos_<label>_<seed>.json` otherwise.
    pub fn trace_artifact(&self) -> String {
        if self.chaos.is_none() {
            format!("results/trace_{}.json", self.seed)
        } else {
            format!(
                "results/trace_chaos_{}_{}.json",
                self.chaos.label(),
                self.seed
            )
        }
    }

    /// Renders the spec as the `dex-sim` flag vector that parses back into
    /// it. Every flag is emitted explicitly (defaults included), in a fixed
    /// order, so the output is deterministic and self-describing.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--n".into(),
            self.n.to_string(),
            "--t".into(),
            self.t.to_string(),
            "--f".into(),
            self.f.to_string(),
            "--algo".into(),
            algo_flag(self.algo),
            "--workload".into(),
            self.workload.flag(),
            "--adversary".into(),
            self.adversary.flag(),
            "--underlying".into(),
            self.underlying.flag().into(),
            "--placement".into(),
            placement_flag(self.placement).into(),
            "--delay".into(),
            delay_flag(&self.delay),
            "--chaos".into(),
            self.chaos.flag(),
            "--pipeline".into(),
            self.pipeline.flag(),
            "--runtime".into(),
            self.runtime.flag().into(),
        ];
        if let Some(table) = self.runtime.peers() {
            args.push("--peers".into());
            args.push(table.flag());
        }
        args.extend([
            "--kill".into(),
            self.kill.flag(),
            "--runs".into(),
            self.runs.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--max-events".into(),
            self.max_events.to_string(),
        ]);
        if self.aggregate.is_on() {
            args.push("--aggregate".into());
        }
        if self.stats {
            args.push("--stats".into());
        }
        if self.trace {
            args.push("--trace".into());
        }
        args
    }

    /// Parses a `dex-sim` flag vector (`["--n", "7", "--algo", ...]`).
    /// Unspecified flags take their defaults; `--trace` takes no value.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Result<Self, String> {
        let mut spec = RunSpec::default();
        // `--peers` is applied after the loop: it modifies the runtime
        // variant, and flag order must not matter.
        let mut peers: Option<AddressTable> = None;
        let mut it = args.iter().map(AsRef::as_ref);
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument {arg:?} (flags look like --name value)"
                ));
            };
            if name == "trace" {
                spec.trace = true;
                continue;
            }
            if name == "aggregate" {
                spec.aggregate = AggregationSpec::On;
                continue;
            }
            if name == "stats" {
                spec.stats = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{name}"))?;
            let int = |what: &str| -> Result<u64, String> {
                value
                    .parse()
                    .map_err(|_| format!("could not parse --{what} {value}"))
            };
            match name {
                "n" => spec.n = int("n")? as usize,
                "t" => spec.t = int("t")? as usize,
                "f" => spec.f = int("f")? as usize,
                "runs" => spec.runs = int("runs")? as usize,
                "seed" => spec.seed = int("seed")?,
                "max-events" => spec.max_events = int("max-events")?,
                "algo" => spec.algo = parse_algo(value)?,
                "workload" => spec.workload = WorkloadSpec::parse(value)?,
                "adversary" => spec.adversary = AdversarySpec::parse(value)?,
                "underlying" => spec.underlying = UnderlyingSpec::parse(value)?,
                "placement" => spec.placement = parse_placement(value)?,
                "delay" => spec.delay = parse_delay(value)?,
                "chaos" => spec.chaos = ChaosSpec::parse(value)?,
                "pipeline" => spec.pipeline = PipelineSpec::parse(value)?,
                "runtime" => spec.runtime = RuntimeSpec::parse(value)?,
                "peers" => peers = Some(AddressTable::parse(value)?),
                "kill" => spec.kill = KillSpec::parse(value)?,
                _ => return Err(format!("unknown flag --{name}")),
            }
        }
        if let Some(table) = peers {
            if !spec.runtime.is_netd() {
                return Err(format!(
                    "--peers addresses real TCP listeners and requires --runtime netd \
                     (got --runtime {})",
                    spec.runtime.flag()
                ));
            }
            spec.runtime = RuntimeSpec::Netd { peers: Some(table) };
        }
        Ok(spec)
    }

    /// Deterministic one-line JSON description of the spec (fixed key
    /// order, no floats beyond their shortest display form) — for logs and
    /// artifact headers.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"n\":{},\"t\":{},\"f\":{},\"algo\":\"{}\",\"workload\":\"{}\",\
             \"adversary\":\"{}\",\"underlying\":\"{}\",\"placement\":\"{}\",\
             \"delay\":\"{}\",\"chaos\":\"{}\",\"pipeline\":\"{}\",\"peers\":\"{}\",\
             \"kill\":\"{}\",\"aggregate\":\"{}\",\
             \"runtime\":\"{}\",\"stats\":{},\"runs\":{},\"seed\":{},\
             \"max_events\":{},\"trace\":{}}}",
            self.n,
            self.t,
            self.f,
            algo_flag(self.algo),
            self.workload.flag(),
            self.adversary.flag(),
            self.underlying.flag(),
            placement_flag(self.placement),
            delay_flag(&self.delay),
            self.chaos.flag(),
            self.pipeline.flag(),
            self.runtime
                .peers()
                .map(AddressTable::flag)
                .unwrap_or_default(),
            self.kill.flag(),
            self.aggregate.flag(),
            self.runtime.flag(),
            self.stats,
            self.runs,
            self.seed,
            self.max_events,
            self.trace,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_round_trip_through_parse_and_render() {
        let spec = RunSpec {
            n: 10,
            t: 1,
            f: 1,
            algo: Algo::DexPrv { m: 3 },
            workload: WorkloadSpec::Bernoulli { p: 0.8 },
            adversary: AdversarySpec::Equivocate,
            underlying: UnderlyingSpec::Mvc,
            placement: Placement::LastK,
            delay: DelayModel::Exponential { mean: 4 },
            chaos: ChaosSpec::PartitionHeal { open: 5, heal: 120 },
            pipeline: PipelineSpec {
                window: 8,
                batch: 4,
            },
            aggregate: AggregationSpec::On,
            runtime: RuntimeSpec::Thread,
            kill: KillSpec {
                after: 2,
                divergent: true,
            },
            stats: true,
            runs: 8,
            seed: 31,
            max_events: 1_000_000,
            trace: true,
        };
        let args = spec.to_args();
        assert_eq!(RunSpec::from_args(&args).unwrap(), spec);
    }

    #[test]
    fn aggregate_and_stats_flags_are_valueless_and_default_off() {
        let spec = RunSpec::from_args(&["--aggregate", "--stats"]).unwrap();
        assert!(spec.aggregate.is_on());
        assert!(spec.stats);
        assert_eq!(
            spec,
            RunSpec {
                aggregate: AggregationSpec::On,
                stats: true,
                ..RunSpec::default()
            }
        );
        let off = RunSpec::default();
        assert!(off.aggregate.is_off());
        assert!(!off.to_args().iter().any(|a| a == "--aggregate"));
        assert!(off
            .to_json()
            .contains("\"aggregate\":\"off\",\"runtime\":\"simnet\",\"stats\":false"));
        assert!(spec
            .to_json()
            .contains("\"aggregate\":\"on\",\"runtime\":\"simnet\",\"stats\":true"));
    }

    #[test]
    fn pipeline_parses_window_and_batch() {
        assert!(PipelineSpec::default().is_off());
        assert_eq!(
            PipelineSpec::parse("8").unwrap(),
            PipelineSpec {
                window: 8,
                batch: 1
            }
        );
        let spec = PipelineSpec::parse("8:4").unwrap();
        assert_eq!(
            spec,
            PipelineSpec {
                window: 8,
                batch: 4
            }
        );
        assert!(!spec.is_off());
        assert_eq!(PipelineSpec::parse(&spec.flag()).unwrap(), spec);
        assert!(PipelineSpec::parse("0:4").is_err(), "window must be ≥ 1");
        assert!(PipelineSpec::parse("8:0").is_err(), "batch must be ≥ 1");
        assert!(PipelineSpec::parse("8:4:2").is_err());
        // Batching without a wider window is still a pipeline run: slots
        // carry multi-value commands even though only one is in flight.
        assert!(!PipelineSpec {
            window: 1,
            batch: 4
        }
        .is_off());
    }

    #[test]
    fn hotkey_workload_parses_round_trips_and_generates() {
        let spec = WorkloadSpec::parse("hotkey:1000:1.2:0.9:0.1").unwrap();
        assert_eq!(
            spec,
            WorkloadSpec::HotKey {
                clients: 1000,
                s: 1.2,
                hot: 0.9,
                bias: 0.1,
            }
        );
        assert_eq!(WorkloadSpec::parse(&spec.flag()).unwrap(), spec);
        let gen = spec.generator();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let input = gen.generate(13, &mut rng);
        assert!(input.as_slice().iter().all(|v| *v < 1000));
        // Hot mass dominates at hot = 0.9.
        assert!(input.count_of(&0) >= 7, "{input:?}");

        assert!(WorkloadSpec::parse("hotkey:0:1:0.5:0.5").is_err());
        assert!(WorkloadSpec::parse("hotkey:10:1:1.5:0").is_err());
        assert!(WorkloadSpec::parse("hotkey:10:1:0.5").is_err());
    }

    #[test]
    fn default_spec_matches_cli_defaults() {
        let spec = RunSpec::from_args::<&str>(&[]).unwrap();
        assert_eq!(spec, RunSpec::default());
        assert_eq!(spec.n, 7);
        assert_eq!(spec.workload, WorkloadSpec::Unanimous { value: 1 });
        assert!(spec.chaos.is_none());
        assert_eq!(spec.trace_artifact(), "results/trace_0.json");
    }

    #[test]
    fn chaos_parse_rejects_bad_windows_and_probabilities() {
        assert!(ChaosSpec::parse("drop:1.5").is_err());
        assert!(ChaosSpec::parse("crash:0:50").is_err(), "down must be ≥ 1");
        assert!(ChaosSpec::parse("partition:80:10").is_err());
        assert!(ChaosSpec::parse("flood:1").is_err());
        assert_eq!(
            ChaosSpec::parse("crash:3:100").unwrap(),
            ChaosSpec::CrashRecover { down: 3, up: 100 }
        );
    }

    #[test]
    fn drop_heavy_compiles_onto_the_faulty_processes_only() {
        let config = SystemConfig::new(7, 1).unwrap();
        let plan = FaultPlan::last_k(config, 1);
        let sched = ChaosSpec::DropHeavy { p: 0.4 }.build(config, &plan);
        assert!(!sched.is_empty());
        for link in sched.links() {
            let touches_faulty = link.from.is_some_and(|q| plan.is_faulty(q))
                || link.to.is_some_and(|q| plan.is_faulty(q));
            assert!(touches_faulty, "lossy link must touch a faulty process");
        }
        // With no faulty processes there is nothing to attach drops to.
        assert!(ChaosSpec::DropHeavy { p: 0.4 }
            .build(config, &FaultPlan::none())
            .is_empty());
    }

    #[test]
    fn crash_recover_spares_the_coordinator_and_the_byzantine() {
        let config = SystemConfig::new(7, 1).unwrap();
        let plan = FaultPlan::last_k(config, 1);
        let sched = ChaosSpec::CrashRecover { down: 3, up: 100 }.build(config, &plan);
        let windows = sched.crash_windows();
        assert_eq!(windows.len(), 1);
        let victim = windows[0].process;
        assert_ne!(victim.index(), 0, "coordinator must stay up");
        assert!(!plan.is_faulty(victim), "victim must be correct");
        assert!(sched.all_recover());
        assert_eq!(sched.last_heal(), Some(100));
    }

    #[test]
    fn crash_restart_compiles_to_an_amnesiac_schedule_outside_the_matrix() {
        assert_eq!(
            ChaosSpec::parse("crash-restart:3:100").unwrap(),
            ChaosSpec::CrashRestart { down: 3, up: 100 }
        );
        assert!(ChaosSpec::parse("crash-restart:0:50").is_err());
        let spec = ChaosSpec::CrashRestart { down: 3, up: 100 };
        assert_eq!(ChaosSpec::parse(&spec.flag()).unwrap(), spec);

        let config = SystemConfig::new(7, 1).unwrap();
        let plan = FaultPlan::last_k(config, 1);
        let sched = spec.build(config, &plan);
        let windows = sched.crash_windows();
        assert_eq!(windows.len(), 1);
        assert_ne!(windows[0].process.index(), 0, "coordinator must stay up");
        assert!(!plan.is_faulty(windows[0].process));
        // Amnesia destroys state: the schedule is *not* eventually clean,
        // which is exactly why the variant stays out of the CI matrix.
        assert!(!sched.all_recover());
        assert!(!ChaosSpec::MATRIX.contains(&spec));
    }

    #[test]
    fn chaos_artifact_names_carry_the_schedule_label() {
        let spec = RunSpec {
            chaos: ChaosSpec::DupHeavy { p: 0.3 },
            seed: 9,
            ..RunSpec::default()
        };
        assert_eq!(spec.trace_artifact(), "results/trace_chaos_dup_9.json");
    }

    #[test]
    fn json_is_deterministic_and_fixed_order() {
        let spec = RunSpec::default();
        let s = spec.to_json();
        assert_eq!(s, spec.to_json());
        assert!(s.starts_with("{\"n\":7,\"t\":1,\"f\":0,\"algo\":\"dex-freq\""));
        assert!(s.contains("\"chaos\":\"none\""));
        assert!(s.contains("\"runtime\":\"simnet\""));
        assert!(s.ends_with("\"trace\":false}"));
    }

    #[test]
    fn runtime_flag_parses_dispatches_and_gates_tracing() {
        assert_eq!(RuntimeSpec::parse("simnet").unwrap(), RuntimeSpec::Simnet);
        assert_eq!(
            RuntimeSpec::parse("threadnet").unwrap(),
            RuntimeSpec::Thread
        );
        assert_eq!(
            RuntimeSpec::parse("netd").unwrap(),
            RuntimeSpec::Netd { peers: None }
        );
        assert!(RuntimeSpec::parse("quic").is_err());
        let spec = RunSpec::from_args(&["--runtime", "threadnet"]).unwrap();
        assert_eq!(spec.runtime, RuntimeSpec::Thread);
        // Tracing replays a deterministic schedule — simnet only.
        assert!(spec.traced(0).is_err());
        // Netd is not an in-process runtime; the error routes the caller
        // to the cluster harness.
        let netd = RunSpec {
            runtime: RuntimeSpec::Netd { peers: None },
            ..RunSpec::default()
        };
        assert!(netd.run().unwrap_err().contains("dex-netd"));
    }

    #[test]
    fn address_table_parses_round_trips_and_defaults_to_localhost() {
        let table = AddressTable::parse("10.0.0.1:9000,10.0.0.2:9001").unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!((table.host(0), table.port(0)), ("10.0.0.1", 9000));
        assert_eq!((table.host(1), table.port(1)), ("10.0.0.2", 9001));
        assert_eq!(AddressTable::parse(&table.flag()).unwrap(), table);
        let local = AddressTable::localhost(3, 25000);
        assert_eq!(local.len(), 3);
        assert_eq!((local.host(2), local.port(2)), ("127.0.0.1", 25002));
        assert!(AddressTable::parse("nohost").is_err());
        assert!(AddressTable::parse(":9000").is_err());
        assert!(AddressTable::parse("h:notaport").is_err());
    }

    #[test]
    fn peers_flag_requires_netd_and_round_trips() {
        let spec = RunSpec::from_args(&[
            "--runtime",
            "netd",
            "--peers",
            "127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002",
        ])
        .unwrap();
        let table = spec.runtime.peers().expect("table survives parsing");
        assert_eq!(table.len(), 3);
        assert_eq!(RunSpec::from_args(&spec.to_args()).unwrap(), spec);
        assert!(spec
            .to_json()
            .contains("\"peers\":\"127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002\""));
        // Order must not matter: --peers before --runtime still applies.
        let swapped =
            RunSpec::from_args(&["--peers", "127.0.0.1:9000", "--runtime", "netd"]).unwrap();
        assert!(swapped.runtime.peers().is_some());
        // On a non-netd runtime the flag is an error, not silently ignored.
        let err = RunSpec::from_args(&["--peers", "127.0.0.1:9000"]).unwrap_err();
        assert!(err.contains("netd"), "{err}");
    }

    #[test]
    fn kill_schedule_parses_round_trips_and_defaults() {
        assert_eq!(
            KillSpec::default(),
            KillSpec {
                after: 1,
                divergent: false
            }
        );
        assert_eq!(
            KillSpec::parse("3:divergent").unwrap(),
            KillSpec {
                after: 3,
                divergent: true
            }
        );
        assert_eq!(
            KillSpec::parse("2").unwrap(),
            KillSpec {
                after: 2,
                divergent: false
            }
        );
        assert!(KillSpec::parse("0").is_err(), "threshold must be ≥ 1");
        assert!(KillSpec::parse("3:weird").is_err());
        let spec = RunSpec {
            kill: KillSpec {
                after: 2,
                divergent: true,
            },
            ..RunSpec::default()
        };
        assert_eq!(RunSpec::from_args(&spec.to_args()).unwrap(), spec);
        assert!(spec.to_json().contains("\"kill\":\"2:divergent\""));
        assert!(RunSpec::default()
            .to_json()
            .contains("\"peers\":\"\",\"kill\":\"1\""));
    }

    #[test]
    fn spec_runs_a_clean_batch_end_to_end() {
        let spec = RunSpec {
            runs: 5,
            f: 1,
            adversary: AdversarySpec::Equivocate,
            workload: WorkloadSpec::Bernoulli { p: 0.8 },
            max_events: 1_000_000,
            ..RunSpec::default()
        };
        let stats = spec.run().unwrap();
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.runs, 5);
    }

    #[test]
    fn invalid_specs_are_rejected_not_executed() {
        let spec = RunSpec {
            f: 2, // exceeds t = 1
            ..RunSpec::default()
        };
        assert!(spec.run().is_err());
        assert!(RunSpec::from_args(&["--frobnicate", "1"]).is_err());
    }
}
