//! Heterogeneous node types: correct protocol actors mixed with Byzantine
//! actors, plus the forgery implementations the generic adversary needs.

// Node enums hold whole protocol actors inline; boxing them would buy
// nothing in a simulation that owns every actor for its full lifetime.
#![allow(clippy::large_enum_variant)]

use crate::ucwrap::{AnyUc, AnyUcMsg};
use dex_adversary::{ByzantineActor, ProtocolForgery};
use dex_baselines::{BoscoActor, BoscoMsg, CrashActor, CrashMsg, UnderlyingOnlyActor};
use dex_conditions::{FrequencyPair, PrivilegedPair};
use dex_core::{DexActor, DexMsg};
use dex_simnet::{Actor, Context};
use dex_types::ProcessId;
use dex_underlying::OracleMsg;

/// Messages of DEX over the unified underlying consensus.
pub type DexWire = DexMsg<u64, AnyUcMsg>;
/// Messages of Bosco over the unified underlying consensus.
pub type BoscoWire = BoscoMsg<u64, AnyUcMsg>;

impl ProtocolForgery for AnyUcMsg {
    type Value = u64;

    fn forge_proposal(_me: ProcessId, _to: ProcessId, value: u64) -> Vec<Self> {
        vec![AnyUcMsg::Oracle(OracleMsg::Propose(value))]
    }
}

/// A DEX system node: a correct process running one of the two legality
/// pairs, or a Byzantine process.
pub enum DexNode {
    /// Correct process, frequency pair.
    Freq(DexActor<u64, FrequencyPair, AnyUc>),
    /// Correct process, privileged-value pair.
    Prv(DexActor<u64, PrivilegedPair<u64>, AnyUc>),
    /// Byzantine process.
    Byz(ByzantineActor<DexWire>),
}

impl DexNode {
    /// Enables structured event recording on correct nodes (no-op for
    /// Byzantine nodes, whose logs would be untrusted anyway). The process
    /// id is taken from the wrapped state machine.
    pub fn enable_obs(&mut self, _me: u16) {
        match self {
            DexNode::Freq(a) => a.process_mut().enable_obs(),
            DexNode::Prv(a) => a.process_mut().enable_obs(),
            DexNode::Byz(_) => {}
        }
    }

    /// Copies out the recorded trace (`None` for Byzantine nodes or when
    /// recording was never enabled).
    pub fn obs_trace(&self) -> Option<dex_obs::ProcessTrace> {
        let obs = match self {
            DexNode::Freq(a) => a.process().obs(),
            DexNode::Prv(a) => a.process().obs(),
            DexNode::Byz(_) => return None,
        };
        obs.is_active().then(|| obs.trace())
    }

    /// Turns on echo aggregation on correct nodes (no-op for Byzantine
    /// nodes — the adversary never batches, which also exercises receivers
    /// against mixed batched/unbatched traffic).
    pub fn enable_aggregation(&mut self) {
        match self {
            DexNode::Freq(a) => a.enable_aggregation(),
            DexNode::Prv(a) => a.enable_aggregation(),
            DexNode::Byz(_) => {}
        }
    }
}

impl Actor for DexNode {
    type Msg = DexWire;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            DexNode::Freq(a) => a.on_start(ctx),
            DexNode::Prv(a) => a.on_start(ctx),
            DexNode::Byz(a) => a.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            DexNode::Freq(a) => a.on_message(from, msg, ctx),
            DexNode::Prv(a) => a.on_message(from, msg, ctx),
            DexNode::Byz(a) => a.on_message(from, msg, ctx),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        match self {
            DexNode::Freq(a) => a.recorder_mut(),
            DexNode::Prv(a) => a.recorder_mut(),
            DexNode::Byz(_) => None,
        }
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        dex_core::dex_msg_bytes(msg)
    }

    fn msg_class(msg: &Self::Msg) -> dex_simnet::MsgClass {
        dex_core::dex_msg_class(msg)
    }
}

/// A Bosco system node.
pub enum BoscoNode {
    /// Correct process.
    Correct(BoscoActor<u64, AnyUc>),
    /// Byzantine process.
    Byz(ByzantineActor<BoscoWire>),
}

impl BoscoNode {
    /// Enables structured event recording on correct nodes.
    pub fn enable_obs(&mut self, me: u16) {
        if let BoscoNode::Correct(a) = self {
            a.enable_obs(me);
        }
    }

    /// Copies out the recorded trace, if any.
    pub fn obs_trace(&self) -> Option<dex_obs::ProcessTrace> {
        match self {
            BoscoNode::Correct(a) => a.obs().is_active().then(|| a.obs().trace()),
            BoscoNode::Byz(_) => None,
        }
    }

    /// Turns on vote aggregation on correct nodes (no-op for Byzantine
    /// nodes).
    pub fn enable_aggregation(&mut self) {
        if let BoscoNode::Correct(a) = self {
            a.enable_aggregation();
        }
    }
}

impl Actor for BoscoNode {
    type Msg = BoscoWire;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            BoscoNode::Correct(a) => a.on_start(ctx),
            BoscoNode::Byz(a) => a.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            BoscoNode::Correct(a) => a.on_message(from, msg, ctx),
            BoscoNode::Byz(a) => a.on_message(from, msg, ctx),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        match self {
            BoscoNode::Correct(a) => a.recorder_mut(),
            BoscoNode::Byz(_) => None,
        }
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        dex_baselines::bosco_msg_bytes(msg)
    }

    fn msg_class(msg: &Self::Msg) -> dex_simnet::MsgClass {
        dex_baselines::bosco_msg_class(msg)
    }
}

/// Messages of the crash-model algorithms over the unified underlying
/// consensus.
pub type CrashWire = CrashMsg<u64, AnyUcMsg>;

/// A crash-model system node (Table 1's crash rows).
pub enum CrashNode {
    /// Correct process.
    Correct(CrashActor<u64, AnyUc>),
    /// Crashed (or, for robustness checks, Byzantine) process.
    Byz(ByzantineActor<CrashWire>),
}

impl CrashNode {
    /// Enables structured event recording on correct nodes.
    pub fn enable_obs(&mut self, me: u16) {
        if let CrashNode::Correct(a) = self {
            a.enable_obs(me);
        }
    }

    /// Copies out the recorded trace, if any.
    pub fn obs_trace(&self) -> Option<dex_obs::ProcessTrace> {
        match self {
            CrashNode::Correct(a) => a.obs().is_active().then(|| a.obs().trace()),
            CrashNode::Byz(_) => None,
        }
    }
}

impl Actor for CrashNode {
    type Msg = CrashWire;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            CrashNode::Correct(a) => a.on_start(ctx),
            CrashNode::Byz(a) => a.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            CrashNode::Correct(a) => a.on_message(from, msg, ctx),
            CrashNode::Byz(a) => a.on_message(from, msg, ctx),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        match self {
            CrashNode::Correct(a) => a.recorder_mut(),
            CrashNode::Byz(_) => None,
        }
    }
}

/// An underlying-only system node.
pub enum PlainNode {
    /// Correct process.
    Correct(UnderlyingOnlyActor<u64, AnyUc>),
    /// Byzantine process.
    Byz(ByzantineActor<AnyUcMsg>),
}

impl PlainNode {
    /// Enables structured event recording on correct nodes.
    pub fn enable_obs(&mut self, me: u16) {
        if let PlainNode::Correct(a) = self {
            a.enable_obs(me);
        }
    }

    /// Copies out the recorded trace, if any.
    pub fn obs_trace(&self) -> Option<dex_obs::ProcessTrace> {
        match self {
            PlainNode::Correct(a) => a.obs().is_active().then(|| a.obs().trace()),
            PlainNode::Byz(_) => None,
        }
    }
}

impl Actor for PlainNode {
    type Msg = AnyUcMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            PlainNode::Correct(a) => a.on_start(ctx),
            PlainNode::Byz(a) => a.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            PlainNode::Correct(a) => a.on_message(from, msg, ctx),
            PlainNode::Byz(a) => a.on_message(from, msg, ctx),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        match self {
            PlainNode::Correct(a) => a.recorder_mut(),
            PlainNode::Byz(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dex_forgery_builds_both_channels() {
        let msgs = DexWire::forge_proposal(ProcessId::new(2), ProcessId::new(0), 9);
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0], DexMsg::Proposal(9)));
        assert!(matches!(
            &msgs[1],
            DexMsg::Idb(dex_broadcast::IdbMessage::Init { key, value: 9 }) if key.index() == 2
        ));
    }

    #[test]
    fn dex_forgery_reacts_to_inits_with_conflicting_echoes() {
        let observed: DexWire = DexMsg::Idb(dex_broadcast::IdbMessage::Init {
            key: ProcessId::new(4),
            value: 1,
        });
        let forged = DexWire::forge_reaction(ProcessId::new(2), &observed, ProcessId::new(0), 8);
        assert_eq!(forged.len(), 1);
        assert!(matches!(
            &forged[0],
            DexMsg::Idb(dex_broadcast::IdbMessage::Echo { key, value: 8 }) if key.index() == 4
        ));
    }

    #[test]
    fn dex_forgery_ignores_echoes() {
        let observed: DexWire = DexMsg::Idb(dex_broadcast::IdbMessage::Echo {
            key: ProcessId::new(4),
            value: 1,
        });
        assert!(
            DexWire::forge_reaction(ProcessId::new(2), &observed, ProcessId::new(0), 8).is_empty()
        );
    }

    #[test]
    fn bosco_forgery_is_vote_only() {
        let msgs = BoscoWire::forge_proposal(ProcessId::new(1), ProcessId::new(0), 3);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], BoscoMsg::Vote(3)));
    }
}
