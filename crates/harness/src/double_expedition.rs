//! **E5 — Double expedition** (§2.4, Lemma 5): inputs in `C²_f \ C¹_f`
//! decide in exactly two steps — the channel no previous one-step
//! algorithm has.
//!
//! Margin sweep on `n = 6t + 1`: for margins in `(2t + 2f, 4t + 2f]` DEX
//! decides at depth 2 via `P2`, while Bosco (which has no conditional
//! two-step scheme) pays its full fallback (3 steps with the 2-step oracle
//! underlying consensus). Margins above `4t + 2f` collapse to one step;
//! margins at or below `2t + 2f` fall back (4 steps for DEX).

use crate::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_metrics::{Summary, Table};
use dex_simnet::DelayModel;
use dex_types::{InputVector, ProcessId, SystemConfig};

/// Options for the double-expedition experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `6t + 1`).
    pub t: usize,
    /// Seeds per margin.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 2,
            runs: 50,
            seed0: 0,
        }
    }
}

/// Mean steps and decision-path mix of one algorithm at one margin.
pub struct MarginPoint {
    /// Mean decision steps across correct processes and runs.
    pub mean_steps: f64,
    /// Fraction of decisions at exactly one step.
    pub one_step: f64,
    /// Fraction of decisions at exactly two steps.
    pub two_step: f64,
}

/// Measures one `(algo, margin, f)` grid point.
pub fn measure(
    cfg: SystemConfig,
    algo: Algo,
    mc: usize,
    f: usize,
    runs: usize,
    seed0: u64,
) -> MarginPoint {
    let mut steps = Summary::new();
    let (mut one, mut two, mut total) = (0usize, 0usize, 0usize);
    for i in 0..runs {
        let mut entries = vec![1u64; cfg.n()];
        for e in entries.iter_mut().take(mc) {
            *e = 0;
        }
        let result = run_instance(&RunInstance {
            faults: dex_simnet::FaultSchedule::none(),
            config: cfg,
            algo,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::ConsistentLie { value: 0 },
            fault_plan: FaultPlan::from_ids(cfg, (cfg.n() - f..cfg.n()).map(ProcessId::new)),
            input: InputVector::new(entries),
            delay: DelayModel::Uniform { min: 1, max: 10 },
            seed: seed0 + i as u64,
            max_events: 5_000_000,
            aggregate: false,
        });
        assert!(result.quiescent && result.agreement_ok() && result.all_decided());
        for r in result.decided() {
            steps.add(f64::from(r.steps));
            total += 1;
            match r.steps {
                1 => one += 1,
                2 => two += 1,
                _ => {}
            }
        }
    }
    MarginPoint {
        mean_steps: steps.mean(),
        one_step: one as f64 / total as f64,
        two_step: two as f64 / total as f64,
    }
}

/// Runs E5 and renders the margin-sweep table.
pub fn run(opts: Opts) -> Table {
    let t = opts.t;
    let n = 6 * t + 1;
    let cfg = SystemConfig::new(n, t).expect("n = 6t + 1 > 3t");
    let mut table = Table::new(vec![
        "margin".into(),
        "f".into(),
        "condition class".into(),
        "dex 1-step".into(),
        "dex 2-step".into(),
        "dex mean steps".into(),
        "bosco mean steps".into(),
    ]);
    for f in 0..=t {
        for mc in 0..=(n - 2 * t) / 2 {
            let margin = n - 2 * mc;
            let effective = margin as i64 - 2 * f as i64;
            let class = if effective > (4 * t) as i64 {
                "C1 (one-step)"
            } else if effective > (2 * t) as i64 {
                "C2 \\ C1 (two-step)"
            } else {
                "outside (fallback)"
            };
            let dex = measure(cfg, Algo::DexFreq, mc, f, opts.runs, opts.seed0);
            let bosco = measure(cfg, Algo::Bosco, mc, f, opts.runs, opts.seed0 + 500_000);
            table.row(vec![
                margin.to_string(),
                f.to_string(),
                class.into(),
                format!("{:.2}", dex.one_step),
                format!("{:.2}", dex.two_step),
                format!("{:.2}", dex.mean_steps),
                format!("{:.2}", bosco.mean_steps),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_step_channel_fires_in_c2_band() {
        // n = 7, t = 1, f = 0: margin 3 (mc = 2) is in (2, 4] ⇒ all DEX
        // decisions at exactly two steps; Bosco needs its 3-step fallback.
        let cfg = SystemConfig::new(7, 1).unwrap();
        let dex = measure(cfg, Algo::DexFreq, 2, 0, 10, 0);
        assert_eq!(dex.two_step, 1.0, "mean {}", dex.mean_steps);
        assert_eq!(dex.mean_steps, 2.0);
        let bosco = measure(cfg, Algo::Bosco, 2, 0, 10, 0);
        assert_eq!(bosco.one_step, 0.0);
        assert!(bosco.mean_steps >= 3.0, "bosco {}", bosco.mean_steps);
    }

    #[test]
    fn outside_both_conditions_dex_pays_four_steps() {
        // margin 1 (mc = 3): below 2t ⇒ fallback; oracle costs 2 steps on
        // top of the 2-step IDB round.
        let cfg = SystemConfig::new(7, 1).unwrap();
        let dex = measure(cfg, Algo::DexFreq, 3, 0, 10, 3);
        assert_eq!(dex.one_step, 0.0);
        assert_eq!(dex.two_step, 0.0);
        assert_eq!(dex.mean_steps, 4.0, "the 3-vs-4 trade-off (§1.2)");
        let bosco = measure(cfg, Algo::Bosco, 3, 0, 10, 3);
        assert_eq!(bosco.mean_steps, 3.0);
    }
}
