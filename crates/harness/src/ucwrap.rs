//! Uniform wrapper over the underlying-consensus implementations.

use dex_types::{ProcessId, SystemConfig};
use dex_underlying::{
    CoinMode, MvcMsg, OracleConsensus, OracleMsg, Outbox, ReducedMvc, UnderlyingConsensus,
};
use rand::rngs::StdRng;

/// Wire messages of [`AnyUc`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnyUcMsg {
    /// Oracle traffic.
    Oracle(OracleMsg<u64>),
    /// Randomized-stack traffic.
    Mvc(MvcMsg<u64>),
}

/// Either underlying-consensus implementation behind one message type, so
/// experiment node types need no extra generic parameter.
// One AnyUc lives inside each simulated process for its whole lifetime;
// boxing the larger variant would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyUc {
    /// The idealized 2-step coordinator primitive.
    Oracle(OracleConsensus<u64>),
    /// The real randomized stack (reliable broadcast + binary consensus).
    Mvc(ReducedMvc<u64>),
}

impl AnyUc {
    /// Builds the oracle variant; `coordinator` must be a correct process.
    pub fn oracle(config: SystemConfig, me: ProcessId, coordinator: ProcessId) -> Self {
        AnyUc::Oracle(OracleConsensus::new(config, me, coordinator))
    }

    /// Builds the randomized variant with a common-coin seed shared by all
    /// processes. The fallback value for hopelessly split proposals is
    /// `u64::MAX` (never used as a workload value).
    pub fn mvc(config: SystemConfig, me: ProcessId, coin_seed: u64) -> Self {
        AnyUc::Mvc(ReducedMvc::new(
            config,
            me,
            CoinMode::Common { seed: coin_seed },
            u64::MAX,
        ))
    }
}

fn forward<M>(mut sub: Outbox<M>, out: &mut Outbox<AnyUcMsg>, wrap: impl Fn(M) -> AnyUcMsg) {
    sub.map_drain_into(out, wrap);
}

impl UnderlyingConsensus<u64> for AnyUc {
    type Msg = AnyUcMsg;

    fn name(&self) -> &'static str {
        match self {
            AnyUc::Oracle(u) => u.name(),
            AnyUc::Mvc(u) => u.name(),
        }
    }

    fn propose(&mut self, value: u64, rng: &mut StdRng, out: &mut Outbox<AnyUcMsg>) {
        match self {
            AnyUc::Oracle(u) => {
                let mut sub = Outbox::new();
                u.propose(value, rng, &mut sub);
                forward(sub, out, AnyUcMsg::Oracle);
            }
            AnyUc::Mvc(u) => {
                let mut sub = Outbox::new();
                u.propose(value, rng, &mut sub);
                forward(sub, out, AnyUcMsg::Mvc);
            }
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &AnyUcMsg,
        rng: &mut StdRng,
        out: &mut Outbox<AnyUcMsg>,
    ) {
        match (self, msg) {
            (AnyUc::Oracle(u), AnyUcMsg::Oracle(m)) => {
                let mut sub = Outbox::new();
                u.on_message(from, m, rng, &mut sub);
                forward(sub, out, AnyUcMsg::Oracle);
            }
            (AnyUc::Mvc(u), AnyUcMsg::Mvc(m)) => {
                let mut sub = Outbox::new();
                u.on_message(from, m, rng, &mut sub);
                forward(sub, out, AnyUcMsg::Mvc);
            }
            // Cross-variant traffic can only come from Byzantine processes.
            _ => {}
        }
    }

    fn decision(&self) -> Option<&u64> {
        match self {
            AnyUc::Oracle(u) => u.decision(),
            AnyUc::Mvc(u) => u.decision(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_variant_routes_messages() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let mut uc = AnyUc::oracle(cfg, ProcessId::new(1), ProcessId::new(0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Outbox::new();
        uc.propose(5, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(uc.name(), "oracle");
        uc.on_message(
            ProcessId::new(0),
            &AnyUcMsg::Oracle(OracleMsg::Decide(5)),
            &mut rng,
            &mut out,
        );
        assert_eq!(uc.decision(), Some(&5));
    }

    #[test]
    fn mismatched_variant_traffic_is_dropped() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let mut uc = AnyUc::oracle(cfg, ProcessId::new(1), ProcessId::new(0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Outbox::new();
        // A Byzantine process sends MVC traffic at an oracle endpoint.
        uc.on_message(
            ProcessId::new(3),
            &AnyUcMsg::Mvc(MvcMsg::Prop(dex_broadcast::RbMessage::Init {
                key: ProcessId::new(3),
                value: 9,
            })),
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(uc.decision(), None);
    }

    #[test]
    fn mvc_variant_constructs() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let uc = AnyUc::mvc(cfg, ProcessId::new(0), 42);
        assert_eq!(uc.name(), "mvc");
        assert_eq!(uc.decision(), None);
    }
}
