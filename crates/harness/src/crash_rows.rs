//! **E1b — Table 1's crash-model rows**: Brasileiro et al. \[2\] and the
//! adaptive condition-based rule (spirit of Izumi–Masuzawa \[8\]) at
//! `n = 3t + 1`, under crash faults.
//!
//! Contrast with the Byzantine rows: crash algorithms get away with far
//! smaller systems (`3t+1` vs `5t+1`–`7t+1`) and, for the adaptive rule,
//! with far weaker margins (`> 2f` instead of `> 4t + 2f`), because views
//! can omit entries but never contain lies.

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::{SplitCount, Unanimous};

/// Options for the crash-rows experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `3t + 1`).
    pub t: usize,
    /// Runs per cell.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 2,
            runs: 100,
            seed0: 0,
        }
    }
}

/// Runs E1b and renders the crash-rows table.
///
/// # Panics
///
/// Panics if any cell shows a safety or termination violation.
pub fn run(opts: Opts) -> Table {
    let t = opts.t;
    let n = 3 * t + 1;
    let cfg = SystemConfig::new(n, t).expect("n = 3t + 1");
    let mut table = Table::new(vec![
        "algorithm".into(),
        "n".into(),
        "workload".into(),
        "f (crashes)".into(),
        "1-step fraction".into(),
        "mean steps".into(),
    ]);
    let unanimous = Unanimous { value: 1 };
    // Margin 2: n − 2·mc = 2 ⇒ inside the adaptive one-step region only
    // when f = 0 (needs margin > 2f).
    let thin_margin = SplitCount {
        major: 1,
        minor: 0,
        minor_count: (n - 2) / 2,
    };
    for algo in [Algo::Brasileiro, Algo::CrashAdaptive] {
        for f in 0..=t {
            for (wname, workload) in [
                (
                    "unanimous",
                    &unanimous as &(dyn dex_workloads::InputGenerator + Sync),
                ),
                ("margin-2 split", &thin_margin),
            ] {
                let stats = run_batch_auto(&BatchSpec {
                    chaos: crate::spec::ChaosSpec::None,
                    config: cfg,
                    algo,
                    underlying: UnderlyingKind::Oracle,
                    strategy: ByzantineStrategy::Silent, // crash model
                    f,
                    placement: Placement::RandomK,
                    workload,
                    delay: DelayModel::Uniform { min: 1, max: 10 },
                    runs: opts.runs,
                    seed0: opts.seed0,
                    max_events: 5_000_000,
                    aggregate: false,
                });
                assert!(stats.clean(), "{}/{wname}/f={f}: {stats:?}", algo.label());
                table.row(vec![
                    algo.label().into(),
                    n.to_string(),
                    wname.into(),
                    f.to_string(),
                    format!("{:.2}", stats.path_fraction("1-step")),
                    format!("{:.2}", stats.steps.mean()),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_rows_match_cited_results() {
        let table = run(Opts {
            t: 1,
            runs: 20,
            seed0: 3,
        });
        let csv = table.to_csv();
        // Brasileiro: unanimous + f = 0 ⇒ always one-step at n = 3t + 1.
        assert!(
            csv.lines()
                .any(|l| l.starts_with("brasileiro,4,unanimous,0,1.00")),
            "{csv}"
        );
        // The adaptive rule decides one-step on margin-2 inputs when f = 0
        // (margin 2 > 2·0), which Brasileiro cannot (not unanimous).
        let adaptive_f0 = csv
            .lines()
            .find(|l| l.starts_with("crash-adaptive,4,margin-2 split,0"))
            .expect("row exists");
        let frac: f64 = adaptive_f0.split(',').nth(4).unwrap().parse().unwrap();
        assert!(frac > 0.9, "adaptive one-step fraction {frac}");
        let brasileiro_f0 = csv
            .lines()
            .find(|l| l.starts_with("brasileiro,4,margin-2 split,0"))
            .expect("row exists");
        let bfrac: f64 = brasileiro_f0.split(',').nth(4).unwrap().parse().unwrap();
        assert!(bfrac < frac, "brasileiro {bfrac} vs adaptive {frac}");
    }
}
