//! Experiment harness: assembles algorithms, workloads, adversaries and the
//! simulator into reproducible experiments.
//!
//! The pieces:
//!
//! * [`AnyUc`] — a uniform wrapper over the underlying-consensus
//!   implementations (idealized oracle vs the real randomized stack), so a
//!   single node type serves every experiment.
//! * [`nodes`] — heterogeneous actor enums (`DexNode`, `BoscoNode`,
//!   `PlainNode`) mixing correct protocol actors with Byzantine actors, plus
//!   the [`ProtocolForgery`](dex_adversary::ProtocolForgery)
//!   implementations that let the generic adversary attack each protocol.
//! * [`spec`] — the unified, serializable [`RunSpec`](spec::RunSpec)
//!   (system size, algorithm, workload, adversary, chaos schedule, seed…)
//!   that maps 1:1 onto the `dex-sim` CLI flags and runs batches directly.
//! * [`stats`] — the shared [`RunStats`](stats::RunStats) carrier every
//!   runtime's result surface projects into, so `--stats` prints the same
//!   per-class wire breakdown on simnet, threadnet and netd alike.
//! * [`runner`] — single-run and batch execution with safety checking
//!   (agreement / unanimity / termination violations are *counted*, the
//!   experiment asserts they stay zero) and step/latency statistics.
//! * [`campaign`] — the million-client testbed sweep: a
//!   [`CampaignSpec`](campaign::CampaignSpec) fans contention-phase
//!   workloads across seeds × adversaries × chaos schedules × legal
//!   `(n, t)` pairs on a worker pool and folds the digests into a
//!   byte-stable fast-decision-rate artifact (see `DESIGN.md` §14).
//! * One module per paper experiment (see `DESIGN.md` §4): [`table1`],
//!   [`crash_rows`], [`adaptive`], [`double_expedition`], [`average_case`],
//!   [`pairs`], [`coverage`], [`idb`], [`trace`], [`messages`],
//!   [`latency`], [`scaling`].
//!
//! # Examples
//!
//! A whole experiment as one [`RunSpec`](spec::RunSpec):
//!
//! ```
//! use dex_harness::spec::{ChaosSpec, RunSpec, WorkloadSpec};
//!
//! let spec = RunSpec {
//!     workload: WorkloadSpec::Unanimous { value: 3 },
//!     chaos: ChaosSpec::PartitionHeal { open: 5, heal: 120 },
//!     runs: 4,
//!     ..RunSpec::default()
//! };
//! let stats = spec.run()?;
//! assert!(stats.clean()); // safe during the cut, live after the heal
//! # Ok::<(), String>(())
//! ```
//!
//! A single DEX run via the lower-level [`RunInstance`](runner::RunInstance):
//!
//! ```
//! use dex_harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
//! use dex_adversary::{ByzantineStrategy, FaultPlan};
//! use dex_simnet::{DelayModel, FaultSchedule};
//! use dex_types::{InputVector, SystemConfig};
//!
//! let config = SystemConfig::new(7, 1)?;
//! let result = run_instance(&RunInstance {
//!     config,
//!     algo: Algo::DexFreq,
//!     underlying: UnderlyingKind::Oracle,
//!     strategy: ByzantineStrategy::Silent,
//!     fault_plan: FaultPlan::none(),
//!     input: InputVector::unanimous(7, 3),
//!     delay: DelayModel::Uniform { min: 1, max: 10 },
//!     faults: FaultSchedule::none(),
//!     seed: 1,
//!     max_events: 1_000_000,
//!     aggregate: false,
//! });
//! assert!(result.agreement_ok());
//! assert_eq!(result.max_steps(), Some(1)); // unanimous ⇒ one-step everywhere
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod average_case;
pub mod campaign;
pub mod coverage;
pub mod crash_rows;
pub mod double_expedition;
pub mod idb;
pub mod latency;
pub mod messages;
pub mod nodes;
pub mod pairs;
pub mod pipeline;
pub mod runner;
pub mod scaling;
pub mod spec;
pub mod stats;
pub mod table1;
pub mod trace;
mod ucwrap;

pub use ucwrap::{AnyUc, AnyUcMsg};
