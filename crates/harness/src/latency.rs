//! **E12 — decision latency in (virtual) time**: the step-count advantage
//! translated into wall-clock terms under different network regimes.
//!
//! Steps are the paper's metric, but applications feel *time*. One step
//! costs one network traversal, so under mean delay `δ` the expedited
//! paths land at ≈ `δ`, `2δ` and the fallback at ≈ `4δ` — unless the delay
//! distribution's tail stretches the picture (a consensus instance waits
//! for the `n − t`-th fastest message, an order statistic that behaves very
//! differently under uniform and heavy-tailed delays).

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::BernoulliMix;

/// Options for the latency experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound (system size is `7t + 1`).
    pub t: usize,
    /// Runs per point.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 1,
            runs: 100,
            seed0: 0,
        }
    }
}

/// Runs E12 and renders the latency table (mean and p99 in virtual time
/// units; mean network delay is 10 units in every regime).
pub fn run(opts: Opts) -> Table {
    let cfg = SystemConfig::new(7 * opts.t + 1, opts.t).expect("n = 7t + 1");
    let mut table = Table::new(vec![
        "network".into(),
        "p(common value)".into(),
        "algo".into(),
        "mean latency".into(),
        "p99 latency".into(),
        "mean steps".into(),
    ]);
    let regimes: [(&str, DelayModel); 3] = [
        ("lockstep(10)", DelayModel::Constant(10)),
        ("uniform(1..19)", DelayModel::Uniform { min: 1, max: 19 }),
        ("exponential(10)", DelayModel::Exponential { mean: 10 }),
    ];
    for (rname, delay) in regimes {
        for p in [1.0f64, 0.8] {
            for algo in [Algo::DexFreq, Algo::Bosco, Algo::UnderlyingOnly] {
                let workload = BernoulliMix { p, a: 1, b: 0 };
                let stats = run_batch_auto(&BatchSpec {
                    chaos: crate::spec::ChaosSpec::None,
                    config: cfg,
                    algo,
                    underlying: UnderlyingKind::Oracle,
                    strategy: ByzantineStrategy::Silent,
                    f: 0,
                    placement: Placement::LastK,
                    workload: &workload,
                    delay: delay.clone(),
                    runs: opts.runs,
                    seed0: opts.seed0,
                    max_events: 10_000_000,
                    aggregate: false,
                });
                assert!(stats.clean(), "{stats:?}");
                table.row(vec![
                    rname.into(),
                    format!("{p:.1}"),
                    algo.label().into(),
                    format!("{:.1}", stats.latency.mean()),
                    format!("{:.1}", stats.latency.quantile(0.99).unwrap_or(0.0)),
                    format!("{:.2}", stats.steps.mean()),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_latency_equals_steps_times_delay() {
        let table = run(Opts {
            t: 1,
            runs: 5,
            seed0: 1,
        });
        let csv = table.to_csv();
        // Lockstep, unanimous, DEX: 1 step × 10 units.
        let line = csv
            .lines()
            .find(|l| l.starts_with("lockstep(10),1.0,dex-freq"))
            .expect("row exists");
        let mean: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
        assert_eq!(mean, 10.0, "{line}");
        // Lockstep, unanimous, plain baseline: 2 steps × 10 units.
        let line = csv
            .lines()
            .find(|l| l.starts_with("lockstep(10),1.0,underlying-only"))
            .expect("row exists");
        let mean: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
        assert_eq!(mean, 20.0, "{line}");
    }
}
