//! **E13 — scaling**: the conditions' expedition thresholds depend on `t`,
//! not `n`, so growing the system at fixed `t` *widens* the fast-path
//! region (relative margins shrink while absolute thresholds stay at
//! `4t`/`2t`). This experiment sweeps `n` at fixed `t` and fixed *relative*
//! contention and reports fast-path fractions and message costs.

use crate::runner::{run_batch_auto, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_adversary::ByzantineStrategy;
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::BernoulliMix;

/// Options for the scaling experiment.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Fault bound, held fixed across the sweep.
    pub t: usize,
    /// Probability of the common value.
    pub p: f64,
    /// Runs per system size.
    pub runs: usize,
    /// Base seed.
    pub seed0: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            t: 1,
            p: 0.8,
            runs: 50,
            seed0: 0,
        }
    }
}

/// Runs E13 and renders the n-sweep table.
pub fn run(opts: Opts) -> Table {
    let mut table = Table::new(vec![
        "n".into(),
        "t".into(),
        "dex <=1".into(),
        "dex <=2".into(),
        "dex mean steps".into(),
        "bosco mean steps".into(),
        "dex msgs/run".into(),
    ]);
    let workload = BernoulliMix {
        p: opts.p,
        a: 1,
        b: 0,
    };
    for n in [
        6 * opts.t + 1,
        8 * opts.t + 1,
        12 * opts.t + 1,
        18 * opts.t + 1,
        24 * opts.t + 1,
    ] {
        let cfg = SystemConfig::new(n, opts.t).expect("n > 6t by construction");
        let dex = run_batch_auto(&BatchSpec {
            chaos: crate::spec::ChaosSpec::None,
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            f: 0,
            placement: Placement::LastK,
            workload: &workload,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            runs: opts.runs,
            seed0: opts.seed0,
            max_events: 50_000_000,
            aggregate: false,
        });
        assert!(dex.clean(), "{dex:?}");
        let bosco = run_batch_auto(&BatchSpec {
            chaos: crate::spec::ChaosSpec::None,
            config: cfg,
            algo: Algo::Bosco,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            f: 0,
            placement: Placement::LastK,
            workload: &workload,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            runs: opts.runs,
            seed0: opts.seed0,
            max_events: 50_000_000,
            aggregate: false,
        });
        assert!(bosco.clean(), "{bosco:?}");
        let one = dex.path_fraction("1-step");
        let two = one + dex.path_fraction("2-step");
        table.row(vec![
            n.to_string(),
            opts.t.to_string(),
            format!("{one:.2}"),
            format!("{two:.2}"),
            format!("{:.2}", dex.steps.mean()),
            format!("{:.2}", bosco.steps.mean()),
            format!("{:.0}", dex.messages.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_widens_with_n_at_fixed_t() {
        let table = run(Opts {
            t: 1,
            p: 0.8,
            runs: 15,
            seed0: 5,
        });
        let csv = table.to_csv();
        let frac =
            |line: &str, col: usize| -> f64 { line.split(',').nth(col).unwrap().parse().unwrap() };
        let small = csv.lines().nth(1).unwrap().to_string(); // n = 7
        let large = csv.lines().nth(4).unwrap().to_string(); // n = 19
                                                             // ≤2-step coverage grows with n at fixed t and fixed contention:
                                                             // a Binomial(n, 0.8) margin concentrates at 0.6·n ≫ 2t.
        assert!(
            frac(&large, 3) >= frac(&small, 3),
            "coverage should not shrink: {small} vs {large}"
        );
        // At n = 19, t = 1 the margin is ≈ 11 ≫ 4t: nearly everything is
        // one-step.
        assert!(frac(&large, 2) > 0.9, "{large}");
    }
}
