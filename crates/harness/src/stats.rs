//! The shared result carrier unifying the three runtimes' outputs.
//!
//! Each runtime reports results in its own native shape —
//! [`BatchStats`](crate::runner::BatchStats) from simnet batches,
//! `NetworkResult` from `dex-threadnet`, [`PipelineOutcome`] from the
//! pipelined replication engine, and the netd cluster's child reports —
//! but they all carry the same [`NetStats`] wire ledger, a decision
//! count, and some notion of elapsed time. [`RunStats`] is the common
//! projection: `dex-sim --stats` and `dex-netd` print their per-class
//! wire breakdown through [`RunStats::breakdown_line`], so the line is
//! *identical in format* on every runtime and any diff between runtimes
//! is a genuine wire difference, not a formatting one.

use crate::pipeline::PipelineOutcome;
use crate::runner::BatchStats;
use crate::spec::RuntimeSpec;
use dex_simnet::NetStats;
use std::time::Duration;

/// Runtime-independent summary of one experiment execution.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Which runtime produced the numbers.
    pub runtime: RuntimeSpec,
    /// Correct-process decisions (or committed values, for pipeline runs).
    pub decisions: u64,
    /// Elapsed virtual time in the runtime's native units: simulator
    /// ticks for simnet, microseconds for the wall-clock runtimes (where
    /// virtual and wall time coincide by construction). `0` when the
    /// source carries no clock.
    pub elapsed_virtual: u64,
    /// Elapsed wall-clock time; [`Duration::ZERO`] for the simulator,
    /// whose virtual schedule costs no real time to speak of.
    pub elapsed_wall: Duration,
    /// The full wire ledger (per-class sends, batched echoes, bytes).
    pub net: NetStats,
}

impl RunStats {
    /// Projects a simnet or threadnet batch result. `wall` is the
    /// caller-measured execution time ([`Duration::ZERO`] if unmeasured).
    pub fn of_batch(stats: &BatchStats, runtime: RuntimeSpec, wall: Duration) -> Self {
        let elapsed_virtual = match &runtime {
            // Virtual latencies are per-decision, not a batch clock.
            RuntimeSpec::Simnet => 0,
            _ => wall.as_micros() as u64,
        };
        RunStats {
            runtime,
            decisions: stats.paths.total(),
            elapsed_virtual,
            elapsed_wall: wall,
            net: stats.net.clone(),
        }
    }

    /// Projects a pipelined replication outcome (always simnet).
    pub fn of_pipeline(out: &PipelineOutcome) -> Self {
        RunStats {
            runtime: RuntimeSpec::Simnet,
            decisions: out.committed_values,
            elapsed_virtual: out.ticks,
            elapsed_wall: Duration::ZERO,
            net: out.net.clone(),
        }
    }

    /// Builds a carrier directly from a wire ledger — the netd cluster
    /// harness sums its children's reported counters into one of these.
    pub fn of_net(net: NetStats, decisions: u64, wall: Duration) -> Self {
        RunStats {
            runtime: RuntimeSpec::Netd { peers: None },
            decisions,
            elapsed_virtual: wall.as_micros() as u64,
            elapsed_wall: wall,
            net,
        }
    }

    /// The canonical `--stats` breakdown line. One implementation for
    /// every runtime: the four class counters partition `sent` exactly,
    /// `echoes batched` is what the aggregation layer absorbed.
    pub fn breakdown_line(&self) -> String {
        format!(
            "wire classes: init {}  echo {}  batch {}  other {}  | echoes batched {}  bytes {}",
            self.net.sent_init,
            self.net.sent_echo,
            self.net.sent_batch,
            self.net.sent_other,
            self.net.echoes_batched,
            self.net.bytes_on_wire,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdversarySpec, RunSpec, WorkloadSpec};

    #[test]
    fn breakdown_line_is_identical_across_runtimes_for_the_same_ledger() {
        let net = NetStats {
            sent_init: 7,
            sent_echo: 42,
            sent_batch: 6,
            sent_other: 14,
            echoes_batched: 36,
            bytes_on_wire: 1234,
            ..NetStats::default()
        };
        let as_netd = RunStats::of_net(net.clone(), 5, Duration::from_millis(3));
        let batch = BatchStats {
            net,
            ..BatchStats::default()
        };
        let as_sim = RunStats::of_batch(&batch, RuntimeSpec::Simnet, Duration::ZERO);
        assert_eq!(as_netd.breakdown_line(), as_sim.breakdown_line());
        assert_eq!(
            as_sim.breakdown_line(),
            "wire classes: init 7  echo 42  batch 6  other 14  | echoes batched 36  bytes 1234"
        );
    }

    #[test]
    fn batch_projection_counts_decisions_and_clocks_per_runtime() {
        let spec = RunSpec {
            runs: 2,
            f: 1,
            adversary: AdversarySpec::Equivocate,
            workload: WorkloadSpec::Bernoulli { p: 0.8 },
            max_events: 1_000_000,
            ..RunSpec::default()
        };
        let batch = spec.run().unwrap();
        let stats = RunStats::of_batch(&batch, spec.runtime.clone(), Duration::ZERO);
        // 2 runs × 6 correct processes all decided.
        assert_eq!(stats.decisions, 12);
        assert_eq!(stats.elapsed_virtual, 0, "simnet has no batch clock");
        assert!(stats.net.sent > 0);
    }
}
