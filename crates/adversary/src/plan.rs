//! Fault plans: which processes are Byzantine in a run.

use dex_types::{ProcessId, SystemConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// The set of Byzantine processes for one run (`f = |plan| ≤ t`).
///
/// # Examples
///
/// ```
/// use dex_adversary::FaultPlan;
/// use dex_types::{ProcessId, SystemConfig};
///
/// let cfg = SystemConfig::new(7, 1)?;
/// let plan = FaultPlan::last_k(cfg, 1);
/// assert!(plan.is_faulty(ProcessId::new(6)));
/// assert_eq!(plan.f(), 1);
/// assert_eq!(plan.correct(cfg).count(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    faulty: BTreeSet<ProcessId>,
}

impl FaultPlan {
    /// No faults (`f = 0`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit set.
    ///
    /// # Panics
    ///
    /// Panics if more than `t` processes are marked faulty or an id is out
    /// of range — such a plan would void every guarantee under test.
    pub fn from_ids<I: IntoIterator<Item = ProcessId>>(config: SystemConfig, ids: I) -> Self {
        let faulty: BTreeSet<ProcessId> = ids.into_iter().collect();
        assert!(
            faulty.len() <= config.t(),
            "fault plan exceeds t = {}: {faulty:?}",
            config.t()
        );
        assert!(
            faulty.iter().all(|p| p.index() < config.n()),
            "fault plan names out-of-range processes: {faulty:?}"
        );
        FaultPlan { faulty }
    }

    /// The *last* `k` processes are faulty — keeps `p_0` correct, which the
    /// oracle underlying consensus uses as its default coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `k > t`.
    pub fn last_k(config: SystemConfig, k: usize) -> Self {
        Self::from_ids(config, (config.n() - k..config.n()).map(ProcessId::new))
    }

    /// `k` uniformly random faulty processes, never including `p_0` (the
    /// default oracle coordinator; experiments that want to attack the
    /// coordinator pick explicit ids).
    ///
    /// # Panics
    ///
    /// Panics if `k > t`.
    pub fn random_k<R: Rng + ?Sized>(config: SystemConfig, k: usize, rng: &mut R) -> Self {
        let mut candidates: Vec<ProcessId> = (1..config.n()).map(ProcessId::new).collect();
        candidates.shuffle(rng);
        Self::from_ids(config, candidates.into_iter().take(k))
    }

    /// Actual number of faults `f`.
    pub fn f(&self) -> usize {
        self.faulty.len()
    }

    /// Whether `p` is Byzantine under this plan.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.faulty.contains(&p)
    }

    /// Iterates over the faulty processes.
    pub fn faulty(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.faulty.iter().copied()
    }

    /// Iterates over the correct processes.
    pub fn correct(&self, config: SystemConfig) -> impl Iterator<Item = ProcessId> + '_ {
        config.processes().filter(move |p| !self.is_faulty(*p))
    }

    /// The lowest-indexed correct process — used as the oracle coordinator.
    pub fn coordinator(&self, config: SystemConfig) -> ProcessId {
        self.correct(config)
            .next()
            .expect("f <= t < n implies a correct process exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn cfg() -> SystemConfig {
        SystemConfig::new(13, 2).unwrap()
    }

    #[test]
    fn none_is_empty() {
        let plan = FaultPlan::none();
        assert_eq!(plan.f(), 0);
        assert_eq!(plan.correct(cfg()).count(), 13);
    }

    #[test]
    fn last_k_marks_the_tail() {
        let plan = FaultPlan::last_k(cfg(), 2);
        assert!(plan.is_faulty(ProcessId::new(11)));
        assert!(plan.is_faulty(ProcessId::new(12)));
        assert!(!plan.is_faulty(ProcessId::new(0)));
        assert_eq!(plan.coordinator(cfg()), ProcessId::new(0));
    }

    #[test]
    #[should_panic(expected = "exceeds t")]
    fn over_budget_plan_panics() {
        let _ = FaultPlan::last_k(cfg(), 3);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_plan_panics() {
        let _ = FaultPlan::from_ids(cfg(), [ProcessId::new(13)]);
    }

    #[test]
    fn random_k_spares_p0_and_respects_k() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let plan = FaultPlan::random_k(cfg(), 2, &mut rng);
            assert_eq!(plan.f(), 2);
            assert!(!plan.is_faulty(ProcessId::new(0)));
        }
    }

    #[test]
    fn coordinator_skips_faulty_prefix() {
        let plan = FaultPlan::from_ids(cfg(), [ProcessId::new(0), ProcessId::new(1)]);
        assert_eq!(plan.coordinator(cfg()), ProcessId::new(2));
    }

    #[test]
    fn faulty_iterator_is_sorted() {
        let plan = FaultPlan::from_ids(cfg(), [ProcessId::new(5), ProcessId::new(2)]);
        let ids: Vec<usize> = plan.faulty().map(|p| p.index()).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}
