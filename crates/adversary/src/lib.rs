//! Byzantine adversary strategies.
//!
//! The paper's lemmas quantify over *all* Byzantine behaviours; experiments
//! exercise a representative, worst-case-oriented family:
//!
//! * [`ByzantineStrategy::Silent`] — crash-like: never sends anything. This
//!   is the "weakest" fault, but the one that matters for adaptiveness
//!   experiments (a silent process shrinks every correct view).
//! * [`ByzantineStrategy::ConsistentLie`] — proposes a chosen value, the
//!   same to everyone (legal but input-vector-defying behaviour).
//! * [`ByzantineStrategy::Equivocate`] — proposes *different* values to
//!   different recipients, the attack Identical Broadcast is built to
//!   defuse (Fig. 2).
//! * [`ByzantineStrategy::EchoPoison`] — equivocates *and* injects
//!   conflicting witness/echo traffic in reaction to every broadcast it
//!   observes, attacking the two-step channel directly.
//!
//! Strategies are generic over the protocol under attack through the
//! [`ProtocolForgery`] trait, which knows how to fabricate that protocol's
//! proposal-like and reaction-like messages. `dex-harness` implements the
//! trait for Algorithm DEX and for the Bosco baseline, so every algorithm
//! faces the same adversaries.
//!
//! The [`FaultPlan`] helper decides *which* processes are faulty in a run
//! and is shared by all experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod forgery;
mod plan;

pub use actor::{ByzantineActor, ByzantineStrategy};
pub use forgery::ProtocolForgery;
pub use plan::FaultPlan;
