//! The generic Byzantine actor.

use crate::forgery::ProtocolForgery;
use dex_simnet::{Actor, Context};
use dex_types::ProcessId;

/// What a Byzantine process does in a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ByzantineStrategy<V> {
    /// Crash-like: never sends anything.
    Silent,
    /// Proposes `value` consistently to everyone.
    ConsistentLie {
        /// The value it pushes.
        value: V,
    },
    /// Proposes `values[recipient mod len]` — different values to different
    /// recipients (the Fig. 2 attack).
    Equivocate {
        /// Values cycled over the recipients; must be non-empty.
        values: Vec<V>,
    },
    /// Equivocates like [`Self::Equivocate`] **and** injects forged
    /// reactions (e.g. conflicting IDB echoes) towards every process for
    /// every message it observes.
    EchoPoison {
        /// Values cycled over the recipients; must be non-empty.
        values: Vec<V>,
    },
    /// Crashes **mid-broadcast**: proposes `value` honestly, but only to
    /// the first `reach` recipients (by id), then stops forever. The
    /// canonical hard case for one-step rules — part of the system has the
    /// crashed process's entry in its view, the rest never will.
    CrashMid {
        /// The value proposed before crashing.
        value: V,
        /// Number of recipients (lowest ids first) that receive it.
        reach: usize,
    },
}

impl<V> ByzantineStrategy<V> {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ByzantineStrategy::Silent => "silent",
            ByzantineStrategy::ConsistentLie { .. } => "lie",
            ByzantineStrategy::Equivocate { .. } => "equivocate",
            ByzantineStrategy::EchoPoison { .. } => "echo-poison",
            ByzantineStrategy::CrashMid { .. } => "crash-mid",
        }
    }
}

/// A Byzantine process executing a [`ByzantineStrategy`] against the
/// protocol described by the [`ProtocolForgery`] implementation `F`.
#[derive(Clone, Debug)]
pub struct ByzantineActor<F: ProtocolForgery> {
    strategy: ByzantineStrategy<F::Value>,
    /// Remaining forged-reaction sends; a hard cap keeping adversarial
    /// traffic finite even if a forgery implementation reacts to reactions.
    reaction_budget: usize,
}

impl<F: ProtocolForgery> ByzantineActor<F> {
    /// Creates the actor.
    ///
    /// # Panics
    ///
    /// Panics if an equivocation strategy carries an empty value list.
    pub fn new(strategy: ByzantineStrategy<F::Value>) -> Self {
        if let ByzantineStrategy::Equivocate { values } | ByzantineStrategy::EchoPoison { values } =
            &strategy
        {
            assert!(!values.is_empty(), "equivocation needs at least one value");
        }
        ByzantineActor {
            strategy,
            reaction_budget: 100_000,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> &ByzantineStrategy<F::Value> {
        &self.strategy
    }

    fn value_for(&self, recipient: ProcessId) -> Option<F::Value> {
        match &self.strategy {
            ByzantineStrategy::Silent => None,
            ByzantineStrategy::ConsistentLie { value } => Some(value.clone()),
            ByzantineStrategy::Equivocate { values } | ByzantineStrategy::EchoPoison { values } => {
                Some(values[recipient.index() % values.len()].clone())
            }
            ByzantineStrategy::CrashMid { value, reach } => {
                (recipient.index() < *reach).then(|| value.clone())
            }
        }
    }
}

impl<F: ProtocolForgery> Actor for ByzantineActor<F> {
    type Msg = F;

    fn on_start(&mut self, ctx: &mut Context<'_, F>) {
        let me = ctx.me();
        for i in 0..ctx.n() {
            let to = ProcessId::new(i);
            if let Some(v) = self.value_for(to) {
                for msg in F::forge_proposal(me, to, v) {
                    ctx.send(to, msg);
                }
            }
        }
    }

    fn on_message(&mut self, _from: ProcessId, msg: &F, ctx: &mut Context<'_, F>) {
        if let ByzantineStrategy::EchoPoison { .. } = &self.strategy {
            let me = ctx.me();
            for i in 0..ctx.n() {
                let to = ProcessId::new(i);
                if to == me {
                    continue; // poisoning ourselves would loop forever
                }
                if let Some(v) = self.value_for(to) {
                    for forged in F::forge_reaction(me, msg, to, v) {
                        if self.reaction_budget == 0 {
                            return;
                        }
                        self.reaction_budget -= 1;
                        ctx.send(to, forged);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_simnet::{DelayModel, Simulation};

    /// Toy protocol: proposals only; reactions echo the observed value + 1.
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Toy {
        Proposal(u64),
        Reaction(u64),
    }

    impl ProtocolForgery for Toy {
        type Value = u64;

        fn forge_proposal(_me: ProcessId, _to: ProcessId, value: u64) -> Vec<Self> {
            vec![Toy::Proposal(value)]
        }

        fn forge_reaction(
            _me: ProcessId,
            observed: &Self,
            _to: ProcessId,
            value: u64,
        ) -> Vec<Self> {
            match observed {
                Toy::Proposal(_) => vec![Toy::Reaction(value)],
                Toy::Reaction(_) => Vec::new(), // keep it finite
            }
        }
    }

    /// A recorder node that collects everything it receives.
    #[derive(Default)]
    struct Recorder {
        got: Vec<(ProcessId, Toy)>,
    }

    impl Actor for Recorder {
        type Msg = Toy;
        fn on_start(&mut self, _: &mut Context<'_, Toy>) {}
        fn on_message(&mut self, from: ProcessId, msg: &Toy, _: &mut Context<'_, Toy>) {
            self.got.push((from, msg.clone()));
        }
    }

    enum Node {
        Byz(ByzantineActor<Toy>),
        Rec(Recorder),
    }

    impl Actor for Node {
        type Msg = Toy;
        fn on_start(&mut self, ctx: &mut Context<'_, Toy>) {
            match self {
                Node::Byz(a) => a.on_start(ctx),
                Node::Rec(a) => a.on_start(ctx),
            }
        }
        fn on_message(&mut self, from: ProcessId, msg: &Toy, ctx: &mut Context<'_, Toy>) {
            match self {
                Node::Byz(a) => a.on_message(from, msg, ctx),
                Node::Rec(a) => a.on_message(from, msg, ctx),
            }
        }
    }

    fn run(strategy: ByzantineStrategy<u64>) -> Vec<Vec<(ProcessId, Toy)>> {
        let nodes = vec![
            Node::Byz(ByzantineActor::new(strategy)),
            Node::Rec(Recorder::default()),
            Node::Rec(Recorder::default()),
            Node::Rec(Recorder::default()),
        ];
        let mut sim = Simulation::builder(nodes)
            .seed(7)
            .delay(DelayModel::Constant(1))
            .build();
        assert!(sim.run(100_000).quiescent);
        sim.actors()
            .iter()
            .map(|n| match n {
                Node::Rec(r) => r.got.clone(),
                Node::Byz(_) => Vec::new(),
            })
            .collect()
    }

    #[test]
    fn silent_sends_nothing() {
        let got = run(ByzantineStrategy::Silent);
        assert!(got.iter().all(|g| g.is_empty()));
    }

    #[test]
    fn consistent_lie_reaches_everyone_identically() {
        let got = run(ByzantineStrategy::ConsistentLie { value: 9 });
        for r in &got[1..] {
            assert_eq!(r, &vec![(ProcessId::new(0), Toy::Proposal(9))]);
        }
    }

    #[test]
    fn equivocate_cycles_values_by_recipient() {
        let got = run(ByzantineStrategy::Equivocate { values: vec![1, 2] });
        // Recipient p1 gets values[1 % 2] = 2, p2 gets 1, p3 gets 2.
        assert_eq!(got[1], vec![(ProcessId::new(0), Toy::Proposal(2))]);
        assert_eq!(got[2], vec![(ProcessId::new(0), Toy::Proposal(1))]);
        assert_eq!(got[3], vec![(ProcessId::new(0), Toy::Proposal(2))]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_equivocation_list_panics() {
        let _: ByzantineActor<Toy> =
            ByzantineActor::new(ByzantineStrategy::Equivocate { values: vec![] });
    }

    #[test]
    fn crash_mid_reaches_only_a_prefix() {
        let got = run(ByzantineStrategy::CrashMid { value: 5, reach: 2 });
        // Recipients p0 (the adversary itself, ignored) and p1 get the
        // proposal; p2, p3 never hear from it.
        assert_eq!(got[1], vec![(ProcessId::new(0), Toy::Proposal(5))]);
        assert!(got[2].is_empty());
        assert!(got[3].is_empty());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(ByzantineStrategy::<u64>::Silent.label(), "silent");
        assert_eq!(
            ByzantineStrategy::ConsistentLie { value: 1u64 }.label(),
            "lie"
        );
        assert_eq!(
            ByzantineStrategy::Equivocate { values: vec![1u64] }.label(),
            "equivocate"
        );
        assert_eq!(
            ByzantineStrategy::EchoPoison { values: vec![1u64] }.label(),
            "echo-poison"
        );
        assert_eq!(
            ByzantineStrategy::CrashMid {
                value: 1u64,
                reach: 2
            }
            .label(),
            "crash-mid"
        );
    }
}
