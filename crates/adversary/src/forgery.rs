//! The protocol-forgery abstraction.

use core::fmt::Debug;
use dex_types::{ProcessId, Value};

/// How to fabricate a protocol's messages, so the generic
/// [`crate::ByzantineActor`] can attack any algorithm.
///
/// Implemented per wire-message type (e.g. for `DexMsg` and `BoscoMsg` in
/// `dex-harness`).
pub trait ProtocolForgery: Clone + Debug + Send + 'static {
    /// The proposal value type.
    type Value: Value;

    /// The messages a process `me` would send to `to` when proposing
    /// `value` — e.g. for DEX both the `P-Send` proposal and the `Id-Send`
    /// init.
    fn forge_proposal(me: ProcessId, to: ProcessId, value: Self::Value) -> Vec<Self>;

    /// Malicious messages to inject towards `to` in *reaction* to an
    /// observed message — e.g. conflicting IDB echoes. The default injects
    /// nothing.
    ///
    /// Implementations must only react to *initiating* messages (proposals,
    /// broadcast inits), never to reaction-type messages, so that two
    /// adversaries cannot ping-pong forever. [`crate::ByzantineActor`]
    /// additionally enforces a hard reaction budget as defence in depth.
    fn forge_reaction(
        _me: ProcessId,
        _observed: &Self,
        _to: ProcessId,
        _value: Self::Value,
    ) -> Vec<Self> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol whose only message is its proposal.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Toy(u64);

    impl ProtocolForgery for Toy {
        type Value = u64;

        fn forge_proposal(_me: ProcessId, _to: ProcessId, value: u64) -> Vec<Self> {
            vec![Toy(value)]
        }
    }

    #[test]
    fn default_reaction_is_empty() {
        let observed = Toy(3);
        let r = Toy::forge_reaction(ProcessId::new(0), &observed, ProcessId::new(1), 9);
        assert!(r.is_empty());
    }

    #[test]
    fn proposal_forgery_builds_messages() {
        let msgs = Toy::forge_proposal(ProcessId::new(0), ProcessId::new(1), 7);
        assert_eq!(msgs, vec![Toy(7)]);
    }
}
