//! **E9 — Theorems 1 & 2**: exhaustive machine-check of the legality
//! criteria LT1/LT2/LA3/LA4/LU5 for both condition-sequence pairs on
//! enumerable instances.
//!
//! ```text
//! cargo run --release -p dex-bench --bin legality_check
//! ```

use dex_bench::emit;
use dex_conditions::{verify, FrequencyPair, PrivilegedPair};
use dex_metrics::Table;
use dex_types::SystemConfig;

fn main() {
    let mut table = Table::new(vec![
        "pair".into(),
        "n".into(),
        "t".into(),
        "|V|".into(),
        "LT1".into(),
        "LT2".into(),
        "LA3".into(),
        "LA4".into(),
        "LU5".into(),
        "verdict".into(),
    ]);

    // Frequency pair (Theorem 1): n > 6t.
    for (n, domain) in [(7usize, 2u64), (7, 3), (8, 2)] {
        let cfg = SystemConfig::new(n, 1).expect("n > 3t");
        let pair = FrequencyPair::new(cfg).expect("n > 6t");
        let values: Vec<u64> = (0..domain).collect();
        let report = verify::check_legality(&pair, n, &values)
            .unwrap_or_else(|v| panic!("Theorem 1 violated: {v:?}"));
        table.row(vec![
            "freq".into(),
            n.to_string(),
            "1".into(),
            domain.to_string(),
            report.lt1_checked.to_string(),
            report.lt2_checked.to_string(),
            report.la3_checked.to_string(),
            report.la4_checked.to_string(),
            report.lu5_checked.to_string(),
            "legal".into(),
        ]);
    }

    // Privileged pair (Theorem 2): n > 5t.
    for (n, domain) in [(6usize, 2u64), (6, 3), (7, 2)] {
        let cfg = SystemConfig::new(n, 1).expect("n > 3t");
        let pair = PrivilegedPair::new(cfg, 1u64).expect("n > 5t");
        let values: Vec<u64> = (0..domain).collect();
        let report = verify::check_legality(&pair, n, &values)
            .unwrap_or_else(|v| panic!("Theorem 2 violated: {v:?}"));
        table.row(vec![
            "prv(m=1)".into(),
            n.to_string(),
            "1".into(),
            domain.to_string(),
            report.lt1_checked.to_string(),
            report.lt2_checked.to_string(),
            report.la3_checked.to_string(),
            report.la4_checked.to_string(),
            report.lu5_checked.to_string(),
            "legal".into(),
        ]);
    }

    emit(
        "legality_check",
        "Exhaustive legality verification (cells = implications checked)",
        &table,
    );
}
