//! Emits `BENCH_broadcast.json`: wire cost of the IDB echo flood with the
//! echo-aggregation layer off vs on.
//!
//! Without aggregation every correct process re-multicasts each Init it
//! delivers as an individual Echo — n² echo multicasts per consensus
//! instance, n³ point-to-point sends. With `--aggregate` each process
//! coalesces all echoes it emits within one delivery tick into a single
//! `EchoBatch` multicast riding the `Dest::All` slab path, so the echo
//! term collapses from n per process per tick to 1.
//!
//! Both columns run the *same* batch spec (same seeds, same workload
//! draws, same fault placement) through [`dex_harness::runner::run_batch`];
//! the only difference is the `aggregate` bit. The metric is *sent
//! messages per decision* and *wire bytes per decision* — deterministic
//! quantities (same spec ⇒ same numbers), so `scripts/bench_check.sh` can
//! assert a hard ≥ 3× message reduction at n = 31 instead of tolerating
//! wall-clock noise. The binary asserts the same gate itself, plus: both
//! columns stay violation-free, the aggregated column sends zero
//! individual echoes, and neither column clones a payload (echo batches
//! must stay on the zero-clone multicast path).
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_broadcast [out.json]`
//! (default output path `BENCH_broadcast.json` in the current directory).

use dex_adversary::ByzantineStrategy;
use dex_harness::runner::{run_batch, Algo, BatchSpec, BatchStats, Placement, UnderlyingKind};
use dex_harness::spec::ChaosSpec;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::BernoulliMix;
use std::time::Instant;

/// System sizes with their fault bounds (largest `t` with `n > 6t`) and
/// per-size run counts. Run counts shrink as `n` grows: the unaggregated
/// n = 127 column moves ~2M sends per run, which is exactly the cost this
/// bench exists to document, not to drown in.
const SIZES: [(usize, usize, usize); 4] = [(7, 1, 24), (13, 2, 16), (31, 5, 8), (127, 21, 2)];
const SEED0: u64 = 42;
const P_COMMON: f64 = 0.8;

struct Column {
    sent_per_decision: f64,
    bytes_per_decision: f64,
    echoes: u64,
    batches: u64,
    echoes_batched: u64,
    clones: u64,
    wall_ms: f64,
}

struct Row {
    n: usize,
    runs: usize,
    off: Column,
    on: Column,
}

impl Row {
    fn msg_ratio(&self) -> f64 {
        self.off.sent_per_decision / self.on.sent_per_decision
    }

    fn byte_ratio(&self) -> f64 {
        self.off.bytes_per_decision / self.on.bytes_per_decision
    }
}

fn column(n: usize, t: usize, runs: usize, aggregate: bool) -> Column {
    let workload = BernoulliMix {
        p: P_COMMON,
        a: 1,
        b: 0,
    };
    let start = Instant::now();
    let stats = run_batch(&BatchSpec {
        config: SystemConfig::new(n, t).expect("n > 6t by construction"),
        algo: Algo::DexFreq,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        f: 0,
        placement: Placement::LastK,
        workload: &workload,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        chaos: ChaosSpec::None,
        aggregate,
        runs,
        seed0: SEED0,
        max_events: 50_000_000,
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(stats.clean(), "n = {n} aggregate = {aggregate}: {stats:?}");
    let decisions = decisions(&stats) as f64;
    Column {
        sent_per_decision: stats.net.sent as f64 / decisions,
        bytes_per_decision: stats.net.bytes_on_wire as f64 / decisions,
        echoes: stats.net.sent_echo,
        batches: stats.net.sent_batch,
        echoes_batched: stats.net.echoes_batched,
        clones: stats.net.payload_clones,
        wall_ms,
    }
}

fn decisions(stats: &BatchStats) -> u64 {
    stats.paths.iter().map(|(_, count)| count).sum()
}

fn measure(n: usize, t: usize, runs: usize) -> Row {
    let off = column(n, t, runs, false);
    let on = column(n, t, runs, true);
    // The echo flood must collapse entirely: every correct-process echo
    // rides a batch, none go out individually, and the batches stay on
    // the zero-clone slab path.
    assert_eq!(on.echoes, 0, "n = {n}: aggregated run sent a bare echo");
    assert!(on.echoes_batched > 0, "n = {n}: no echoes were batched");
    assert_eq!(off.clones + on.clones, 0, "n = {n}: payload clone on wire");
    Row { n, runs, off, on }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_broadcast.json".to_string());

    println!("== Echo aggregation wire cost (sent messages / bytes per decision)\n");
    println!(
        "{:>5} {:>5} {:>11} {:>11} {:>8} {:>12} {:>12} {:>8} {:>9}",
        "n",
        "runs",
        "off msg/dec",
        "on msg/dec",
        "msg ×",
        "off byte/dec",
        "on byte/dec",
        "byte ×",
        "wall ms"
    );
    let rows: Vec<Row> = SIZES.iter().map(|&(n, t, r)| measure(n, t, r)).collect();
    for r in &rows {
        println!(
            "{:>5} {:>5} {:>11.1} {:>11.1} {:>7.2}x {:>12.1} {:>12.1} {:>7.2}x {:>9.1}",
            r.n,
            r.runs,
            r.off.sent_per_decision,
            r.on.sent_per_decision,
            r.msg_ratio(),
            r.off.bytes_per_decision,
            r.on.bytes_per_decision,
            r.byte_ratio(),
            r.off.wall_ms + r.on.wall_ms,
        );
    }

    let at = |n: usize| rows.iter().find(|r| r.n == n).expect("row present");
    // The headline gate: at n = 31 aggregation must cut sent messages per
    // decision by at least 3×, and bytes must drop too (entry framing
    // overhead loses to the n× echo collapse from n = 31 up).
    for n in [31, 127] {
        let r = at(n);
        assert!(
            r.msg_ratio() >= 3.0,
            "n = {n}: message reduction {:.2}x < 3x",
            r.msg_ratio()
        );
        assert!(
            r.byte_ratio() > 1.0,
            "n = {n}: bytes per decision did not drop ({:.2}x)",
            r.byte_ratio()
        );
    }
    println!(
        "\nmessage reduction at n = 31: {:.2}x (gate: ≥ 3x) | at n = 127: {:.2}x",
        at(31).msg_ratio(),
        at(127).msg_ratio()
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"broadcast\",\n");
    json.push_str("  \"unit\": \"sent_messages_per_decision\",\n");
    json.push_str(&format!("  \"seed0\": {SEED0},\n"));
    json.push_str(&format!("  \"p_common\": {P_COMMON},\n"));
    json.push_str(&format!(
        "  \"msg_reduction_n31\": {:.2},\n",
        at(31).msg_ratio()
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"runs\": {}, \"off_msgs_per_decision\": {:.1}, \
             \"on_msgs_per_decision\": {:.1}, \"msg_reduction\": {:.2}, \
             \"off_bytes_per_decision\": {:.1}, \"on_bytes_per_decision\": {:.1}, \
             \"byte_reduction\": {:.2}, \"off_echoes\": {}, \"on_batches\": {}, \
             \"echoes_batched\": {}, \"clones_on_wire\": {}, \"wall_ms\": {:.1}}}{}\n",
            r.n,
            r.runs,
            r.off.sent_per_decision,
            r.on.sent_per_decision,
            r.msg_ratio(),
            r.off.bytes_per_decision,
            r.on.bytes_per_decision,
            r.byte_ratio(),
            r.off.echoes,
            r.on.batches,
            r.on.echoes_batched,
            r.off.clones + r.on.clones,
            r.off.wall_ms + r.on.wall_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("[json written to {out_path}]"),
        Err(e) => {
            eprintln!("[json not written: {e}]");
            std::process::exit(1);
        }
    }
}
