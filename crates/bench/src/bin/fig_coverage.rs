//! **E8 — fast-path coverage** (Table 1 narrative): fraction of uniform and
//! Zipf inputs decided in ≤ 1 and ≤ 2 steps, DEX vs Bosco.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_coverage
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(200);
    for t in [1usize, 2] {
        let table = dex_harness::coverage::run(dex_harness::coverage::Opts {
            t,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("fig_coverage_t{t}"),
            &format!("Fast-path coverage (n = 7t+1, t = {t}, {runs} runs per workload)"),
            &table,
        );
    }
}
