//! **E10 — Lemmas 1–3 under attack**: agreement / unanimity / termination
//! violation counts across the full algorithm × adversary × workload grid.
//! Every count must be zero.
//!
//! ```text
//! cargo run --release -p dex-bench --bin safety_grid
//! DEX_RUNS=200 cargo run --release -p dex-bench --bin safety_grid
//! ```

use dex_adversary::ByzantineStrategy;
use dex_bench::{emit, runs_from_env};
use dex_harness::runner::{run_batch, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_metrics::Table;
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::{BernoulliMix, InputGenerator, Unanimous, UniformRandom};

fn main() {
    let runs = runs_from_env(50);
    let t = 1usize;
    let cfg = SystemConfig::new(7 * t + 1, t).expect("n = 7t + 1");

    let strategies: Vec<(&str, ByzantineStrategy<u64>)> = vec![
        ("silent", ByzantineStrategy::Silent),
        ("lie", ByzantineStrategy::ConsistentLie { value: 0 }),
        (
            "equivocate",
            ByzantineStrategy::Equivocate { values: vec![0, 1] },
        ),
        (
            "echo-poison",
            ByzantineStrategy::EchoPoison { values: vec![0, 1] },
        ),
        (
            "crash-mid",
            ByzantineStrategy::CrashMid { value: 1, reach: 4 },
        ),
    ];
    let workloads: Vec<(&str, Box<dyn InputGenerator + Sync>)> = vec![
        ("unanimous", Box::new(Unanimous { value: 1 })),
        (
            "bernoulli-0.7",
            Box::new(BernoulliMix { p: 0.7, a: 1, b: 0 }),
        ),
        ("uniform-4", Box::new(UniformRandom { domain: 4 })),
    ];
    let algos = [Algo::DexFreq, Algo::DexPrv { m: 1 }, Algo::Bosco];

    let mut table = Table::new(vec![
        "algorithm".into(),
        "adversary".into(),
        "workload".into(),
        "runs".into(),
        "agreement viol.".into(),
        "unanimity viol.".into(),
        "undecided".into(),
        "non-quiescent".into(),
    ]);
    let mut total_violations = 0usize;
    for algo in algos {
        for (sname, strategy) in &strategies {
            for (wname, workload) in &workloads {
                let stats = run_batch(&BatchSpec {
                    chaos: dex_harness::spec::ChaosSpec::None,
                    config: cfg,
                    algo,
                    underlying: UnderlyingKind::Oracle,
                    strategy: strategy.clone(),
                    f: t,
                    placement: Placement::RandomK,
                    workload: workload.as_ref(),
                    delay: DelayModel::Uniform { min: 1, max: 20 },
                    runs,
                    seed0: 2010,
                    max_events: 10_000_000,
                    aggregate: false,
                });
                total_violations += stats.agreement_violations
                    + stats.unanimity_violations
                    + stats.undecided
                    + stats.non_quiescent;
                table.row(vec![
                    algo.label().into(),
                    (*sname).into(),
                    (*wname).into(),
                    stats.runs.to_string(),
                    stats.agreement_violations.to_string(),
                    stats.unanimity_violations.to_string(),
                    stats.undecided.to_string(),
                    stats.non_quiescent.to_string(),
                ]);
            }
        }
    }
    emit(
        "safety_grid",
        &format!(
            "Safety grid (n = {}, t = {t}, f = {t}, {runs} runs per cell)",
            cfg.n()
        ),
        &table,
    );
    assert_eq!(total_violations, 0, "safety violations detected!");
    println!(
        "all {} cells clean — Lemmas 1-3 hold under attack",
        table.len()
    );
}
