//! Emits `BENCH_pipeline.json`: committed-values throughput of the
//! pipelined replication engine at window 1 (sequential chain) vs
//! windows 8 and 32.
//!
//! Each measurement drives one fault-free cluster through
//! [`dex_harness::pipeline::PipelineRun`]: every replica holds the same
//! stream of client batches and the cluster commits a fixed number of log
//! slots, `BATCH` values per slot. The throughput metric is *committed
//! values per kilo-tick of virtual time* — fully deterministic (same
//! spec + seed ⇒ same number), so the regression gate in
//! `scripts/bench_check.sh` can assert a hard speedup ratio (window 8
//! must beat window 1 by ≥ 2× at n = 31) instead of tolerating
//! wall-clock noise. Wall time is reported per row as a secondary,
//! non-gated column.
//!
//! The windows race the *same* slot values: the binary asserts the
//! committed logs are identical across windows (pipelining reorders
//! network traffic, never the log) and that the network layer cloned no
//! payload (all replication traffic rides the `Dest::All` slab path).
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_pipeline [out.json]`
//! (run from the repo root; the default output path is
//! `BENCH_pipeline.json` in the current directory).

use dex_harness::pipeline::{PipelineOutcome, PipelineRun};
use dex_types::SystemConfig;
use std::time::Instant;

/// System sizes with their fault bounds (largest `t` with `n > 6t`) and
/// the slot count each cluster commits. Slot counts shrink as `n` grows
/// to keep the bench bounded (n = 127 moves ~1.6 GB of simulated wire
/// traffic per window); below n = 127 they exceed the largest window so
/// the slot pool actually recycles, while the 16-slot n = 127 row turns
/// the window-32 column into an unbounded-pipelining upper bound.
const SIZES: [(usize, usize, u64); 4] = [(7, 1, 48), (13, 2, 48), (31, 5, 40), (127, 21, 16)];
const WINDOWS: [u64; 3] = [1, 8, 32];
const BATCH: u64 = 4;
const SEED: u64 = 42;

struct Row {
    n: usize,
    slots: u64,
    committed: u64,
    /// `values_per_ktick`, one per entry of [`WINDOWS`].
    vpk: [u64; WINDOWS.len()],
    wall_ms: [f64; WINDOWS.len()],
    clones: u64,
    multicasts: u64,
}

fn measure(n: usize, t: usize, slots: u64) -> Row {
    let config = SystemConfig::new(n, t).expect("n > 6t by construction");
    let mut vpk = [0u64; WINDOWS.len()];
    let mut wall_ms = [0f64; WINDOWS.len()];
    let mut clones = 0;
    let mut multicasts = 0;
    let mut committed = 0;
    let mut reference: Option<PipelineOutcome> = None;
    for (i, &window) in WINDOWS.iter().enumerate() {
        let run = PipelineRun {
            config,
            window,
            batch: BATCH,
            slots,
            seed: SEED,
            aggregate: false,
        };
        let start = Instant::now();
        let outcome = run.execute();
        wall_ms[i] = start.elapsed().as_secs_f64() * 1e3;
        vpk[i] = outcome.values_per_ktick();
        clones += outcome.payload_clones;
        multicasts += outcome.multicasts;
        committed = outcome.committed_values;
        // Pipelining reorders network traffic, never the log: every
        // window must commit the same values into the same slots.
        if let Some(reference) = &reference {
            assert_eq!(
                reference.log, outcome.log,
                "n = {n}: window {window} diverged from the sequential log"
            );
        } else {
            reference = Some(outcome);
        }
    }
    assert_eq!(clones, 0, "n = {n}: network layer cloned a payload");
    Row {
        n,
        slots,
        committed,
        vpk,
        wall_ms,
        clones,
        multicasts,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    println!("== Pipelined replication throughput (committed values per kilo-tick)\n");
    println!(
        "{:>5} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "n", "slots", "committed", "w1 vpk", "w8 vpk", "w32 vpk", "w8 spd", "w32 spd", "wall ms"
    );
    let rows: Vec<Row> = SIZES.iter().map(|&(n, t, s)| measure(n, t, s)).collect();
    for r in &rows {
        println!(
            "{:>5} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8.2}x {:>9.2}x {:>9.1}",
            r.n,
            r.slots,
            r.committed,
            r.vpk[0],
            r.vpk[1],
            r.vpk[2],
            r.vpk[1] as f64 / r.vpk[0] as f64,
            r.vpk[2] as f64 / r.vpk[0] as f64,
            r.wall_ms.iter().sum::<f64>(),
        );
    }
    let min_w8 = rows
        .iter()
        .map(|r| r.vpk[1] as f64 / r.vpk[0] as f64)
        .fold(f64::INFINITY, f64::min);
    println!("\nwindow-8 speedup over sequential: ≥ {min_w8:.2}x (gate: ≥ 2x at n = 31)");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"pipeline\",\n");
    json.push_str("  \"unit\": \"committed_values_per_kilo_tick\",\n");
    json.push_str(&format!("  \"batch\": {BATCH},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"min_w8_speedup\": {min_w8:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"slots\": {}, \"committed_values\": {}, \"w1_vpk\": {}, \
             \"w8_vpk\": {}, \"w32_vpk\": {}, \"w8_speedup\": {:.2}, \"w32_speedup\": {:.2}, \
             \"clones_per_multicast\": {:.2}, \"wall_ms\": {:.1}}}{}\n",
            r.n,
            r.slots,
            r.committed,
            r.vpk[0],
            r.vpk[1],
            r.vpk[2],
            r.vpk[1] as f64 / r.vpk[0] as f64,
            r.vpk[2] as f64 / r.vpk[0] as f64,
            r.clones as f64 / r.multicasts as f64,
            r.wall_ms.iter().sum::<f64>(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("[json written to {out_path}]"),
        Err(e) => {
            eprintln!("[json not written: {e}]");
            std::process::exit(1);
        }
    }
}
