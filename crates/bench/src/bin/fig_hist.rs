//! Step-count distributions per algorithm and contention level, rendered
//! as ASCII histograms — the distributional view behind E6's means.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_hist
//! ```

use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_bench::runs_from_env;
use dex_harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_metrics::Histogram;
use dex_simnet::DelayModel;
use dex_types::{InputVector, SystemConfig};
use dex_workloads::{BernoulliMix, InputGenerator};
use rand::rngs::StdRng;

fn histogram(algo: Algo, p: f64, runs: usize) -> Histogram {
    let cfg = SystemConfig::new(15, 2).expect("15 > 3t");
    let workload = BernoulliMix { p, a: 1, b: 0 };
    let mut h = Histogram::new();
    for i in 0..runs {
        let mut rng = StdRng::seed_from_u64(2010 + i as u64);
        let input: InputVector<u64> = workload.generate(15, &mut rng);
        let r = run_instance(&RunInstance {
            faults: dex_simnet::FaultSchedule::none(),
            config: cfg,
            algo,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan: FaultPlan::none(),
            input,
            delay: DelayModel::Uniform { min: 1, max: 10 },
            seed: 77 + i as u64,
            max_events: 10_000_000,
            aggregate: false,
        });
        assert!(r.quiescent && r.agreement_ok() && r.all_decided());
        for d in r.decided() {
            h.add(d.steps);
        }
    }
    h
}

fn main() {
    let runs = runs_from_env(100);
    for p in [0.95f64, 0.8, 0.6] {
        println!("== step distribution at p(common value) = {p} (n = 15, t = 2, {runs} runs)\n");
        for algo in [Algo::DexFreq, Algo::Bosco, Algo::UnderlyingOnly] {
            let h = histogram(algo, p, runs);
            println!("-- {} (mean {:.2} steps)", algo.label(), h.mean());
            print!("{}", h.render(40));
            println!();
        }
    }
}
