//! **E6 — the 3-vs-4-step trade-off** (§1.2, §5): mean decision steps vs
//! input contention; locates where DEX's bigger fast path beats Bosco's
//! cheaper fallback.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_average
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(100);
    for (t, f) in [(1usize, 0usize), (2, 0), (2, 2)] {
        let table = dex_harness::average_case::run(dex_harness::average_case::Opts {
            t,
            f,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("fig_average_t{t}_f{f}"),
            &format!(
                "Mean steps vs contention (n = 7t+1, t = {t}, f = {f}, {runs} runs per point)"
            ),
            &table,
        );
    }
}
