//! **E7 — complementarity of the frequency and privileged pairs** (§1.2):
//! each pair expedites inputs the other cannot.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_pairs
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(100);
    for t in [1usize, 2] {
        let table = dex_harness::pairs::run(dex_harness::pairs::Opts {
            t,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("fig_pairs_t{t}"),
            &format!("Pair complementarity (n = 6t+1, t = {t}, {runs} runs per point)"),
            &table,
        );
    }
}
