//! **E4 — adaptiveness staircase** (Lemma 4): one-step decisions vs actual
//! fault count `f` and input margin, DEX vs the non-adaptive Bosco.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_adaptive
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(50);
    for t in [1usize, 2] {
        let table = dex_harness::adaptive::run(dex_harness::adaptive::Opts {
            t,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("fig_adaptive_t{t}"),
            &format!("Adaptiveness staircase (n = 6t+1, t = {t}, {runs} runs per cell)"),
            &table,
        );
    }
}
