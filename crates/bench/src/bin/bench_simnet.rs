//! Emits `BENCH_simnet.json`: the legacy eager-clone delivery core vs the
//! shared-payload (slab) fast path of `dex-simnet`.
//!
//! Runs the same broadcast-heavy gossip workload — the communication shape
//! of a DEX round, where every protocol message is a `Dest::All` multicast
//! of a non-trivial payload — through two engines:
//!
//! * **legacy**: a faithful replica of the pre-slab simulator, embedded
//!   below. Broadcasts are expanded eagerly into `n` per-recipient clones
//!   and the payload travels inside every heap entry, so each heap sift
//!   moves the payload too.
//! * **fastpath**: [`dex_simnet::Simulation`] — one slab slot per
//!   multicast, `Copy` heap keys, refcounted release.
//!
//! Reported per system size: ns per delivered message for both engines,
//! their ratio, and payload clones per multicast (the legacy engine pays
//! `n` per broadcast; the fast path must report exactly **0**).
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_simnet [out.json]`
//! (run from the repo root; the default output path is `BENCH_simnet.json`
//! in the current directory).

use dex_simnet::{Actor, Context, DelayModel, Simulation, Time};
use dex_types::{ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const SIZES: [usize; 4] = [7, 13, 43, 127];
/// Payload weight in u64 words (~256 bytes): a proposal plus the view
/// digest a DEX wire message carries — heavy enough that cloning shows up.
const PAYLOAD_WORDS: usize = 32;
/// Rebroadcast budget per process: bounds the gossip cascade so deliveries
/// scale as `n^2 * (1 + BUDGET)` instead of exponentially.
const REBROADCAST_BUDGET: u32 = 4;
const REPS: usize = 5;

/// Global clone counter; both engines run the same payload type, so any
/// copy made anywhere — eager expansion, heap churn, actor code — is
/// observed here.
static CLONES: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct Payload(Vec<u64>);

impl Payload {
    fn fresh(tag: u64) -> Self {
        Payload((0..PAYLOAD_WORDS as u64).map(|i| tag ^ i).collect())
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Payload(self.0.clone())
    }
}

/// The workload actor: broadcast on start, then rebroadcast each received
/// payload until the per-process budget is spent.
struct Gossip {
    budget: u32,
    received: u64,
}

impl Gossip {
    fn new() -> Self {
        Gossip {
            budget: REBROADCAST_BUDGET,
            received: 0,
        }
    }

    fn react(&mut self, msg: &Payload) -> Option<Payload> {
        self.received = self.received.wrapping_add(msg.0[0]);
        if self.budget > 0 {
            self.budget -= 1;
            Some(Payload::fresh(self.received))
        } else {
            None
        }
    }
}

impl Actor for Gossip {
    type Msg = Payload;

    fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
        ctx.broadcast(Payload::fresh(ctx.me().index() as u64));
    }

    fn on_message(&mut self, _from: ProcessId, msg: &Payload, ctx: &mut Context<'_, Payload>) {
        if let Some(reply) = self.react(msg) {
            ctx.broadcast(reply);
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy engine: the pre-slab delivery core, reproduced verbatim in shape.
// Broadcast expansion clones the payload per recipient at *send* time and
// every heap entry carries its payload.

struct LegacyEntry {
    deliver_at: Time,
    seq: u64,
    /// Unused by the workload but kept so the entry matches the pre-slab
    /// heap layout byte for byte — entry weight is what is being measured.
    #[allow(dead_code)]
    from: ProcessId,
    to: ProcessId,
    depth: StepDepth,
    payload: Payload,
}

impl PartialEq for LegacyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for LegacyEntry {}
impl PartialOrd for LegacyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LegacyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

struct LegacySim {
    actors: Vec<Gossip>,
    queue: BinaryHeap<Reverse<LegacyEntry>>,
    now: Time,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    multicasts: u64,
}

impl LegacySim {
    fn new(n: usize, seed: u64, delay: DelayModel) -> Self {
        LegacySim {
            actors: (0..n).map(|_| Gossip::new()).collect(),
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            delay,
            multicasts: 0,
        }
    }

    /// Eager expansion: one clone per recipient, pushed straight onto the
    /// delivery heap — the pre-slab `Context::broadcast` semantics.
    fn broadcast(&mut self, from: ProcessId, depth: StepDepth, payload: Payload) {
        self.multicasts += 1;
        let n = self.actors.len();
        for i in 0..n {
            let to = ProcessId::new(i);
            let delay = self.delay.sample(&mut self.rng, from, to);
            self.seq += 1;
            self.queue.push(Reverse(LegacyEntry {
                deliver_at: self.now + delay,
                seq: self.seq,
                from,
                to,
                depth,
                payload: payload.clone(),
            }));
        }
    }

    /// Runs the gossip workload to quiescence; returns deliveries.
    fn run(&mut self) -> u64 {
        let n = self.actors.len();
        for i in 0..n {
            let p = Payload::fresh(i as u64);
            self.broadcast(ProcessId::new(i), StepDepth::ONE, p);
        }
        let mut delivered = 0;
        while let Some(Reverse(entry)) = self.queue.pop() {
            self.now = entry.deliver_at;
            delivered += 1;
            let reply = self.actors[entry.to.index()].react(&entry.payload);
            if let Some(p) = reply {
                self.broadcast(entry.to, entry.depth.next(), p);
            }
        }
        delivered
    }
}

// ---------------------------------------------------------------------------

struct Engine {
    ns_per_delivery: f64,
    delivered: u64,
    multicasts: u64,
    clones: u64,
}

impl Engine {
    fn clones_per_multicast(&self) -> f64 {
        self.clones as f64 / self.multicasts as f64
    }
}

fn best_of<F: FnMut() -> (u64, u64, u64)>(mut run: F) -> Engine {
    let mut best = f64::INFINITY;
    let (mut delivered, mut multicasts, mut clones) = (0, 0, 0);
    for _ in 0..REPS {
        let start = Instant::now();
        let (d, m, c) = run();
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(d);
        best = best.min(elapsed / d as f64);
        (delivered, multicasts, clones) = (d, m, c);
    }
    Engine {
        ns_per_delivery: best,
        delivered,
        multicasts,
        clones,
    }
}

fn measure(n: usize) -> (Engine, Engine) {
    let delay = DelayModel::Uniform { min: 1, max: 20 };
    let legacy = best_of(|| {
        let before = CLONES.load(Ordering::Relaxed);
        let mut sim = LegacySim::new(n, 42, delay.clone());
        let delivered = sim.run();
        let clones = CLONES.load(Ordering::Relaxed) - before;
        (delivered, sim.multicasts, clones)
    });
    let fastpath = best_of(|| {
        let before = CLONES.load(Ordering::Relaxed);
        let mut sim = Simulation::builder((0..n).map(|_| Gossip::new()).collect())
            .seed(42)
            .delay(delay.clone())
            .build();
        let out = sim.run(u64::MAX);
        assert!(out.quiescent);
        let stats = sim.stats();
        assert_eq!(
            stats.payload_clones, 0,
            "network-level clones on the fast path"
        );
        let clones = CLONES.load(Ordering::Relaxed) - before;
        (out.delivered, stats.multicasts, clones)
    });
    // Same workload, same budget: both engines must do identical logical work.
    assert_eq!(legacy.delivered, fastpath.delivered, "n = {n}");
    assert_eq!(legacy.multicasts, fastpath.multicasts, "n = {n}");
    (legacy, fastpath)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_simnet.json".to_string());

    println!("== Simnet delivery-core benchmark (ns/delivered message, best of {REPS})\n");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "n", "delivered", "legacy", "fastpath", "speedup", "legacy cl/mc", "fast cl/mc"
    );
    let rows: Vec<(usize, Engine, Engine)> = SIZES
        .iter()
        .map(|&n| {
            let (l, f) = measure(n);
            (n, l, f)
        })
        .collect();
    for (n, l, f) in &rows {
        println!(
            "{:>5} {:>10} {:>12.1} {:>12.1} {:>8.2}x {:>14.2} {:>14.2}",
            n,
            l.delivered,
            l.ns_per_delivery,
            f.ns_per_delivery,
            l.ns_per_delivery / f.ns_per_delivery,
            l.clones_per_multicast(),
            f.clones_per_multicast(),
        );
    }
    let min_speedup = rows
        .iter()
        .map(|(_, l, f)| l.ns_per_delivery / f.ns_per_delivery)
        .fold(f64::INFINITY, f64::min);
    let max_speedup = rows
        .iter()
        .map(|(_, l, f)| l.ns_per_delivery / f.ns_per_delivery)
        .fold(0.0, f64::max);
    println!("\ndelivery speedup: {min_speedup:.2}x – {max_speedup:.2}x (target ≥ 1.5x at n ≥ 43)");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"simnet\",\n");
    json.push_str("  \"unit\": \"ns_per_delivered_message\",\n");
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"payload_bytes\": {},\n", PAYLOAD_WORDS * 8));
    json.push_str(&format!("  \"min_speedup\": {min_speedup:.2},\n"));
    json.push_str(&format!("  \"max_speedup\": {max_speedup:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (n, l, f)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"delivered\": {}, \"legacy_ns\": {:.2}, \"fastpath_ns\": {:.2}, \
             \"speedup\": {:.2}, \"legacy_clones_per_multicast\": {:.2}, \
             \"fastpath_clones_per_multicast\": {:.2}}}{}\n",
            n,
            l.delivered,
            l.ns_per_delivery,
            f.ns_per_delivery,
            l.ns_per_delivery / f.ns_per_delivery,
            l.clones_per_multicast(),
            f.clones_per_multicast(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("[json written to {out_path}]"),
        Err(e) => {
            eprintln!("[json not written: {e}]");
            std::process::exit(1);
        }
    }
}
