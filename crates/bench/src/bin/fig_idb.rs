//! **E3 — Figs. 2 & 3**: Identical Broadcast properties under adversaries,
//! and the exact two-step cost in well-behaved runs.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_idb
//! ```

use dex_bench::{emit, runs_from_env};
use dex_harness::idb;
use dex_metrics::Table;
use dex_types::SystemConfig;

fn main() {
    let runs = runs_from_env(50);
    let table = idb::run(runs, 2010);
    emit(
        "fig_idb",
        &format!("IDB agreement/termination grid ({runs} runs per cell)"),
        &table,
    );

    // Fig. 3's cost claim, isolated: lockstep runs must deliver at exactly
    // two point-to-point steps.
    let mut cost = Table::new(vec![
        "n".into(),
        "t".into(),
        "deliveries".into(),
        "deliveries deeper than 2 steps".into(),
    ]);
    for t in 1..=2 {
        for n in [4 * t + 1, 6 * t + 1] {
            let cfg = SystemConfig::new(n, t).expect("n > 4t");
            let s = idb::measure_lockstep(cfg, runs, 99);
            cost.row(vec![
                n.to_string(),
                t.to_string(),
                s.deliveries.to_string(),
                s.deeper_than_two.to_string(),
            ]);
        }
    }
    emit(
        "fig_idb_cost",
        "IDB step cost in well-behaved (lockstep) runs — Fig. 3's 2-step claim",
        &cost,
    );
}
