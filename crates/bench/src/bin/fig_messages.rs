//! **E11 — message complexity**: delivered messages per consensus instance
//! across algorithms and system sizes; the price of the two-step channel.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_messages
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(20);
    let table = dex_harness::messages::run(dex_harness::messages::Opts { runs, seed0: 2010 });
    emit(
        "fig_messages",
        &format!("Message complexity per consensus instance ({runs} runs per point)"),
        &table,
    );
}
