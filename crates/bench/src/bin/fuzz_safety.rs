//! Randomized safety fuzzer: samples configurations, inputs, adversaries,
//! schedules and chaos fault-schedules at random and checks Lemmas 1–3 on
//! every run. Any violation aborts with the reproducer spec printed.
//!
//! Chaos is sampled from the eventually-clean family only (healing
//! partitions, recovering crashes, duplication, drops confined to links
//! touching Byzantine processes), so termination stays assertable and the
//! fuzzer can keep requiring `all_decided` on every run.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fuzz_safety            # 500 runs
//! DEX_RUNS=5000 cargo run --release -p dex-bench --bin fuzz_safety
//! ```

use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_bench::runs_from_env;
use dex_harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_harness::spec::ChaosSpec;
use dex_simnet::DelayModel;
use dex_types::{InputVector, SystemConfig};
use rand::rngs::StdRng;

fn random_spec(rng: &mut StdRng) -> RunInstance {
    let t = rng.random_range(1..=2usize);
    let (algo, n) = match rng.random_range(0..4u8) {
        0 => (Algo::DexFreq, 6 * t + 1 + rng.random_range(0..3usize)),
        1 => (
            Algo::DexPrv { m: 1 },
            5 * t + 1 + rng.random_range(0..3usize),
        ),
        2 => (Algo::Bosco, 5 * t + 1 + rng.random_range(0..3usize)),
        _ => (Algo::UnderlyingOnly, 5 * t + 1),
    };
    let config = SystemConfig::new(n, t).expect("valid by construction");
    let f = rng.random_range(0..=t);
    let domain = rng.random_range(2..5u64);
    let entries: Vec<u64> = (0..n).map(|_| rng.random_range(0..domain)).collect();
    let strategy = match rng.random_range(0..5u8) {
        0 => ByzantineStrategy::Silent,
        1 => ByzantineStrategy::ConsistentLie {
            value: rng.random_range(0..domain),
        },
        2 => ByzantineStrategy::Equivocate {
            values: vec![rng.random_range(0..domain), rng.random_range(0..domain)],
        },
        3 => ByzantineStrategy::EchoPoison {
            values: vec![rng.random_range(0..domain), rng.random_range(0..domain)],
        },
        _ => ByzantineStrategy::CrashMid {
            value: rng.random_range(0..domain),
            reach: rng.random_range(0..n),
        },
    };
    let delay = match rng.random_range(0..3u8) {
        0 => DelayModel::Constant(rng.random_range(1..5)),
        1 => DelayModel::Uniform {
            min: 1,
            max: rng.random_range(2..30),
        },
        _ => DelayModel::Exponential {
            mean: rng.random_range(2..20),
        },
    };
    let fault_plan = FaultPlan::random_k(config, f, rng);
    let chaos = match rng.random_range(0..5u8) {
        0 => ChaosSpec::None,
        1 => ChaosSpec::DropHeavy {
            p: rng.random_range(0.1..0.6),
        },
        2 => ChaosSpec::DupHeavy {
            p: rng.random_range(0.05..0.5),
        },
        3 => {
            let open = rng.random_range(0..20u64);
            ChaosSpec::PartitionHeal {
                open,
                heal: open + rng.random_range(10..150u64),
            }
        }
        _ => {
            let down = rng.random_range(1..10u64);
            ChaosSpec::CrashRecover {
                down,
                up: down + rng.random_range(10..120u64),
            }
        }
    };
    RunInstance {
        faults: chaos.build(config, &fault_plan),
        config,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy,
        fault_plan,
        input: InputVector::new(entries),
        delay,
        seed: rng.random(),
        max_events: 20_000_000,
        aggregate: false,
    }
}

fn main() {
    let budget = runs_from_env(500);
    let fuzz_seed: u64 = std::env::var("DEX_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF022);
    let mut rng = StdRng::seed_from_u64(fuzz_seed);
    let started = std::time::Instant::now();
    for i in 0..budget {
        let spec = random_spec(&mut rng);
        let result = run_instance(&spec);
        let ok = result.quiescent
            && result.agreement_ok()
            && result.all_decided()
            && result.unanimity_ok(&spec.input, &spec.fault_plan);
        if !ok {
            eprintln!(
                "SAFETY VIOLATION at iteration {i}!\nreproducer: {spec:#?}\nresult: {result:#?}"
            );
            std::process::exit(1);
        }
        if (i + 1) % 100 == 0 {
            println!(
                "{} runs clean ({:.0} runs/s)",
                i + 1,
                (i + 1) as f64 / started.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "fuzzed {budget} random configurations in {:.1}s — no violations (seed {fuzz_seed:#x})",
        started.elapsed().as_secs_f64()
    );
}
