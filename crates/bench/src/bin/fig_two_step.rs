//! **E5 — double expedition** (Lemma 5): the conditional two-step channel
//! across the margin sweep, vs Bosco's mandatory 3-step fallback.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_two_step
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(50);
    for t in [1usize, 2] {
        let table = dex_harness::double_expedition::run(dex_harness::double_expedition::Opts {
            t,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("fig_two_step_t{t}"),
            &format!("Double-expedition margin sweep (n = 6t+1, t = {t}, {runs} runs per cell)"),
            &table,
        );
    }
}
