//! Emits `BENCH_view_tally.json`: the naive O(n) recount vs the O(1)
//! incremental tally on the per-message predicate queries.
//!
//! Measures, for each system size `n`, the cost of one "predicate read"
//! (`1st`, `2nd`, `margin(J)`, `#v(J)` — everything `P1`/`P2` consume per
//! delivered message) under both implementations, plus a full delivery
//! sweep (`set` + predicate read per entry). Uses `std::time::Instant`
//! directly so the binary has no bench-framework dependency.
//!
//! Usage: `cargo run --release -p dex-bench --bin bench_view_tally [out.json]`
//! (run from the repo root; the default output path is
//! `BENCH_view_tally.json` in the current directory).

use dex_bench::naive;
use dex_types::{ProcessId, View};
use rand::rngs::StdRng;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [7, 13, 43, 127];
const DOMAIN: u64 = 4;
const REPS: usize = 5;

fn random_view(n: usize, seed: u64) -> View<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = (0..n)
        .map(|i| (i >= n / 8).then(|| rng.random_range(0..DOMAIN)))
        .collect();
    View::from_options(entries)
}

/// Nanoseconds per call: calibrates the iteration count to ~20 ms of work,
/// then takes the best of [`REPS`] timed repetitions (minimum is the right
/// statistic for a noisy shared machine — it bounds the true cost).
fn time_ns<F: FnMut() -> u64>(mut f: F) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(f());
        }
        black_box(acc);
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 20 || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(f());
        }
        black_box(acc);
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// One predicate read via the incremental tally (all O(1) lookups).
fn tally_read(view: &View<u64>) -> u64 {
    let (v1, c1) = view.first_with_count().map_or((0, 0), |(v, c)| (*v, c));
    let c2 = view.second_with_count().map_or(0, |(_, c)| c);
    v1 + (c1 + c2 + view.frequency_margin() + view.count_of(&1) + view.len_non_default()) as u64
}

/// The same read with every statistic recomputed from scratch.
fn naive_read(view: &View<u64>) -> u64 {
    let (first, second) = naive::first_second(view);
    let (v1, c1) = first.map_or((0, 0), |(v, c)| (v, c));
    let c2 = second.map_or(0, |(_, c)| c);
    let len = view.as_options().iter().flatten().count();
    v1 + (c1 + c2 + naive::frequency_margin(view) + naive::count_of(view, &1) + len) as u64
}

struct Row {
    n: usize,
    read_naive: f64,
    read_tally: f64,
    sweep_naive: f64,
    sweep_tally: f64,
}

impl Row {
    fn read_speedup(&self) -> f64 {
        self.read_naive / self.read_tally
    }
    fn sweep_speedup(&self) -> f64 {
        self.sweep_naive / self.sweep_tally
    }
}

fn measure(n: usize) -> Row {
    let view = random_view(n, 42);
    let read_tally = time_ns(|| tally_read(black_box(&view)));
    let read_naive = time_ns(|| naive_read(black_box(&view)));
    // Delivery sweep: write one entry, then evaluate the predicates — the
    // actual shape of the DEX per-message hot path.
    let mut sweep_view = view.clone();
    let mut i = 0usize;
    let sweep_tally = time_ns(|| {
        i = (i + 1) % n;
        sweep_view.set(ProcessId::new(i), i as u64 % DOMAIN);
        tally_read(&sweep_view)
    });
    let mut sweep_view = view.clone();
    let mut i = 0usize;
    let sweep_naive = time_ns(|| {
        i = (i + 1) % n;
        sweep_view.set(ProcessId::new(i), i as u64 % DOMAIN);
        naive_read(&sweep_view)
    });
    Row {
        n,
        read_naive,
        read_tally,
        sweep_naive,
        sweep_tally,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_view_tally.json".to_string());

    println!("== View tally microbenchmark (ns/op, best of {REPS})\n");
    println!(
        "{:>5} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "n", "read naive", "read tally", "speedup", "sweep naive", "sweep tally", "speedup"
    );
    let rows: Vec<Row> = SIZES.iter().map(|&n| measure(n)).collect();
    for r in &rows {
        println!(
            "{:>5} {:>12.1} {:>12.1} {:>8.1}x {:>12.1} {:>12.1} {:>8.1}x",
            r.n,
            r.read_naive,
            r.read_tally,
            r.read_speedup(),
            r.sweep_naive,
            r.sweep_tally,
            r.sweep_speedup()
        );
    }
    let min_read = rows
        .iter()
        .map(Row::read_speedup)
        .fold(f64::INFINITY, f64::min);
    let max_read = rows.iter().map(Row::read_speedup).fold(0.0, f64::max);
    println!("\npredicate-read speedup: {min_read:.1}x – {max_read:.1}x (target ≥ 10x at large n)");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"view_tally\",\n");
    json.push_str("  \"unit\": \"ns_per_op\",\n");
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"max_read_speedup\": {max_read:.2},\n"));
    json.push_str(&format!("  \"min_read_speedup\": {min_read:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"read_naive_ns\": {:.2}, \"read_tally_ns\": {:.2}, \
             \"read_speedup\": {:.2}, \"sweep_naive_ns\": {:.2}, \"sweep_tally_ns\": {:.2}, \
             \"sweep_speedup\": {:.2}}}{}\n",
            r.n,
            r.read_naive,
            r.read_tally,
            r.read_speedup(),
            r.sweep_naive,
            r.sweep_tally,
            r.sweep_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("[json written to {out_path}]"),
        Err(e) => {
            eprintln!("[json not written: {e}]");
            std::process::exit(1);
        }
    }
}
