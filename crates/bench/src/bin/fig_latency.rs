//! **E12 — decision latency in time units**: step counts translated to
//! virtual time under lockstep, uniform and heavy-tailed networks.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_latency
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(100);
    let table = dex_harness::latency::run(dex_harness::latency::Opts {
        t: 1,
        runs,
        seed0: 2010,
    });
    emit(
        "fig_latency",
        &format!("Decision latency by network regime ({runs} runs per point)"),
        &table,
    );
}
