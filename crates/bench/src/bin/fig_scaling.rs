//! **E13 — scaling sweep**: fast-path coverage and message cost as the
//! system grows at fixed `t` — the expedition thresholds depend on `t`,
//! not `n`.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig_scaling
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(50);
    for (t, p) in [(1usize, 0.8f64), (2, 0.8)] {
        let table = dex_harness::scaling::run(dex_harness::scaling::Opts {
            t,
            p,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("fig_scaling_t{t}"),
            &format!("Scaling sweep (t = {t}, p = {p}, {runs} runs per size)"),
            &table,
        );
    }
}
