//! **E1 — regenerates Table 1** of the paper: feasibility of one-step and
//! two-step decision per algorithm and resilience level.
//!
//! ```text
//! cargo run --release -p dex-bench --bin table1
//! DEX_RUNS=500 cargo run --release -p dex-bench --bin table1
//! ```

use dex_bench::{emit, runs_from_env};

fn main() {
    let runs = runs_from_env(100);
    for t in [1usize, 2] {
        let table = dex_harness::table1::run(dex_harness::table1::Opts {
            t,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("table1_t{t}"),
            &format!("Table 1 (empirical), t = {t}, {runs} runs per cell"),
            &table,
        );
    }
    for t in [1usize, 2] {
        let crash = dex_harness::crash_rows::run(dex_harness::crash_rows::Opts {
            t,
            runs,
            seed0: 2010,
        });
        emit(
            &format!("table1_crash_t{t}"),
            &format!("Table 1 crash-model rows (n = 3t+1, t = {t}, {runs} runs per cell)"),
            &crash,
        );
    }
    println!(
        "The remaining crash row (Mostefaoui et al., synchronous, t+1 processes) assumes\n\
         a synchronous system and is cited analytically — see EXPERIMENTS.md §E1."
    );
}
