//! **E2 — Fig. 1 semantics**: an annotated execution trace of one DEX run
//! per input class, plus a decision-path census.
//!
//! ```text
//! cargo run --release -p dex-bench --bin fig1_trace
//! ```

use dex_bench::{emit, runs_from_env};
use dex_harness::trace;
use dex_types::InputVector;

fn main() {
    let runs = runs_from_env(200);

    println!("== One-step run (unanimous input)\n");
    println!(
        "{}",
        trace::annotated_run(InputVector::unanimous(7, 5), 1, 1)
    );

    println!("== Two-step run (margin 3: in C2 \\ C1)\n");
    println!(
        "{}",
        trace::annotated_run(InputVector::new(vec![5, 5, 5, 5, 5, 9, 9]), 1, 2)
    );

    println!("== Fallback run (margin 1: outside both conditions)\n");
    println!(
        "{}",
        trace::annotated_run(InputVector::new(vec![5, 5, 5, 5, 9, 9, 9]), 1, 3)
    );

    let census = trace::path_census(1, runs, 2010);
    emit(
        "fig1_census",
        &format!("Decision-path census per input class ({runs} runs each)"),
        &census,
    );
}
