//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper (see
//! `DESIGN.md` §4 and `EXPERIMENTS.md`): it prints the plain-text table to
//! stdout and writes a CSV next to it under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dex_metrics::Table;
use std::path::PathBuf;

/// From-scratch view statistics — the pre-tally implementation of the §3.1
/// queries, kept as the baseline for `benches/view_ops.rs` and the
/// `bench_view_tally` binary. Each call rebuilds a histogram by scanning all
/// `n` entries (one `HashMap` allocation per call), which is exactly what
/// the per-message hot path paid before `View` maintained its tally
/// incrementally.
pub mod naive {
    use dex_types::{Value, View};
    use std::collections::HashMap;

    /// A value with its occurrence count, as returned by [`first_second`].
    pub type Ranked<V> = Option<(V, usize)>;

    /// `(1st(J), 2nd(J))` with occurrence counts, recomputed from scratch.
    /// Ties break towards the largest value (§3.3), matching `View`.
    pub fn first_second<V: Value>(view: &View<V>) -> (Ranked<V>, Ranked<V>) {
        let mut counts: HashMap<&V, usize> = HashMap::new();
        for v in view.as_options().iter().flatten() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut first: Option<(&V, usize)> = None;
        let mut second: Option<(&V, usize)> = None;
        for (v, c) in counts {
            let beats = |other: Option<(&V, usize)>| {
                other.is_none_or(|(ov, oc)| c > oc || (c == oc && *v > *ov))
            };
            if beats(first) {
                second = first;
                first = Some((v, c));
            } else if beats(second) {
                second = Some((v, c));
            }
        }
        (
            first.map(|(v, c)| (v.clone(), c)),
            second.map(|(v, c)| (v.clone(), c)),
        )
    }

    /// `margin(J)`, recomputed from scratch.
    pub fn frequency_margin<V: Value>(view: &View<V>) -> usize {
        match first_second(view) {
            (Some((_, c1)), Some((_, c2))) => c1 - c2,
            (Some((_, c1)), None) => c1,
            _ => 0,
        }
    }

    /// `#v(J)`, recomputed by scanning the entries.
    pub fn count_of<V: Value>(view: &View<V>, v: &V) -> usize {
        view.as_options()
            .iter()
            .flatten()
            .filter(|x| *x == v)
            .count()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use dex_types::ProcessId;

        #[test]
        fn naive_matches_tally() {
            let mut view: View<u64> = View::bottom(9);
            for (i, v) in [(0, 3), (1, 1), (2, 3), (3, 2), (4, 1), (5, 3)] {
                view.set(ProcessId::new(i), v);
            }
            let (first, second) = first_second(&view);
            assert_eq!(first, view.first_with_count().map(|(v, c)| (*v, c)));
            assert_eq!(second, view.second_with_count().map(|(v, c)| (*v, c)));
            assert_eq!(frequency_margin(&view), view.frequency_margin());
            for v in 0..4 {
                assert_eq!(count_of(&view, &v), view.count_of(&v));
            }
        }
    }
}

/// Number of runs per experiment point: `DEX_RUNS` env var, or the default.
pub fn runs_from_env(default: usize) -> usize {
    std::env::var("DEX_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a table under a heading and writes its CSV to
/// `results/<name>.csv` (directory created on demand).
pub fn emit(name: &str, heading: &str, table: &Table) {
    println!("== {heading}\n");
    println!("{}", table.render());
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => println!("[csv written to {}]\n", path.display()),
            Err(e) => eprintln!("[csv not written: {e}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_from_env_parses_or_defaults() {
        // The env var is unset in tests.
        assert_eq!(runs_from_env(42), 42);
    }

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        let tmp = std::env::temp_dir().join("dex-bench-emit-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        emit("emit_test", "Emit test", &t);
        std::env::set_current_dir(old).unwrap();
        let written = std::fs::read_to_string(tmp.join("results/emit_test.csv")).unwrap();
        assert!(written.starts_with("a\n"));
    }
}
