//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper (see
//! `DESIGN.md` §4 and `EXPERIMENTS.md`): it prints the plain-text table to
//! stdout and writes a CSV next to it under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dex_metrics::Table;
use std::path::PathBuf;

/// Number of runs per experiment point: `DEX_RUNS` env var, or the default.
pub fn runs_from_env(default: usize) -> usize {
    std::env::var("DEX_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a table under a heading and writes its CSV to
/// `results/<name>.csv` (directory created on demand).
pub fn emit(name: &str, heading: &str, table: &Table) {
    println!("== {heading}\n");
    println!("{}", table.render());
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => println!("[csv written to {}]\n", path.display()),
            Err(e) => eprintln!("[csv not written: {e}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_from_env_parses_or_defaults() {
        // The env var is unset in tests.
        assert_eq!(runs_from_env(42), 42);
    }

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        let tmp = std::env::temp_dir().join("dex-bench-emit-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        emit("emit_test", "Emit test", &t);
        std::env::set_current_dir(old).unwrap();
        let written = std::fs::read_to_string(tmp.join("results/emit_test.csv")).unwrap();
        assert!(written.starts_with("a\n"));
    }
}
