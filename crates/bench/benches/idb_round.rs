//! Cost of one full Identical Broadcast round (all `n` processes
//! broadcasting concurrently) over the discrete-event simulator, as the
//! system grows — the wall-clock price of the 2-step channel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_harness::idb::{measure, IdbAdversary};
use dex_types::SystemConfig;
use std::hint::black_box;

fn bench_idb_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("idb_round");
    group.sample_size(20);
    for (n, t) in [(5usize, 1usize), (9, 2), (13, 3), (21, 5)] {
        let cfg = SystemConfig::new(n, t).expect("n > 4t");
        group.bench_with_input(BenchmarkId::new("all_correct", n), &cfg, |b, cfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(measure(*cfg, IdbAdversary::None, 1, seed))
            })
        });
        group.bench_with_input(BenchmarkId::new("equivocators", n), &cfg, |b, cfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(measure(*cfg, IdbAdversary::Equivocate, 1, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_idb_round);
criterion_main!(benches);
