//! Full DEX runs through each decision path: one-step, two-step, and the
//! 4-step fallback. The wall-clock gap between paths is the simulated
//! counterpart of the paper's step-count argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_simnet::DelayModel;
use dex_types::{InputVector, SystemConfig};
use std::hint::black_box;

fn spec(input: InputVector<u64>, seed: u64) -> RunInstance {
    RunInstance {
        faults: dex_simnet::FaultSchedule::none(),
        config: SystemConfig::new(7, 1).expect("7 > 3"),
        algo: Algo::DexFreq,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        fault_plan: FaultPlan::none(),
        input,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        seed,
        max_events: 5_000_000,
        aggregate: false,
    }
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_paths");
    let cases = [
        ("one_step", InputVector::unanimous(7, 1)),
        ("two_step", InputVector::new(vec![1, 1, 1, 1, 1, 0, 0])),
        ("fallback", InputVector::new(vec![1, 1, 1, 1, 0, 0, 0])),
    ];
    for (name, input) in cases {
        group.bench_with_input(BenchmarkId::new("dex_freq", name), &input, |b, input| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_instance(&spec(input.clone(), seed)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
