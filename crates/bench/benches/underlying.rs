//! Oracle vs the real randomized stack as DEX's fallback engine — the cost
//! of dropping the trusted-coordinator abstraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_simnet::DelayModel;
use dex_types::{InputVector, SystemConfig};
use std::hint::black_box;

fn bench_underlying(c: &mut Criterion) {
    let mut group = c.benchmark_group("underlying");
    group.sample_size(20);
    // Fallback-forcing input: margin 1.
    let input = InputVector::new(vec![1u64, 1, 1, 1, 0, 0, 0]);
    for (name, underlying) in [
        ("oracle", UnderlyingKind::Oracle),
        ("mvc", UnderlyingKind::Mvc { coin_seed: 7 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("dex_fallback", name),
            &underlying,
            |b, underlying| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let r = run_instance(&RunInstance {
                        faults: dex_simnet::FaultSchedule::none(),
                        config: SystemConfig::new(7, 1).expect("7 > 3"),
                        algo: Algo::DexFreq,
                        underlying: *underlying,
                        strategy: ByzantineStrategy::Silent,
                        fault_plan: FaultPlan::none(),
                        input: input.clone(),
                        delay: DelayModel::Uniform { min: 1, max: 10 },
                        seed,
                        max_events: 20_000_000,
                        aggregate: false,
                    });
                    assert!(r.agreement_ok());
                    black_box(r)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_underlying);
criterion_main!(benches);
