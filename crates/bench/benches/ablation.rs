//! Ablations of design choices called out in `DESIGN.md` §6:
//!
//! * **coin mode** — common-coin abstraction vs purely local coins in the
//!   randomized underlying consensus (binary, forced disagreement);
//! * **network regime** — lockstep vs jittered vs heavy-tailed delays for a
//!   full DEX fallback run (how much the 4-step figure costs in time under
//!   increasingly hostile asynchrony).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_adversary::{ByzantineStrategy, FaultPlan};
use dex_harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex_simnet::{Actor, Context, DelayModel, Simulation};
use dex_types::{InputVector, ProcessId, SystemConfig};
use dex_underlying::{BrachaBinary, CoinMode, Outbox, UnderlyingConsensus};
use std::hint::black_box;

/// Minimal actor for bare binary consensus.
struct BinActor {
    bin: BrachaBinary,
    proposal: bool,
}

impl Actor for BinActor {
    type Msg = dex_underlying::BinaryMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        self.bin.propose(self.proposal, ctx.rng(), &mut out);
        for (dest, m) in out.drain() {
            ctx.send_dest(dest, m);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        self.bin.on_message(from, msg, ctx.rng(), &mut out);
        for (dest, m) in out.drain() {
            ctx.send_dest(dest, m);
        }
    }
}

fn run_binary(coin: CoinMode, seed: u64) -> bool {
    let cfg = SystemConfig::new(6, 1).expect("6 > 5t");
    let actors: Vec<BinActor> = (0..6)
        .map(|i| BinActor {
            bin: BrachaBinary::new(cfg, ProcessId::new(i), coin),
            proposal: i % 2 == 0, // forced disagreement
        })
        .collect();
    let mut sim = Simulation::builder(actors)
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build();
    let out = sim.run(50_000_000);
    assert!(out.quiescent);
    sim.actors().iter().all(|a| a.bin.decision().is_some())
}

fn bench_coin_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coin");
    group.sample_size(10);
    for (name, coin) in [
        ("common", CoinMode::Common { seed: 3 }),
        ("local", CoinMode::Local),
    ] {
        group.bench_with_input(BenchmarkId::new("binary_split", name), &coin, |b, coin| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_binary(*coin, seed))
            })
        });
    }
    group.finish();
}

fn bench_network_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_network");
    group.sample_size(20);
    let input = InputVector::new(vec![1u64, 1, 1, 1, 0, 0, 0]); // fallback path
    let regimes = [
        ("lockstep", DelayModel::Constant(1)),
        ("jitter", DelayModel::Uniform { min: 1, max: 20 }),
        ("heavy_tail", DelayModel::Exponential { mean: 10 }),
    ];
    for (name, delay) in regimes {
        group.bench_with_input(
            BenchmarkId::new("dex_fallback", name),
            &delay,
            |b, delay| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(run_instance(&RunInstance {
                        faults: dex_simnet::FaultSchedule::none(),
                        config: SystemConfig::new(7, 1).expect("7 > 3"),
                        algo: Algo::DexFreq,
                        underlying: UnderlyingKind::Oracle,
                        strategy: ByzantineStrategy::Silent,
                        fault_plan: FaultPlan::none(),
                        input: input.clone(),
                        delay: delay.clone(),
                        seed,
                        max_events: 5_000_000,
                        aggregate: false,
                    }))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coin_modes, bench_network_regimes);
criterion_main!(benches);
