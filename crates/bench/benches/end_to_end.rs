//! End-to-end algorithm comparison on the motivating workload: Zipf-skewed
//! replicated-state-machine request contention, full simulation runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_adversary::ByzantineStrategy;
use dex_harness::runner::{run_batch, Algo, BatchSpec, Placement, UnderlyingKind};
use dex_simnet::DelayModel;
use dex_types::SystemConfig;
use dex_workloads::ZipfRequests;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let cfg = SystemConfig::new(8, 1).expect("8 > 3");
    let workload = ZipfRequests { domain: 16, s: 2.0 };
    for algo in [
        Algo::DexFreq,
        Algo::DexPrv { m: 0 },
        Algo::Bosco,
        Algo::UnderlyingOnly,
    ] {
        group.bench_with_input(
            BenchmarkId::new("zipf_smr", algo.label()),
            &algo,
            |b, algo| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let stats = run_batch(&BatchSpec {
                        chaos: dex_harness::spec::ChaosSpec::None,
                        config: cfg,
                        algo: *algo,
                        underlying: UnderlyingKind::Oracle,
                        strategy: ByzantineStrategy::Silent,
                        f: 0,
                        placement: Placement::LastK,
                        workload: &workload,
                        delay: DelayModel::Uniform { min: 1, max: 10 },
                        runs: 5,
                        seed0: seed * 1000,
                        max_events: 5_000_000,
                        aggregate: false,
                    });
                    assert!(stats.clean());
                    black_box(stats)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
