//! Microbenchmarks of the view algebra (§3.1) — the per-message hot path of
//! Algorithm DEX: every reception re-evaluates `P1`/`P2`, which reduce to
//! `1st`/`2nd` frequency counting.
//!
//! The `naive_*` entries recompute each statistic from scratch (the
//! pre-tally implementation, see `dex_bench::naive`) for comparison against
//! the O(1) incremental tally; `bench_view_tally` turns the same comparison
//! into a JSON artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex_bench::naive;
use dex_types::{ProcessId, View};
use rand::rngs::StdRng;
use std::hint::black_box;

fn random_view(n: usize, domain: u64, bottoms: usize, seed: u64) -> View<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries: Vec<Option<u64>> = (0..n).map(|_| Some(rng.random_range(0..domain))).collect();
    for e in entries.iter_mut().take(bottoms) {
        *e = None;
    }
    View::from_options(entries)
}

fn bench_view_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_ops");
    for n in [7usize, 13, 43, 127] {
        let view = random_view(n, 4, n / 8, 42);
        let other = random_view(n, 4, n / 8, 43);
        group.bench_with_input(BenchmarkId::new("frequency_margin", n), &n, |b, _| {
            b.iter(|| black_box(&view).frequency_margin())
        });
        group.bench_with_input(BenchmarkId::new("first_second", n), &n, |b, _| {
            b.iter(|| {
                let v = black_box(&view);
                (v.first().cloned(), v.second().cloned())
            })
        });
        group.bench_with_input(BenchmarkId::new("dist", n), &n, |b, _| {
            b.iter(|| black_box(&view).dist(black_box(&other)))
        });
        group.bench_with_input(BenchmarkId::new("containment", n), &n, |b, _| {
            b.iter(|| black_box(&view).is_contained_in(black_box(&other)))
        });
        group.bench_with_input(BenchmarkId::new("incremental_set", n), &n, |b, _| {
            let mut v = view.clone();
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % n;
                v.set(ProcessId::new(i), (i as u64) % 4);
                v.frequency_margin()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_frequency_margin", n), &n, |b, _| {
            b.iter(|| naive::frequency_margin(black_box(&view)))
        });
        group.bench_with_input(BenchmarkId::new("naive_first_second", n), &n, |b, _| {
            b.iter(|| naive::first_second(black_box(&view)))
        });
        group.bench_with_input(BenchmarkId::new("count_of", n), &n, |b, _| {
            b.iter(|| black_box(&view).count_of(black_box(&1)))
        });
        group.bench_with_input(BenchmarkId::new("naive_count_of", n), &n, |b, _| {
            b.iter(|| naive::count_of(black_box(&view), black_box(&1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_view_ops);
criterion_main!(benches);
