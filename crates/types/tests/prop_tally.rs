//! Property tests pinning the incremental tally to a from-scratch oracle.
//!
//! `View` maintains per-value counts and the top-two `(value, count)` pair
//! incrementally (see `view.rs`); every query the legality predicates rely
//! on must agree with a naive recount of the raw entries — including the
//! §3.3 tie-break, which prefers the **largest** value among equal counts.
//! The oracle below is written independently of `View`'s own internals
//! (it only reads `as_options`), so a bug in the tally bookkeeping cannot
//! hide in the checker.

use dex_types::{ProcessId, View};
use proptest::prelude::*;
use std::collections::HashMap;

const N: usize = 9;
const DOMAIN: u64 = 4;

/// One mutation: `Some(v)` sets the slot, `None` clears it.
type Op = (usize, Option<u64>);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0usize..N, proptest::option::weighted(0.7, 0..DOMAIN)),
        0..40,
    )
}

fn view_strategy() -> impl Strategy<Value = View<u64>> {
    proptest::collection::vec(proptest::option::weighted(0.8, 0..DOMAIN), N)
        .prop_map(View::from_options)
}

fn naive_counts(shadow: &[Option<u64>]) -> HashMap<u64, usize> {
    let mut counts = HashMap::new();
    for v in shadow.iter().flatten() {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts
}

type Ranked = Option<(u64, usize)>;

/// From-scratch top-two with the §3.3 tie-break: more occurrences wins, and
/// among equal counts the larger value wins.
fn naive_top_two(shadow: &[Option<u64>]) -> (Ranked, Ranked) {
    let counts = naive_counts(shadow);
    let best = |skip: Option<u64>| {
        counts
            .iter()
            .filter(|(v, _)| Some(**v) != skip)
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| va.cmp(vb)))
            .map(|(v, c)| (*v, *c))
    };
    let first = best(None);
    let second = first.and_then(|(f, _)| best(Some(f)));
    (first, second)
}

/// Asserts every tally-backed query against the oracle.
fn check_against_oracle(view: &View<u64>, shadow: &[Option<u64>]) -> Result<(), TestCaseError> {
    prop_assert_eq!(view.as_options(), shadow);
    let counts = naive_counts(shadow);
    for v in 0..DOMAIN {
        prop_assert_eq!(view.count_of(&v), counts.get(&v).copied().unwrap_or(0));
    }
    prop_assert_eq!(view.len_non_default(), counts.values().sum::<usize>());

    let (first, second) = naive_top_two(shadow);
    prop_assert_eq!(view.first_with_count().map(|(v, c)| (*v, c)), first);
    prop_assert_eq!(view.second_with_count().map(|(v, c)| (*v, c)), second);
    prop_assert_eq!(view.first().copied(), first.map(|(v, _)| v));
    prop_assert_eq!(view.second().copied(), second.map(|(v, _)| v));

    let margin = match (first, second) {
        (Some((_, c1)), Some((_, c2))) => c1 - c2,
        (Some((_, c1)), None) => c1,
        _ => 0,
    };
    prop_assert_eq!(view.frequency_margin(), margin);
    Ok(())
}

proptest! {
    #[test]
    fn random_mutation_sequences_match_recount(ops in ops_strategy()) {
        let mut view: View<u64> = View::bottom(N);
        let mut shadow: Vec<Option<u64>> = vec![None; N];
        for (idx, op) in ops {
            match op {
                Some(v) => {
                    view.set(ProcessId::new(idx), v);
                    shadow[idx] = Some(v);
                }
                None => {
                    view.clear(ProcessId::new(idx));
                    shadow[idx] = None;
                }
            }
            // The tally must be exact after *every* step, not just at the
            // end — an intermediate drift that later self-corrects would
            // still mis-gate the per-message predicates.
            check_against_oracle(&view, &shadow)?;
        }
    }

    #[test]
    fn constructed_views_match_recount(view in view_strategy()) {
        let shadow = view.as_options().to_vec();
        check_against_oracle(&view, &shadow)?;
    }

    #[test]
    fn joins_match_recount(a in view_strategy(), b in view_strategy()) {
        if let Some(j) = a.join(&b) {
            let shadow = j.as_options().to_vec();
            check_against_oracle(&j, &shadow)?;
        }
    }

    #[test]
    fn largest_value_wins_count_ties(ops in ops_strategy()) {
        // Focused restatement of the §3.3 tie-break on the same sequences:
        // whenever first/second exist, no other value may beat them under
        // the (count, value) lexicographic order.
        let mut view: View<u64> = View::bottom(N);
        for (idx, op) in ops {
            match op {
                Some(v) => {
                    view.set(ProcessId::new(idx), v);
                }
                None => {
                    view.clear(ProcessId::new(idx));
                }
            }
        }
        if let Some((v1, c1)) = view.first_with_count() {
            for (v, c) in view.histogram() {
                prop_assert!((c, v) <= (c1, v1));
                if let Some((v2, c2)) = view.second_with_count() {
                    if v != v1 {
                        prop_assert!((c, v) <= (c2, v2));
                    }
                }
            }
        }
    }
}
