//! Property-based tests of the view algebra (§3.1): the legality proofs
//! lean on these identities, so they are checked on random views.

use dex_types::{InputVector, ProcessId, View};
use proptest::prelude::*;

fn view_strategy(n: usize, domain: u64) -> impl Strategy<Value = View<u64>> {
    proptest::collection::vec(proptest::option::weighted(0.8, 0..domain), n)
        .prop_map(View::from_options)
}

fn vector_strategy(n: usize, domain: u64) -> impl Strategy<Value = InputVector<u64>> {
    proptest::collection::vec(0..domain, n).prop_map(InputVector::new)
}

proptest! {
    #[test]
    fn dist_is_a_metric(
        a in view_strategy(9, 3),
        b in view_strategy(9, 3),
        c in view_strategy(9, 3),
    ) {
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(a.dist(&a), 0);
        prop_assert_eq!(a.dist(&b), b.dist(&a));
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c));
    }

    #[test]
    fn containment_is_a_partial_order(
        a in view_strategy(8, 3),
        b in view_strategy(8, 3),
    ) {
        prop_assert!(a.is_contained_in(&a));
        if a.is_contained_in(&b) && b.is_contained_in(&a) {
            prop_assert_eq!(&a, &b);
        }
        // Containment implies compatibility.
        if a.is_contained_in(&b) {
            prop_assert!(a.is_compatible_with(&b));
        }
    }

    #[test]
    fn join_is_least_upper_bound(
        a in view_strategy(8, 3),
        b in view_strategy(8, 3),
    ) {
        match a.join(&b) {
            Some(j) => {
                prop_assert!(a.is_compatible_with(&b));
                prop_assert!(a.is_contained_in(&j));
                prop_assert!(b.is_contained_in(&j));
                // Minimality: every entry of the join comes from a or b.
                for (p, v) in j.iter() {
                    prop_assert!(v == a.get(p) || v == b.get(p));
                }
            }
            None => prop_assert!(!a.is_compatible_with(&b)),
        }
    }

    #[test]
    fn first_is_most_frequent_largest_on_ties(view in view_strategy(10, 4)) {
        if let Some(first) = view.first() {
            let c_first = view.count_of(first);
            for (v, c) in view.histogram() {
                prop_assert!(c <= c_first);
                if c == c_first {
                    prop_assert!(v <= first);
                }
            }
        } else {
            prop_assert_eq!(view.len_non_default(), 0);
        }
    }

    #[test]
    fn second_is_runner_up(view in view_strategy(10, 4)) {
        if let (Some(first), Some(second)) = (view.first(), view.second()) {
            prop_assert_ne!(first, second);
            let c_second = view.count_of(second);
            for (v, c) in view.histogram() {
                if v != first {
                    prop_assert!(c <= c_second);
                }
            }
        }
    }

    #[test]
    fn frequency_margin_matches_definition(view in view_strategy(10, 4)) {
        let expected = match view.first() {
            None => 0,
            Some(f) => view.count_of(f) - view.second().map_or(0, |s| view.count_of(s)),
        };
        prop_assert_eq!(view.frequency_margin(), expected);
    }

    #[test]
    fn counts_are_consistent(view in view_strategy(12, 3)) {
        let total: usize = view.histogram().values().sum();
        prop_assert_eq!(total, view.len_non_default());
        prop_assert_eq!(view.len_non_default() + view.len_default(), view.n());
    }

    #[test]
    fn complete_with_produces_superview(
        view in view_strategy(8, 3),
        base in vector_strategy(8, 3),
    ) {
        let completed = view.complete_with(&base);
        prop_assert!(view.is_contained_in(&completed.to_view()));
        // The completion only fills ⊥ entries from the base.
        prop_assert!(view.dist(&completed.to_view()) == view.len_default());
    }

    #[test]
    fn set_then_clear_is_identity(
        view in view_strategy(8, 3),
        idx in 0usize..8,
        value in 0u64..3,
    ) {
        let mut v = view.clone();
        let p = ProcessId::new(idx);
        let before = v.get(p).cloned();
        v.set(p, value);
        prop_assert_eq!(v.get(p), Some(&value));
        v.clear(p);
        prop_assert_eq!(v.get(p), None);
        if let Some(b) = before {
            v.set(p, b);
            prop_assert_eq!(&v, &view);
        }
    }

    #[test]
    fn vnk_membership_matches_default_count(view in view_strategy(9, 2), k in 0usize..10) {
        prop_assert_eq!(view.in_vnk(k), view.len_default() <= k);
    }
}
