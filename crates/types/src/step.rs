//! Communication-step accounting.

use core::fmt;
use core::ops::Add;

/// The causal communication-step depth of a message or decision.
///
/// The paper measures algorithm cost in *communication steps*: the initial
/// proposal broadcast is step 1, a message sent in reaction to step-1
/// messages is step 2, and so on. A "one-step decision" is one triggered
/// purely by step-1 messages; the Identical Broadcast of the appendix costs
/// exactly two point-to-point steps per IDB step.
///
/// We track this as a *causal depth*: every message carries the depth of the
/// deepest message its sender had consumed when producing it, plus one.
/// A decision's step count is the depth of the message that triggered it.
///
/// # Examples
///
/// ```
/// use dex_types::StepDepth;
/// let start = StepDepth::ZERO;
/// let proposal = start.next();           // step 1: initial broadcast
/// let echo = proposal.next();            // step 2: reaction to a proposal
/// assert_eq!(proposal.get(), 1);
/// assert_eq!(echo.get(), 2);
/// assert_eq!(proposal.max(echo), echo);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct StepDepth(u32);

impl StepDepth {
    /// Depth zero: local computation before any message is sent.
    pub const ZERO: StepDepth = StepDepth(0);

    /// Depth one: the initial proposal broadcast.
    pub const ONE: StepDepth = StepDepth(1);

    /// Creates a depth from a raw step count.
    pub const fn new(steps: u32) -> Self {
        StepDepth(steps)
    }

    /// Returns the raw step count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The depth of a message sent in reaction to this one.
    #[must_use]
    pub const fn next(self) -> Self {
        StepDepth(self.0 + 1)
    }
}

impl Add<u32> for StepDepth {
    type Output = StepDepth;

    fn add(self, rhs: u32) -> StepDepth {
        StepDepth(self.0 + rhs)
    }
}

impl fmt::Display for StepDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} step(s)", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_then_next_is_one() {
        assert_eq!(StepDepth::ZERO.next(), StepDepth::ONE);
        assert_eq!(StepDepth::ONE.get(), 1);
    }

    #[test]
    fn ordering_follows_depth() {
        let one = StepDepth::new(1);
        let four = StepDepth::new(4);
        assert!(one < four);
        assert_eq!(one.max(four), four);
    }

    #[test]
    fn add_offsets_depth() {
        assert_eq!(StepDepth::ONE + 2, StepDepth::new(3));
    }

    #[test]
    fn display_mentions_steps() {
        assert_eq!(StepDepth::new(2).to_string(), "2 step(s)");
    }
}
