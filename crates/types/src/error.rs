//! Error types.

use core::fmt;
use std::error::Error;

/// Error building a [`crate::SystemConfig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `n ≤ 3t` (or `n = 0`): no asynchronous Byzantine consensus component
    /// is realisable at all.
    TooFewProcesses {
        /// Requested number of processes.
        n: usize,
        /// Requested failure bound.
        t: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewProcesses { n, t } => {
                write!(f, "need n > 3t and n >= 1, got n={n}, t={t}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConfigError::TooFewProcesses { n: 3, t: 1 };
        let msg = e.to_string();
        assert!(msg.contains("n=3"));
        assert!(msg.contains("t=1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
