//! Core types shared by every crate in the DEX reproduction.
//!
//! This crate defines the vocabulary of the paper *“Doubly-Expedited One-Step
//! Byzantine Consensus”* (Banu, Izumi, Wada — DSN 2010):
//!
//! * [`ProcessId`] — the identity of one of the `n` processes `p_1 … p_n`.
//! * [`SystemConfig`] — the pair `(n, t)` plus the resilience predicates the
//!   paper relies on (`n > 4t` for Identical Broadcast, `n > 5t` for the
//!   privileged pair, `n > 6t` for the frequency pair, `n > 7t` for strongly
//!   one-step Bosco).
//! * [`InputVector`] — the `n`-tuple of proposed values (§2.3).
//! * [`View`] — a vector in `(V ∪ {⊥})^n` obtained by replacing at most `t`
//!   entries of an input vector by `⊥` (§3.1), together with the whole view
//!   algebra used by the legality proofs: occurrence counts `#_v(J)`,
//!   first/second most frequent values `1st(J)`/`2nd(J)`, Hamming distance
//!   `dist(J₁, J₂)`, containment `J₁ ≤ J₂` and the non-default count `|J|`.
//! * [`StepDepth`] — causal communication-step accounting, the complexity
//!   measure of the paper (one-step / two-step decisions).
//!
//! # Examples
//!
//! ```
//! use dex_types::{SystemConfig, View};
//!
//! let cfg = SystemConfig::new(7, 1).unwrap();
//! assert!(cfg.supports_frequency_pair()); // n > 6t
//!
//! let view: View<u64> = View::from_options(vec![
//!     Some(3), Some(3), Some(3), Some(3), Some(3), Some(9), None,
//! ]);
//! assert_eq!(view.count_of(&3), 5);
//! assert_eq!(view.first(), Some(&3));
//! assert_eq!(view.second(), Some(&9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dest;
mod error;
mod step;
mod value;
mod vector;
mod view;

pub use config::{ProcessId, SystemConfig};
pub use dest::Dest;
pub use error::ConfigError;
pub use step::StepDepth;
pub use value::Value;
pub use vector::InputVector;
pub use view::View;

/// The default proposal value ⊥ is modelled as `None`; this alias documents
/// the `(V ∪ {⊥})` entry type used throughout the view algebra.
pub type Entry<V> = Option<V>;
