//! Message destinations.

use crate::config::ProcessId;

/// Destination of an outgoing message.
///
/// A broadcast stays a *single* [`Dest::All`] entry all the way from the
/// protocol outbox (`dex_underlying::Outbox`) through the network runtime
/// (`dex_simnet::Context`) until the simulator expands it at dispatch time
/// against one shared payload — the zero-clone multicast fast path (see
/// DESIGN.md §10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// A single process.
    To(ProcessId),
    /// Every process, including the sender (protocol broadcasts in the
    /// paper always include the sender itself).
    All,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_is_copy_and_comparable() {
        let a = Dest::To(ProcessId::new(2));
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, Dest::All);
        assert_eq!(Dest::All, Dest::All);
    }
}
