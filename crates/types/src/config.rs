//! Process identities and the `(n, t)` system configuration.

use crate::error::ConfigError;
use core::fmt;

/// Identity of a process `p_i` in the system `Π = {p_0, …, p_{n-1}}`.
///
/// The paper indexes processes from 1; we use 0-based indices because they
/// double as vector positions in [`crate::InputVector`] and [`crate::View`].
///
/// # Examples
///
/// ```
/// use dex_types::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from its 0-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the 0-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

/// The static system configuration `(n, t)`: `n` processes of which at most
/// `t` may be Byzantine (§2.1).
///
/// Every process knows `t` in advance; nobody knows the *actual* number of
/// failures `f ≤ t`. The resilience predicates below encode the assumptions
/// each component of the paper requires:
///
/// | predicate | bound | needed by |
/// |---|---|---|
/// | [`supports_identical_broadcast`](Self::supports_identical_broadcast) | `n > 4t` | IDB (appendix, Thm. 4) |
/// | [`supports_one_step`](Self::supports_one_step) | `n > 5t` | any one-step Byzantine consensus (§2.1) |
/// | [`supports_privileged_pair`](Self::supports_privileged_pair) | `n > 5t` | `P_prv` (§3.4) |
/// | [`supports_frequency_pair`](Self::supports_frequency_pair) | `n > 6t` | `P_freq` (§3.3) |
/// | [`supports_strongly_one_step`](Self::supports_strongly_one_step) | `n > 7t` | strongly one-step Bosco (Table 1) |
///
/// # Examples
///
/// ```
/// use dex_types::SystemConfig;
/// let cfg = SystemConfig::new(13, 2)?;
/// assert_eq!(cfg.quorum(), 11);           // n - t
/// assert!(cfg.supports_frequency_pair()); // 13 > 12
/// assert!(!cfg.supports_strongly_one_step());
/// # Ok::<(), dex_types::ConfigError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SystemConfig {
    n: usize,
    t: usize,
}

impl SystemConfig {
    /// Creates a configuration with `n` processes tolerating up to `t`
    /// Byzantine failures.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooFewProcesses`] unless `n > 3t` and `n ≥ 1`:
    /// below `3t + 1` not even the underlying consensus primitive is
    /// realisable in an asynchronous Byzantine system, so such configurations
    /// are rejected outright.
    pub fn new(n: usize, t: usize) -> Result<Self, ConfigError> {
        if n == 0 || n <= 3 * t {
            return Err(ConfigError::TooFewProcesses { n, t });
        }
        Ok(SystemConfig { n, t })
    }

    /// The total number of processes `n`.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The failure bound `t` known to every process.
    pub const fn t(&self) -> usize {
        self.t
    }

    /// The wait threshold `n − t`: the number of messages a correct process
    /// can always expect to receive (line 7/12 of Fig. 1).
    pub const fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// The IDB echo-amplification threshold `n − 2t` (Fig. 3).
    pub const fn echo_threshold(&self) -> usize {
        self.n - 2 * self.t
    }

    /// `n > 4t`: Identical Broadcast is implementable (appendix, Thm. 4).
    pub const fn supports_identical_broadcast(&self) -> bool {
        self.n > 4 * self.t
    }

    /// `n > 5t`: necessary for one-step Byzantine decision (§2.1) and for
    /// the privileged-value pair to be meaningful (§3.4).
    pub const fn supports_one_step(&self) -> bool {
        self.n > 5 * self.t
    }

    /// `n > 5t`: the privileged-value condition-sequence pair `P_prv`.
    pub const fn supports_privileged_pair(&self) -> bool {
        self.n > 5 * self.t
    }

    /// `n > 6t`: the frequency-based condition-sequence pair `P_freq` (§3.3).
    pub const fn supports_frequency_pair(&self) -> bool {
        self.n > 6 * self.t
    }

    /// `n > 7t`: strongly one-step consensus à la Bosco (Table 1).
    pub const fn supports_strongly_one_step(&self) -> bool {
        self.n > 7 * self.t
    }

    /// Iterates over all process ids `p_0 … p_{n-1}`.
    pub fn processes(&self) -> impl ExactSizeIterator<Item = ProcessId> {
        (0..self.n).map(ProcessId::new)
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(n={}, t={})", self.n, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_configs() {
        assert!(SystemConfig::new(0, 0).is_err());
        assert!(SystemConfig::new(3, 1).is_err());
        assert!(SystemConfig::new(6, 2).is_err());
    }

    #[test]
    fn accepts_minimal_underlying_config() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        assert_eq!(cfg.n(), 4);
        assert_eq!(cfg.t(), 1);
        assert_eq!(cfg.quorum(), 3);
        assert_eq!(cfg.echo_threshold(), 2);
    }

    #[test]
    fn resilience_ladder_is_ordered() {
        // Each rung of the ladder implies every rung below it.
        for n in 1..60 {
            for t in 0..=(n / 3) {
                let Ok(cfg) = SystemConfig::new(n, t) else {
                    continue;
                };
                if cfg.supports_strongly_one_step() {
                    assert!(cfg.supports_frequency_pair());
                }
                if cfg.supports_frequency_pair() {
                    assert!(cfg.supports_privileged_pair());
                }
                if cfg.supports_privileged_pair() {
                    assert!(cfg.supports_identical_broadcast());
                }
            }
        }
    }

    #[test]
    fn boundary_configs_match_table1() {
        // Table 1: Bosco-weak 5t+1, DEX-freq 6t+1, Bosco-strong 7t+1.
        let t = 2;
        let weak = SystemConfig::new(5 * t + 1, t).unwrap();
        assert!(weak.supports_one_step());
        assert!(!weak.supports_frequency_pair());

        let freq = SystemConfig::new(6 * t + 1, t).unwrap();
        assert!(freq.supports_frequency_pair());
        assert!(!freq.supports_strongly_one_step());

        let strong = SystemConfig::new(7 * t + 1, t).unwrap();
        assert!(strong.supports_strongly_one_step());
    }

    #[test]
    fn process_iteration_covers_all_ids() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let ids: Vec<_> = cfg.processes().collect();
        assert_eq!(ids.len(), 7);
        assert_eq!(ids[0], ProcessId::new(0));
        assert_eq!(ids[6], ProcessId::new(6));
    }

    #[test]
    fn process_id_conversions_roundtrip() {
        let p: ProcessId = 5usize.into();
        let back: usize = p.into();
        assert_eq!(back, 5);
        assert_eq!(format!("{p}"), "p5");
        assert_eq!(format!("{p:?}"), "ProcessId(5)");
    }

    #[test]
    fn zero_t_configs_support_everything() {
        let cfg = SystemConfig::new(1, 0).unwrap();
        assert!(cfg.supports_strongly_one_step());
        assert_eq!(cfg.quorum(), 1);
    }

    #[test]
    fn display_formats_config() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        assert_eq!(cfg.to_string(), "(n=7, t=1)");
    }
}
