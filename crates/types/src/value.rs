//! The proposal-value abstraction.

use core::fmt::Debug;
use core::hash::Hash;

/// A consensus proposal value.
///
/// The paper assumes an *ordered* set `V` of proposal values (§3.1); the
/// ordering is load-bearing: when two values appear equally often in a view,
/// `1st(J)` selects the **largest** one, so every implementation of the view
/// algebra needs `Ord`. Values travel between simulated processes, hence the
/// `Send + Sync + 'static` bounds.
///
/// `Value` is a blanket trait: anything with the right standard-library
/// traits implements it automatically. `u64`, `i32`, `String`, `bool` and
/// small enums all qualify.
///
/// # Examples
///
/// ```
/// fn assert_value<V: dex_types::Value>() {}
/// assert_value::<u64>();
/// assert_value::<String>();
/// ```
pub trait Value: Clone + Eq + Ord + Hash + Debug + Send + Sync + 'static {}

impl<T> Value for T where T: Clone + Eq + Ord + Hash + Debug + Send + Sync + 'static {}

#[cfg(test)]
mod tests {
    use super::Value;

    fn takes_value<V: Value>(v: V) -> V {
        v
    }

    #[test]
    fn primitive_types_are_values() {
        assert_eq!(takes_value(7u64), 7u64);
        assert_eq!(takes_value(-3i32), -3i32);
        assert!(takes_value(true));
        assert_eq!(takes_value("commit".to_string()), "commit");
    }

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum Vote {
        Abort,
        Commit,
    }

    #[test]
    fn custom_enums_are_values() {
        assert_eq!(takes_value(Vote::Commit), Vote::Commit);
        assert!(Vote::Abort < Vote::Commit);
    }
}
