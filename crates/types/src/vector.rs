//! Input vectors: the `n`-tuple of proposed values (§2.3).

use crate::view::View;
use crate::{ProcessId, Value};
use core::fmt;
use core::ops::Index;

/// An input vector `I ∈ V^n`: entry `i` holds the value proposed by `p_i`.
///
/// For Byzantine processes the entry is "meaningless" per the paper (a faulty
/// process may propose different values to different peers); in simulations
/// we store the value the adversary's *plan* nominally assigns, and the
/// adversary layer is free to equivocate on the wire.
///
/// # Examples
///
/// ```
/// use dex_types::InputVector;
/// let input = InputVector::new(vec![1u64, 1, 1, 2, 1, 1, 1]);
/// assert_eq!(input.n(), 7);
/// assert_eq!(input.count_of(&1), 6);
/// let full_view = input.to_view();
/// assert_eq!(full_view.len_non_default(), 7);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InputVector<V> {
    entries: Vec<V>,
}

impl<V: Value> InputVector<V> {
    /// Creates an input vector from the proposals of `p_0 … p_{n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty — an input vector for zero processes is
    /// meaningless.
    pub fn new(entries: Vec<V>) -> Self {
        assert!(!entries.is_empty(), "input vector must be non-empty");
        InputVector { entries }
    }

    /// Creates the unanimous vector `(v, v, …, v)` of length `n`.
    pub fn unanimous(n: usize, v: V) -> Self {
        InputVector::new(vec![v; n])
    }

    /// The number of processes `n`.
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// The value proposed by `p_i`.
    pub fn get(&self, id: ProcessId) -> &V {
        &self.entries[id.index()]
    }

    /// The number of occurrences of `v` in the vector (`#_v(I)`).
    pub fn count_of(&self, v: &V) -> usize {
        self.entries.iter().filter(|e| *e == v).count()
    }

    /// Converts to a complete view (no `⊥` entries).
    pub fn to_view(&self) -> View<V> {
        View::from_options(self.entries.iter().cloned().map(Some).collect())
    }

    /// Borrows the underlying entries.
    pub fn as_slice(&self) -> &[V] {
        &self.entries
    }

    /// Consumes the vector, returning its entries.
    pub fn into_inner(self) -> Vec<V> {
        self.entries
    }

    /// Iterates over `(ProcessId, &V)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &V)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), v))
    }

    /// The most frequent value in the vector, largest on ties (`1st(I)`).
    pub fn first(&self) -> &V {
        self.to_view()
            .first()
            .cloned()
            .map(|v| {
                // Locate the value back in our own storage to return a borrow
                // with the right lifetime.
                self.entries
                    .iter()
                    .find(|e| **e == v)
                    .expect("first() value must occur in the vector")
            })
            .expect("non-empty input vector always has a first value")
    }

    /// Hamming distance to another equal-length vector.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn dist(&self, other: &InputVector<V>) -> usize {
        assert_eq!(self.n(), other.n(), "vectors must have equal length");
        self.entries
            .iter()
            .zip(&other.entries)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl<V: Value> Index<ProcessId> for InputVector<V> {
    type Output = V;

    fn index(&self, id: ProcessId) -> &V {
        self.get(id)
    }
}

impl<V: Value> From<Vec<V>> for InputVector<V> {
    fn from(entries: Vec<V>) -> Self {
        InputVector::new(entries)
    }
}

impl<V: Value> FromIterator<V> for InputVector<V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        InputVector::new(iter.into_iter().collect())
    }
}

impl<V: Value + fmt::Display> fmt::Display for InputVector<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_counts_everything() {
        let i = InputVector::unanimous(5, 42u64);
        assert_eq!(i.n(), 5);
        assert_eq!(i.count_of(&42), 5);
        assert_eq!(i.count_of(&7), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vector_panics() {
        let _ = InputVector::<u64>::new(vec![]);
    }

    #[test]
    fn indexing_by_process_id() {
        let i = InputVector::new(vec![10u64, 20, 30]);
        assert_eq!(i[ProcessId::new(1)], 20);
        assert_eq!(*i.get(ProcessId::new(2)), 30);
    }

    #[test]
    fn dist_counts_differing_entries() {
        let a = InputVector::new(vec![1u64, 2, 3, 4]);
        let b = InputVector::new(vec![1u64, 9, 3, 8]);
        assert_eq!(a.dist(&b), 2);
        assert_eq!(a.dist(&a), 0);
    }

    #[test]
    fn first_breaks_ties_by_largest() {
        let i = InputVector::new(vec![1u64, 2, 1, 2]);
        assert_eq!(*i.first(), 2);
    }

    #[test]
    fn view_conversion_preserves_entries() {
        let i = InputVector::new(vec![5u64, 6, 7]);
        let v = i.to_view();
        assert_eq!(v.len_non_default(), 3);
        assert_eq!(v.get(ProcessId::new(1)), Some(&6));
    }

    #[test]
    fn from_iterator_collects() {
        let i: InputVector<u64> = (0..4).collect();
        assert_eq!(i.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn display_renders_tuple() {
        let i = InputVector::new(vec![1u64, 2]);
        assert_eq!(i.to_string(), "(1, 2)");
    }
}
