//! Views and the view algebra of §3.1.
//!
//! # Incremental tallies
//!
//! Views sit on the protocol's hot path: Fig. 1 re-evaluates the legality
//! predicates `P1(J1)`/`P2(J2)` after *every* message reception, and those
//! predicates are built from `#_v(J)`, `|J|`, `1st(J)`, `2nd(J)` and the
//! frequency margin. Recomputing them by scanning the entry vector (and
//! rebuilding a histogram) made each delivery O(n) with an allocation.
//!
//! [`View`] therefore maintains a tally alongside the entries: a per-value
//! occurrence map, the count of non-`⊥` entries, and the top-two
//! `(value, count)` pairs under the paper's ordering (count first, ties
//! broken by the **largest** value, §3.3). [`set`](View::set) and
//! [`clear`](View::clear) update the tally in O(1) amortized time —
//! increments adjust the top-two directly; only a decrement of a value
//! currently *in* the top two forces a rescan, which never happens in the
//! protocol proper because entries are written once (first-value-wins) and
//! never cleared. All frequency queries are then O(1) and allocation-free.

use crate::{ProcessId, Value};
use core::fmt;
use core::hash::{Hash, Hasher};
use std::collections::HashMap;

/// A view `J ∈ (V ∪ {⊥})^n`: an input vector with up to `t` entries replaced
/// by the default value `⊥` (§3.1). Entry `i` is `None` when the view has not
/// (yet) learnt `p_i`'s proposal.
///
/// All operators the legality proofs use are provided, in O(1):
///
/// * `#_v(J)` — [`count_of`](Self::count_of)
/// * `|J|` — [`len_non_default`](Self::len_non_default)
/// * `1st(J)`, `2nd(J)` — [`first`](Self::first), [`second`](Self::second)
///   (most frequent non-`⊥` value; ties broken by the **largest** value)
/// * `#_1st(J)(J) − #_2nd(J)(J)` — [`frequency_margin`](Self::frequency_margin)
///
/// plus the O(n) structural operators `dist(J₁, J₂)` ([`dist`](Self::dist),
/// Hamming distance) and `J₁ ≤ J₂` ([`is_contained_in`](Self::is_contained_in)).
///
/// Equality and hashing consider only the entries (two views with the same
/// entries are equal however they were built).
///
/// # Examples
///
/// ```
/// use dex_types::View;
/// let j = View::from_options(vec![Some(1u64), Some(1), Some(2), None]);
/// assert_eq!(j.count_of(&1), 2);
/// assert_eq!(j.len_non_default(), 3);
/// assert_eq!(j.first(), Some(&1));
/// assert_eq!(j.second(), Some(&2));
/// ```
#[derive(Clone, Debug)]
pub struct View<V> {
    entries: Vec<Option<V>>,
    /// Occurrences of each non-`⊥` value currently in `entries`.
    counts: HashMap<V, usize>,
    /// Number of non-`⊥` entries (`|J|`).
    non_default: usize,
    /// `(1st(J), #_1st(J)(J))` under the §3.3 ordering.
    top1: Option<(V, usize)>,
    /// `(2nd(J), #_2nd(J)(J))`; `None` if fewer than two distinct values.
    top2: Option<(V, usize)>,
}

impl<V: PartialEq> PartialEq for View<V> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<V: Eq> Eq for View<V> {}

impl<V: Hash> Hash for View<V> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.entries.hash(state);
    }
}

/// The §3.3 ordering on tally pairs: more occurrences wins; on equal counts
/// the larger value wins.
#[inline]
fn beats<V: Ord>(v: &V, c: usize, v_other: &V, c_other: usize) -> bool {
    c > c_other || (c == c_other && v > v_other)
}

impl<V: Value> View<V> {
    /// The all-`⊥` view `⊥^n`.
    pub fn bottom(n: usize) -> Self {
        View {
            entries: vec![None; n],
            counts: HashMap::new(),
            non_default: 0,
            top1: None,
            top2: None,
        }
    }

    /// Builds a view directly from `(V ∪ {⊥})` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn from_options(entries: Vec<Option<V>>) -> Self {
        assert!(!entries.is_empty(), "view must be non-empty");
        let mut view = View {
            entries,
            counts: HashMap::new(),
            non_default: 0,
            top1: None,
            top2: None,
        };
        for i in 0..view.entries.len() {
            if let Some(v) = view.entries[i].clone() {
                view.non_default += 1;
                view.increment(&v);
            }
        }
        view.debug_check_tally();
        view
    }

    /// The dimension `n` of the view.
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `p_i` (`None` = `⊥`).
    pub fn get(&self, id: ProcessId) -> Option<&V> {
        self.entries[id.index()].as_ref()
    }

    /// Records `p_i`'s value. Returns the previous entry.
    ///
    /// Views are maintained *incrementally* in Fig. 1 (lines 6, 11): each
    /// message reception fills in one entry, and this updates the tally in
    /// O(1).
    pub fn set(&mut self, id: ProcessId, v: V) -> Option<V> {
        let slot = &mut self.entries[id.index()];
        if slot.as_ref() == Some(&v) {
            return slot.replace(v); // same value: tally unchanged
        }
        let prev = slot.replace(v.clone());
        match &prev {
            Some(old) => self.decrement(old),
            None => self.non_default += 1,
        }
        self.increment(&v);
        self.debug_check_tally();
        prev
    }

    /// Clears `p_i`'s entry back to `⊥`. Returns the previous entry.
    pub fn clear(&mut self, id: ProcessId) -> Option<V> {
        let prev = self.entries[id.index()].take();
        if let Some(old) = &prev {
            self.non_default -= 1;
            self.decrement(old);
            self.debug_check_tally();
        }
        prev
    }

    /// Resets every entry back to `⊥` in place, keeping the allocated
    /// `entries` buffer and `counts` table capacity. This is the slot
    /// recycling hook: a pipelined replica reuses one `View` per tally
    /// across many consecutive log slots instead of reallocating
    /// [`View::bottom`] each time.
    pub fn reset(&mut self) {
        for slot in &mut self.entries {
            *slot = None;
        }
        self.counts.clear();
        self.non_default = 0;
        self.top1 = None;
        self.top2 = None;
        self.debug_check_tally();
    }

    /// `#_v(J)`: the number of occurrences of `v`. O(1).
    pub fn count_of(&self, v: &V) -> usize {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// `|J|`: the number of non-`⊥` entries. O(1).
    pub fn len_non_default(&self) -> usize {
        self.non_default
    }

    /// The number of `⊥` entries. O(1).
    pub fn len_default(&self) -> usize {
        self.n() - self.non_default
    }

    /// Whether the view belongs to `V^n_k`: at most `k` entries are `⊥`.
    pub fn in_vnk(&self, k: usize) -> bool {
        self.len_default() <= k
    }

    /// Occurrence counts of every non-`⊥` value.
    ///
    /// Prefer the O(1) queries ([`count_of`](Self::count_of),
    /// [`first_with_count`](Self::first_with_count),
    /// [`second_with_count`](Self::second_with_count)) on hot paths; this
    /// allocates a fresh map.
    pub fn histogram(&self) -> HashMap<&V, usize> {
        self.counts.iter().map(|(v, c)| (v, *c)).collect()
    }

    /// `1st(J)`: the most frequent non-`⊥` value; when several values are
    /// tied for most frequent, the **largest** is selected (§3.3). `None` iff
    /// the view is all-`⊥`. O(1).
    pub fn first(&self) -> Option<&V> {
        self.top1.as_ref().map(|(v, _)| v)
    }

    /// `2nd(J)`: the second most frequent value — `1st(Ĵ)` where `Ĵ` is `J`
    /// with every occurrence of `1st(J)` replaced by `⊥` (§3.3). `None` if
    /// fewer than two distinct values occur. O(1).
    pub fn second(&self) -> Option<&V> {
        self.top2.as_ref().map(|(v, _)| v)
    }

    /// `(1st(J), #_1st(J)(J))` in one O(1) lookup.
    pub fn first_with_count(&self) -> Option<(&V, usize)> {
        self.top1.as_ref().map(|(v, c)| (v, *c))
    }

    /// `(2nd(J), #_2nd(J)(J))` in one O(1) lookup.
    pub fn second_with_count(&self) -> Option<(&V, usize)> {
        self.top2.as_ref().map(|(v, c)| (v, *c))
    }

    /// The frequency margin `#_1st(J)(J) − #_2nd(J)(J)`, the quantity tested
    /// by the frequency-based predicates `P1/P2` (§3.3). If only one distinct
    /// value occurs the margin is its full count; an all-`⊥` view has margin
    /// zero. O(1).
    pub fn frequency_margin(&self) -> usize {
        let c1 = self.top1.as_ref().map_or(0, |(_, c)| *c);
        let c2 = self.top2.as_ref().map_or(0, |(_, c)| *c);
        c1 - c2
    }

    /// Adds one occurrence of `v` to the tally and restores the top-two
    /// invariant. O(1): one increment moves `(v, c)` up by a single count, so
    /// the only candidates for the new top two are the old top two and `v`.
    fn increment(&mut self, v: &V) {
        let c = {
            let c = self.counts.entry(v.clone()).or_insert(0);
            *c += 1;
            *c
        };
        if let Some((v1, c1)) = &mut self.top1 {
            if v1 == v {
                *c1 = c; // already the leader; lead only widens
                return;
            }
            if let Some((v2, c2)) = &mut self.top2 {
                if v2 == v {
                    *c2 = c;
                    let (v1, c1) = self.top1.as_ref().expect("top1 set");
                    if beats(v, c, v1, *c1) {
                        core::mem::swap(&mut self.top1, &mut self.top2);
                    }
                    return;
                }
            }
            // `v` rises from outside the top two.
            let (v1, c1) = self.top1.as_ref().expect("top1 set");
            if beats(v, c, v1, *c1) {
                self.top2 = self.top1.take();
                self.top1 = Some((v.clone(), c));
            } else {
                match &self.top2 {
                    Some((v2, c2)) if !beats(v, c, v2, *c2) => {}
                    _ => self.top2 = Some((v.clone(), c)),
                }
            }
        } else {
            self.top1 = Some((v.clone(), c));
        }
    }

    /// Removes one occurrence of `v` from the tally. O(1) unless `v` is one
    /// of the current top two, in which case the top pair is recomputed by a
    /// scan of the distinct values. The protocol proper never takes the slow
    /// path: entries are written once (first-value-wins) and never cleared.
    fn decrement(&mut self, v: &V) {
        match self.counts.get_mut(v) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(v);
            }
            None => debug_assert!(false, "decrement of untallied value"),
        }
        let in_top = matches!(&self.top1, Some((v1, _)) if v1 == v)
            || matches!(&self.top2, Some((v2, _)) if v2 == v);
        if in_top {
            self.rebuild_top();
        }
    }

    /// Recomputes the top-two pairs from the occurrence map.
    fn rebuild_top(&mut self) {
        let mut top1: Option<(&V, usize)> = None;
        let mut top2: Option<(&V, usize)> = None;
        for (v, &c) in &self.counts {
            match top1 {
                Some((v1, c1)) if !beats(v, c, v1, c1) => match top2 {
                    Some((v2, c2)) if !beats(v, c, v2, c2) => {}
                    _ => top2 = Some((v, c)),
                },
                _ => {
                    top2 = top1;
                    top1 = Some((v, c));
                }
            }
        }
        self.top1 = top1.map(|(v, c)| (v.clone(), c));
        self.top2 = top2.map(|(v, c)| (v.clone(), c));
    }

    /// Oracle: in debug builds, recount everything from the raw entries and
    /// assert the incremental tally agrees.
    #[inline]
    fn debug_check_tally(&self) {
        #[cfg(debug_assertions)]
        {
            let mut counts: HashMap<V, usize> = HashMap::new();
            let mut non_default = 0;
            for v in self.entries.iter().flatten() {
                *counts.entry(v.clone()).or_insert(0) += 1;
                non_default += 1;
            }
            assert_eq!(self.counts, counts, "tally counts diverged");
            assert_eq!(self.non_default, non_default, "|J| diverged");
            let naive_first = counts
                .iter()
                .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| va.cmp(vb)))
                .map(|(v, c)| (v.clone(), *c));
            assert_eq!(self.top1, naive_first, "1st(J) diverged");
            let naive_second = counts
                .iter()
                .filter(|(v, _)| Some(*v) != naive_first.as_ref().map(|(v, _)| v))
                .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| va.cmp(vb)))
                .map(|(v, c)| (v.clone(), *c));
            assert_eq!(self.top2, naive_second, "2nd(J) diverged");
        }
    }

    /// `dist(J₁, J₂)`: the Hamming distance (`⊥` is a normal symbol: a `⊥`
    /// entry differs from any non-`⊥` entry).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dist(&self, other: &View<V>) -> usize {
        assert_eq!(self.n(), other.n(), "views must have equal dimension");
        self.entries
            .iter()
            .zip(&other.entries)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Containment `self ≤ other`: every non-`⊥` entry of `self` equals the
    /// corresponding entry of `other` (§3.1).
    pub fn is_contained_in(&self, other: &View<V>) -> bool {
        self.n() == other.n()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.is_none() || a == b)
    }

    /// Whether two views are *compatible*: some common vector `I'` contains
    /// both (used in Case 3 of Lemma 2 — this holds exactly when the views
    /// never disagree on a non-`⊥` entry).
    pub fn is_compatible_with(&self, other: &View<V>) -> bool {
        self.n() == other.n()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.is_none() || b.is_none() || a == b)
    }

    /// The least upper bound of two compatible views: each entry takes the
    /// non-`⊥` value when available. Returns `None` for incompatible views.
    pub fn join(&self, other: &View<V>) -> Option<View<V>> {
        if !self.is_compatible_with(other) {
            return None;
        }
        Some(View::from_options(
            self.entries
                .iter()
                .zip(&other.entries)
                .map(|(a, b)| a.clone().or_else(|| b.clone()))
                .collect(),
        ))
    }

    /// Completes the view into a full vector by filling `⊥` entries from
    /// `base` — the `I¹_i` / `I²_i` construction of the correctness proofs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn complete_with(&self, base: &crate::InputVector<V>) -> crate::InputVector<V> {
        assert_eq!(self.n(), base.n(), "dimension mismatch");
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                e.clone()
                    .unwrap_or_else(|| base.get(ProcessId::new(i)).clone())
            })
            .collect()
    }

    /// Iterates over `(ProcessId, Option<&V>)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<&V>)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), v.as_ref()))
    }

    /// Iterates over the non-`⊥` entries with their process ids.
    pub fn iter_known(&self) -> impl Iterator<Item = (ProcessId, &V)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ProcessId::new(i), v)))
    }

    /// Borrows the raw entries.
    pub fn as_options(&self) -> &[Option<V>] {
        &self.entries
    }
}

impl<V: Value + fmt::Display> fmt::Display for View<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "⊥")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputVector;

    fn v(entries: Vec<Option<u64>>) -> View<u64> {
        View::from_options(entries)
    }

    #[test]
    fn bottom_has_no_known_entries() {
        let j = View::<u64>::bottom(4);
        assert_eq!(j.len_non_default(), 0);
        assert_eq!(j.len_default(), 4);
        assert_eq!(j.first(), None);
        assert_eq!(j.frequency_margin(), 0);
    }

    #[test]
    fn set_and_clear_roundtrip() {
        let mut j = View::<u64>::bottom(3);
        assert_eq!(j.set(ProcessId::new(1), 7), None);
        assert_eq!(j.get(ProcessId::new(1)), Some(&7));
        assert_eq!(j.set(ProcessId::new(1), 9), Some(7));
        assert_eq!(j.clear(ProcessId::new(1)), Some(9));
        assert_eq!(j.len_non_default(), 0);
    }

    #[test]
    fn first_and_second_by_frequency() {
        let j = v(vec![Some(1), Some(1), Some(1), Some(2), Some(2), Some(3)]);
        assert_eq!(j.first(), Some(&1));
        assert_eq!(j.second(), Some(&2));
        assert_eq!(j.frequency_margin(), 1);
    }

    #[test]
    fn first_tie_break_is_largest_value() {
        let j = v(vec![Some(1), Some(2), Some(1), Some(2)]);
        assert_eq!(j.first(), Some(&2));
        assert_eq!(j.second(), Some(&1));
        assert_eq!(j.frequency_margin(), 0);
    }

    #[test]
    fn second_tie_break_is_largest_value() {
        let j = v(vec![Some(5), Some(5), Some(5), Some(1), Some(3)]);
        assert_eq!(j.first(), Some(&5));
        assert_eq!(j.second(), Some(&3));
    }

    #[test]
    fn single_value_margin_is_full_count() {
        let j = v(vec![Some(4), Some(4), None]);
        assert_eq!(j.frequency_margin(), 2);
        assert_eq!(j.second(), None);
    }

    #[test]
    fn counts_with_first_and_second() {
        let j = v(vec![Some(1), Some(1), Some(1), Some(2), Some(2), None]);
        assert_eq!(j.first_with_count(), Some((&1, 3)));
        assert_eq!(j.second_with_count(), Some((&2, 2)));
        assert_eq!(View::<u64>::bottom(3).first_with_count(), None);
    }

    #[test]
    fn incremental_sets_track_leader_changes() {
        // Drive the top-two through promotions, swaps and ties; the debug
        // oracle in set() re-verifies the whole tally at every step.
        let mut j = View::<u64>::bottom(8);
        j.set(ProcessId::new(0), 5);
        assert_eq!(j.first_with_count(), Some((&5, 1)));
        j.set(ProcessId::new(1), 3);
        // Tie at one occurrence each: larger value leads.
        assert_eq!(j.first(), Some(&5));
        assert_eq!(j.second(), Some(&3));
        j.set(ProcessId::new(2), 3);
        // 3 overtakes 5.
        assert_eq!(j.first_with_count(), Some((&3, 2)));
        assert_eq!(j.second_with_count(), Some((&5, 1)));
        // A third value rises from outside the top two.
        j.set(ProcessId::new(3), 9);
        j.set(ProcessId::new(4), 9);
        j.set(ProcessId::new(5), 9);
        assert_eq!(j.first_with_count(), Some((&9, 3)));
        assert_eq!(j.second_with_count(), Some((&3, 2)));
        assert_eq!(j.frequency_margin(), 1);
    }

    #[test]
    fn overwrite_and_clear_keep_tally_exact() {
        let mut j = View::<u64>::bottom(4);
        j.set(ProcessId::new(0), 1);
        j.set(ProcessId::new(1), 1);
        j.set(ProcessId::new(2), 2);
        // Overwrite the leader's occurrence with the runner-up's value.
        assert_eq!(j.set(ProcessId::new(0), 2), Some(1));
        assert_eq!(j.first_with_count(), Some((&2, 2)));
        assert_eq!(j.second_with_count(), Some((&1, 1)));
        // Clearing the last occurrence of a value removes it entirely.
        j.clear(ProcessId::new(1));
        assert_eq!(j.second(), None);
        assert_eq!(j.count_of(&1), 0);
        // Overwriting with an equal value is a no-op on the tally.
        assert_eq!(j.set(ProcessId::new(0), 2), Some(2));
        assert_eq!(j.first_with_count(), Some((&2, 2)));
    }

    #[test]
    fn equality_and_hash_ignore_construction_order() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = v(vec![Some(1), Some(2), None]);
        let mut b = View::<u64>::bottom(3);
        b.set(ProcessId::new(1), 2);
        b.set(ProcessId::new(0), 1);
        assert_eq!(a, b);
        let hash = |view: &View<u64>| {
            let mut h = DefaultHasher::new();
            view.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn dist_treats_bottom_as_symbol() {
        let a = v(vec![Some(1), None, Some(3)]);
        let b = v(vec![Some(1), Some(2), None]);
        assert_eq!(a.dist(&b), 2);
    }

    #[test]
    fn containment_ignores_bottom_entries() {
        let small = v(vec![Some(1), None, None]);
        let big = v(vec![Some(1), Some(2), Some(3)]);
        assert!(small.is_contained_in(&big));
        assert!(!big.is_contained_in(&small));
        // A view is always contained in itself.
        assert!(big.is_contained_in(&big));
    }

    #[test]
    fn containment_fails_on_conflicting_entry() {
        let a = v(vec![Some(1), None]);
        let b = v(vec![Some(2), Some(2)]);
        assert!(!a.is_contained_in(&b));
    }

    #[test]
    fn compatibility_and_join() {
        let a = v(vec![Some(1), None, Some(3)]);
        let b = v(vec![Some(1), Some(2), None]);
        assert!(a.is_compatible_with(&b));
        let j = a.join(&b).unwrap();
        assert_eq!(j, v(vec![Some(1), Some(2), Some(3)]));

        let c = v(vec![Some(9), None, None]);
        assert!(!a.is_compatible_with(&c));
        assert!(a.join(&c).is_none());
    }

    #[test]
    fn vnk_membership() {
        let j = v(vec![Some(1), None, None, Some(2)]);
        assert!(j.in_vnk(2));
        assert!(j.in_vnk(3));
        assert!(!j.in_vnk(1));
    }

    #[test]
    fn complete_with_fills_bottom_entries() {
        let j = v(vec![Some(9), None, Some(9)]);
        let base = InputVector::new(vec![1u64, 2, 3]);
        let completed = j.complete_with(&base);
        assert_eq!(completed.as_slice(), &[9, 2, 9]);
        // The completed vector contains the view.
        assert!(j.is_contained_in(&completed.to_view()));
    }

    #[test]
    fn histogram_counts_every_value() {
        let j = v(vec![Some(1), Some(1), Some(2), None]);
        let h = j.histogram();
        assert_eq!(h[&1], 2);
        assert_eq!(h[&2], 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn iter_known_skips_bottom() {
        let j = v(vec![None, Some(5), None, Some(6)]);
        let known: Vec<_> = j.iter_known().map(|(p, v)| (p.index(), *v)).collect();
        assert_eq!(known, vec![(1, 5), (3, 6)]);
    }

    #[test]
    fn display_renders_bottom() {
        let j = v(vec![Some(1), None]);
        assert_eq!(j.to_string(), "[1, ⊥]");
    }
}
