//! Views and the view algebra of §3.1.

use crate::{ProcessId, Value};
use core::fmt;
use std::collections::HashMap;

/// A view `J ∈ (V ∪ {⊥})^n`: an input vector with up to `t` entries replaced
/// by the default value `⊥` (§3.1). Entry `i` is `None` when the view has not
/// (yet) learnt `p_i`'s proposal.
///
/// All operators the legality proofs use are provided:
///
/// * `#_v(J)` — [`count_of`](Self::count_of)
/// * `|J|` — [`len_non_default`](Self::len_non_default)
/// * `1st(J)`, `2nd(J)` — [`first`](Self::first), [`second`](Self::second)
///   (most frequent non-`⊥` value; ties broken by the **largest** value)
/// * `dist(J₁, J₂)` — [`dist`](Self::dist) (Hamming distance)
/// * `J₁ ≤ J₂` — [`is_contained_in`](Self::is_contained_in)
///
/// # Examples
///
/// ```
/// use dex_types::View;
/// let j = View::from_options(vec![Some(1u64), Some(1), Some(2), None]);
/// assert_eq!(j.count_of(&1), 2);
/// assert_eq!(j.len_non_default(), 3);
/// assert_eq!(j.first(), Some(&1));
/// assert_eq!(j.second(), Some(&2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct View<V> {
    entries: Vec<Option<V>>,
}

impl<V: Value> View<V> {
    /// The all-`⊥` view `⊥^n`.
    pub fn bottom(n: usize) -> Self {
        View {
            entries: vec![None; n],
        }
    }

    /// Builds a view directly from `(V ∪ {⊥})` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn from_options(entries: Vec<Option<V>>) -> Self {
        assert!(!entries.is_empty(), "view must be non-empty");
        View { entries }
    }

    /// The dimension `n` of the view.
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `p_i` (`None` = `⊥`).
    pub fn get(&self, id: ProcessId) -> Option<&V> {
        self.entries[id.index()].as_ref()
    }

    /// Records `p_i`'s value. Returns the previous entry.
    ///
    /// Views are maintained *incrementally* in Fig. 1 (lines 6, 11): each
    /// message reception fills in one entry.
    pub fn set(&mut self, id: ProcessId, v: V) -> Option<V> {
        self.entries[id.index()].replace(v)
    }

    /// Clears `p_i`'s entry back to `⊥`. Returns the previous entry.
    pub fn clear(&mut self, id: ProcessId) -> Option<V> {
        self.entries[id.index()].take()
    }

    /// `#_v(J)`: the number of occurrences of `v`.
    pub fn count_of(&self, v: &V) -> usize {
        self.entries
            .iter()
            .filter(|e| e.as_ref() == Some(v))
            .count()
    }

    /// `|J|`: the number of non-`⊥` entries.
    pub fn len_non_default(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The number of `⊥` entries.
    pub fn len_default(&self) -> usize {
        self.n() - self.len_non_default()
    }

    /// Whether the view belongs to `V^n_k`: at most `k` entries are `⊥`.
    pub fn in_vnk(&self, k: usize) -> bool {
        self.len_default() <= k
    }

    /// Occurrence counts of every non-`⊥` value.
    pub fn histogram(&self) -> HashMap<&V, usize> {
        let mut h = HashMap::new();
        for e in self.entries.iter().flatten() {
            *h.entry(e).or_insert(0) += 1;
        }
        h
    }

    /// `1st(J)`: the most frequent non-`⊥` value; when several values are
    /// tied for most frequent, the **largest** is selected (§3.3). `None` iff
    /// the view is all-`⊥`.
    pub fn first(&self) -> Option<&V> {
        self.histogram()
            .into_iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| va.cmp(vb)))
            .map(|(v, _)| v)
    }

    /// `2nd(J)`: the second most frequent value — `1st(Ĵ)` where `Ĵ` is `J`
    /// with every occurrence of `1st(J)` replaced by `⊥` (§3.3). `None` if
    /// fewer than two distinct values occur.
    pub fn second(&self) -> Option<&V> {
        let first = self.first()?;
        self.histogram()
            .into_iter()
            .filter(|(v, _)| *v != first)
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| va.cmp(vb)))
            .map(|(v, _)| v)
    }

    /// The frequency margin `#_1st(J)(J) − #_2nd(J)(J)`, the quantity tested
    /// by the frequency-based predicates `P1/P2` (§3.3). If only one distinct
    /// value occurs the margin is its full count; an all-`⊥` view has margin
    /// zero.
    pub fn frequency_margin(&self) -> usize {
        match self.first() {
            None => 0,
            Some(f) => {
                let cf = self.count_of(f);
                let cs = self.second().map_or(0, |s| self.count_of(s));
                cf - cs
            }
        }
    }

    /// `dist(J₁, J₂)`: the Hamming distance (`⊥` is a normal symbol: a `⊥`
    /// entry differs from any non-`⊥` entry).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dist(&self, other: &View<V>) -> usize {
        assert_eq!(self.n(), other.n(), "views must have equal dimension");
        self.entries
            .iter()
            .zip(&other.entries)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Containment `self ≤ other`: every non-`⊥` entry of `self` equals the
    /// corresponding entry of `other` (§3.1).
    pub fn is_contained_in(&self, other: &View<V>) -> bool {
        self.n() == other.n()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.is_none() || a == b)
    }

    /// Whether two views are *compatible*: some common vector `I'` contains
    /// both (used in Case 3 of Lemma 2 — this holds exactly when the views
    /// never disagree on a non-`⊥` entry).
    pub fn is_compatible_with(&self, other: &View<V>) -> bool {
        self.n() == other.n()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.is_none() || b.is_none() || a == b)
    }

    /// The least upper bound of two compatible views: each entry takes the
    /// non-`⊥` value when available. Returns `None` for incompatible views.
    pub fn join(&self, other: &View<V>) -> Option<View<V>> {
        if !self.is_compatible_with(other) {
            return None;
        }
        Some(View {
            entries: self
                .entries
                .iter()
                .zip(&other.entries)
                .map(|(a, b)| a.clone().or_else(|| b.clone()))
                .collect(),
        })
    }

    /// Completes the view into a full vector by filling `⊥` entries from
    /// `base` — the `I¹_i` / `I²_i` construction of the correctness proofs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn complete_with(&self, base: &crate::InputVector<V>) -> crate::InputVector<V> {
        assert_eq!(self.n(), base.n(), "dimension mismatch");
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                e.clone()
                    .unwrap_or_else(|| base.get(ProcessId::new(i)).clone())
            })
            .collect()
    }

    /// Iterates over `(ProcessId, Option<&V>)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<&V>)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), v.as_ref()))
    }

    /// Iterates over the non-`⊥` entries with their process ids.
    pub fn iter_known(&self) -> impl Iterator<Item = (ProcessId, &V)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ProcessId::new(i), v)))
    }

    /// Borrows the raw entries.
    pub fn as_options(&self) -> &[Option<V>] {
        &self.entries
    }
}

impl<V: Value + fmt::Display> fmt::Display for View<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "⊥")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputVector;

    fn v(entries: Vec<Option<u64>>) -> View<u64> {
        View::from_options(entries)
    }

    #[test]
    fn bottom_has_no_known_entries() {
        let j = View::<u64>::bottom(4);
        assert_eq!(j.len_non_default(), 0);
        assert_eq!(j.len_default(), 4);
        assert_eq!(j.first(), None);
        assert_eq!(j.frequency_margin(), 0);
    }

    #[test]
    fn set_and_clear_roundtrip() {
        let mut j = View::<u64>::bottom(3);
        assert_eq!(j.set(ProcessId::new(1), 7), None);
        assert_eq!(j.get(ProcessId::new(1)), Some(&7));
        assert_eq!(j.set(ProcessId::new(1), 9), Some(7));
        assert_eq!(j.clear(ProcessId::new(1)), Some(9));
        assert_eq!(j.len_non_default(), 0);
    }

    #[test]
    fn first_and_second_by_frequency() {
        let j = v(vec![Some(1), Some(1), Some(1), Some(2), Some(2), Some(3)]);
        assert_eq!(j.first(), Some(&1));
        assert_eq!(j.second(), Some(&2));
        assert_eq!(j.frequency_margin(), 1);
    }

    #[test]
    fn first_tie_break_is_largest_value() {
        let j = v(vec![Some(1), Some(2), Some(1), Some(2)]);
        assert_eq!(j.first(), Some(&2));
        assert_eq!(j.second(), Some(&1));
        assert_eq!(j.frequency_margin(), 0);
    }

    #[test]
    fn second_tie_break_is_largest_value() {
        let j = v(vec![Some(5), Some(5), Some(5), Some(1), Some(3)]);
        assert_eq!(j.first(), Some(&5));
        assert_eq!(j.second(), Some(&3));
    }

    #[test]
    fn single_value_margin_is_full_count() {
        let j = v(vec![Some(4), Some(4), None]);
        assert_eq!(j.frequency_margin(), 2);
        assert_eq!(j.second(), None);
    }

    #[test]
    fn dist_treats_bottom_as_symbol() {
        let a = v(vec![Some(1), None, Some(3)]);
        let b = v(vec![Some(1), Some(2), None]);
        assert_eq!(a.dist(&b), 2);
    }

    #[test]
    fn containment_ignores_bottom_entries() {
        let small = v(vec![Some(1), None, None]);
        let big = v(vec![Some(1), Some(2), Some(3)]);
        assert!(small.is_contained_in(&big));
        assert!(!big.is_contained_in(&small));
        // A view is always contained in itself.
        assert!(big.is_contained_in(&big));
    }

    #[test]
    fn containment_fails_on_conflicting_entry() {
        let a = v(vec![Some(1), None]);
        let b = v(vec![Some(2), Some(2)]);
        assert!(!a.is_contained_in(&b));
    }

    #[test]
    fn compatibility_and_join() {
        let a = v(vec![Some(1), None, Some(3)]);
        let b = v(vec![Some(1), Some(2), None]);
        assert!(a.is_compatible_with(&b));
        let j = a.join(&b).unwrap();
        assert_eq!(j, v(vec![Some(1), Some(2), Some(3)]));

        let c = v(vec![Some(9), None, None]);
        assert!(!a.is_compatible_with(&c));
        assert!(a.join(&c).is_none());
    }

    #[test]
    fn vnk_membership() {
        let j = v(vec![Some(1), None, None, Some(2)]);
        assert!(j.in_vnk(2));
        assert!(j.in_vnk(3));
        assert!(!j.in_vnk(1));
    }

    #[test]
    fn complete_with_fills_bottom_entries() {
        let j = v(vec![Some(9), None, Some(9)]);
        let base = InputVector::new(vec![1u64, 2, 3]);
        let completed = j.complete_with(&base);
        assert_eq!(completed.as_slice(), &[9, 2, 9]);
        // The completed vector contains the view.
        assert!(j.is_contained_in(&completed.to_view()));
    }

    #[test]
    fn histogram_counts_every_value() {
        let j = v(vec![Some(1), Some(1), Some(2), None]);
        let h = j.histogram();
        assert_eq!(h[&1], 2);
        assert_eq!(h[&2], 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn iter_known_skips_bottom() {
        let j = v(vec![None, Some(5), None, Some(6)]);
        let known: Vec<_> = j.iter_known().map(|(p, v)| (p.index(), *v)).collect();
        assert_eq!(known, vec![(1, 5), (3, 6)]);
    }

    #[test]
    fn display_renders_bottom() {
        let j = v(vec![Some(1), None]);
        assert_eq!(j.to_string(), "[1, ⊥]");
    }
}
