//! Bracha-style Reliable Broadcast (init / echo / ready).
//!
//! Not part of the DEX paper itself, but a classic sibling of Identical
//! Broadcast used by the randomized underlying consensus in
//! `dex-underlying`, and a useful comparison point: RB tolerates `n > 3t`
//! (better than IDB's `n > 4t`) at the cost of **three** point-to-point
//! steps per broadcast instead of two. RB additionally guarantees
//! *totality*: if any correct process delivers, every correct process
//! eventually delivers, even for a faulty sender.

use crate::key::InstanceKey;
use crate::Action;
use dex_types::{ProcessId, SystemConfig, Value};
use std::collections::{HashMap, HashSet};

/// A protocol message of Reliable Broadcast.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbMessage<K, V> {
    /// The sender starts broadcasting `value`.
    Init {
        /// The broadcast instance.
        key: K,
        /// The broadcast value.
        value: V,
    },
    /// First-round witness.
    Echo {
        /// The broadcast instance.
        key: K,
        /// The witnessed value.
        value: V,
    },
    /// Second-round commitment: the sender has seen enough echoes or enough
    /// readies to be sure the value is locked.
    Ready {
        /// The broadcast instance.
        key: K,
        /// The locked value.
        value: V,
    },
}

#[derive(Clone, Debug)]
struct InstanceState<V> {
    echoed: bool,
    readied: bool,
    delivered: bool,
    echoes: HashMap<V, HashSet<ProcessId>>,
    readies: HashMap<V, HashSet<ProcessId>>,
}

/// Records `from` as a witness for `value` and returns the resulting count.
/// Clones the value only for the first witness of a distinct value, so the
/// all-to-all flood only inserts sender ids.
fn witness<V: Value>(
    map: &mut HashMap<V, HashSet<ProcessId>>,
    value: &V,
    from: ProcessId,
) -> usize {
    match map.get_mut(value) {
        Some(set) => {
            set.insert(from);
            set.len()
        }
        None => {
            map.insert(value.clone(), HashSet::from([from]));
            1
        }
    }
}

impl<V> Default for InstanceState<V> {
    fn default() -> Self {
        InstanceState {
            echoed: false,
            readied: false,
            delivered: false,
            echoes: HashMap::new(),
            readies: HashMap::new(),
        }
    }
}

/// Bracha's reliable broadcast state machine (one per process).
///
/// Thresholds for `n` processes and `t` faults:
///
/// * echo on first `init` from the origin;
/// * `ready` on `> (n + t) / 2` matching echoes, or on `t + 1` matching
///   readies (amplification);
/// * deliver on `2t + 1` matching readies.
///
/// Requires `n > 3t`.
#[derive(Clone, Debug)]
pub struct ReliableBroadcast<K, V> {
    config: SystemConfig,
    instances: HashMap<K, InstanceState<V>>,
}

impl<K: InstanceKey, V: Value> ReliableBroadcast<K, V> {
    /// Creates the state machine.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (guaranteed by [`SystemConfig`]'s own
    /// invariant, asserted here for symmetry with
    /// [`crate::IdenticalBroadcast`]).
    pub fn new(config: SystemConfig) -> Self {
        assert!(
            config.n() > 3 * config.t(),
            "reliable broadcast requires n > 3t, got {config}"
        );
        ReliableBroadcast {
            config,
            instances: HashMap::new(),
        }
    }

    /// `RB-Send`: builds the `Init` message the caller must broadcast to all
    /// processes (including itself).
    pub fn rb_send(key: K, value: V) -> RbMessage<K, V> {
        RbMessage::Init { key, value }
    }

    /// Forgets all broadcast instances, keeping bounded capacity — the RB
    /// counterpart of [`IdenticalBroadcast::reset`](crate::IdenticalBroadcast::reset)
    /// for machines recycled across many slots.
    pub fn reset(&mut self) {
        self.instances.clear();
        if self.instances.capacity() > crate::RETAINED_CAPACITY {
            self.instances.shrink_to(crate::RETAINED_CAPACITY);
        }
    }

    /// Whether `key` has been delivered locally.
    pub fn has_delivered(&self, key: &K) -> bool {
        self.instances.get(key).is_some_and(|s| s.delivered)
    }

    fn echo_quorum(&self) -> usize {
        // > (n + t) / 2, i.e. floor((n + t) / 2) + 1.
        (self.config.n() + self.config.t()) / 2 + 1
    }

    /// Handles one received protocol message. `from` must be the
    /// authenticated network-level sender. The message is borrowed
    /// (multicast payloads are shared by the network layer); the machine
    /// clones only what it stores.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &RbMessage<K, V>,
    ) -> Vec<Action<K, RbMessage<K, V>, V>> {
        match msg {
            RbMessage::Init { key, value } => {
                if from != key.origin() {
                    return Vec::new();
                }
                let state = self.instances.entry(key.clone()).or_default();
                if state.echoed {
                    return Vec::new();
                }
                state.echoed = true;
                vec![Action::Broadcast(RbMessage::Echo {
                    key: key.clone(),
                    value: value.clone(),
                })]
            }
            RbMessage::Echo { key, value } => {
                let echo_quorum = self.echo_quorum();
                let state = self.instances.entry(key.clone()).or_default();
                let num = witness(&mut state.echoes, value, from);
                if num >= echo_quorum && !state.readied {
                    state.readied = true;
                    return vec![Action::Broadcast(RbMessage::Ready {
                        key: key.clone(),
                        value: value.clone(),
                    })];
                }
                Vec::new()
            }
            RbMessage::Ready { key, value } => {
                let state = self.instances.entry(key.clone()).or_default();
                let num = witness(&mut state.readies, value, from);
                let mut actions = Vec::new();
                // Thresholds written as in the literature (t + 1, 2t + 1).
                #[allow(clippy::int_plus_one)]
                if num >= self.config.t() + 1 && !state.readied {
                    state.readied = true;
                    actions.push(Action::Broadcast(RbMessage::Ready {
                        key: key.clone(),
                        value: value.clone(),
                    }));
                }
                if num >= 2 * self.config.t() + 1 && !state.delivered {
                    state.delivered = true;
                    actions.push(Action::Deliver {
                        key: key.clone(),
                        value: value.clone(),
                    });
                }
                actions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Rb = ReliableBroadcast<ProcessId, u64>;
    type Act = Action<ProcessId, RbMessage<ProcessId, u64>, u64>;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn rb(n: usize, t: usize) -> Rb {
        ReliableBroadcast::new(SystemConfig::new(n, t).unwrap())
    }

    fn echo(value: u64) -> RbMessage<ProcessId, u64> {
        RbMessage::Echo { key: p(0), value }
    }

    fn ready(value: u64) -> RbMessage<ProcessId, u64> {
        RbMessage::Ready { key: p(0), value }
    }

    #[test]
    fn init_triggers_echo_once() {
        let mut m = rb(4, 1);
        let a = m.on_message(p(0), &Rb::rb_send(p(0), 5));
        assert_eq!(a, vec![Act::Broadcast(echo(5))]);
        assert!(m.on_message(p(0), &Rb::rb_send(p(0), 5)).is_empty());
    }

    #[test]
    fn forged_init_is_ignored() {
        let mut m = rb(4, 1);
        assert!(m
            .on_message(
                p(2),
                &RbMessage::Init {
                    key: p(0),
                    value: 5
                }
            )
            .is_empty());
    }

    #[test]
    fn ready_after_echo_quorum() {
        // n = 4, t = 1: echo quorum = (4+1)/2 + 1 = 3.
        let mut m = rb(4, 1);
        assert!(m.on_message(p(1), &echo(5)).is_empty());
        assert!(m.on_message(p(2), &echo(5)).is_empty());
        let a = m.on_message(p(3), &echo(5));
        assert_eq!(a, vec![Act::Broadcast(ready(5))]);
    }

    #[test]
    fn ready_amplification_at_t_plus_one() {
        let mut m = rb(4, 1);
        assert!(m.on_message(p(1), &ready(5)).is_empty());
        let a = m.on_message(p(2), &ready(5));
        assert_eq!(a, vec![Act::Broadcast(ready(5))]);
    }

    #[test]
    fn delivery_at_2t_plus_one_readies_once() {
        let mut m = rb(4, 1);
        m.on_message(p(1), &ready(5));
        m.on_message(p(2), &ready(5));
        let a = m.on_message(p(3), &ready(5));
        assert!(a.contains(&Act::Deliver {
            key: p(0),
            value: 5
        }));
        assert!(m.has_delivered(&p(0)));
        assert!(m.on_message(p(0), &ready(5)).is_empty());
    }

    #[test]
    fn reset_pins_retained_capacity() {
        let mut m: ReliableBroadcast<(ProcessId, u64), u64> =
            ReliableBroadcast::new(SystemConfig::new(4, 1).unwrap());
        for tag in 0..(8 * crate::RETAINED_CAPACITY as u64) {
            m.on_message(
                p(1),
                &RbMessage::Echo {
                    key: (p(0), tag),
                    value: 5,
                },
            );
        }
        assert!(m.instances.capacity() > crate::RETAINED_CAPACITY);
        m.reset();
        assert!(
            m.instances.capacity() <= 2 * crate::RETAINED_CAPACITY,
            "reset must bound retained capacity, kept {}",
            m.instances.capacity()
        );
        assert!(m.instances.is_empty());
        // Still fully usable after the bounded reset.
        let a = m.on_message(p(0), &ReliableBroadcast::rb_send((p(0), 0u64), 5));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn conflicting_values_do_not_mix_counts() {
        let mut m = rb(7, 2);
        m.on_message(p(1), &ready(5));
        m.on_message(p(2), &ready(6));
        m.on_message(p(3), &ready(5));
        // 2 readies for 5 and 1 for 6: amplification threshold is t+1 = 3,
        // so nothing fires yet.
        assert!(!m.has_delivered(&p(0)));
    }
}
