//! Broadcast instance keys.

use core::fmt::Debug;
use core::hash::Hash;
use dex_types::ProcessId;

/// Identifies one broadcast instance and names its originating process.
///
/// The paper's Identical Broadcast is *single-shot per sender*: the
/// `first-echo(j)` / `first-accept(j)` guards are indexed by the sender `j`
/// alone, which is exactly what Algorithm DEX needs (each process broadcasts
/// one proposal). Round-based protocols reuse the primitive by extending the
/// key with a tag — `(sender, round)` — giving one independent single-shot
/// instance per tag.
///
/// The origin matters for safety: a correct process only honours an `init`
/// message whose *network sender* equals the key's origin, so a Byzantine
/// process cannot open a broadcast instance on someone else's behalf.
///
/// # Examples
///
/// ```
/// use dex_broadcast::InstanceKey;
/// use dex_types::ProcessId;
///
/// let plain: ProcessId = ProcessId::new(2);
/// assert_eq!(plain.origin(), ProcessId::new(2));
///
/// let tagged = (ProcessId::new(2), 7u32);
/// assert_eq!(tagged.origin(), ProcessId::new(2));
/// ```
pub trait InstanceKey: Clone + Eq + Hash + Debug + Send + 'static {
    /// The process this broadcast instance originates from.
    fn origin(&self) -> ProcessId;
}

impl InstanceKey for ProcessId {
    fn origin(&self) -> ProcessId {
        *self
    }
}

impl<T> InstanceKey for (ProcessId, T)
where
    T: Clone + Eq + Hash + Debug + Send + 'static,
{
    fn origin(&self) -> ProcessId {
        self.0
    }
}

impl<T, U> InstanceKey for (ProcessId, T, U)
where
    T: Clone + Eq + Hash + Debug + Send + 'static,
    U: Clone + Eq + Hash + Debug + Send + 'static,
{
    fn origin(&self) -> ProcessId {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origins_are_extracted() {
        assert_eq!(ProcessId::new(4).origin(), ProcessId::new(4));
        assert_eq!((ProcessId::new(4), "tag").origin(), ProcessId::new(4));
        assert_eq!((ProcessId::new(4), 1u8, 2u8).origin(), ProcessId::new(4));
    }
}
