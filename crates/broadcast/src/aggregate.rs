//! Echo aggregation: coalesces the per-instance `(echo, m, j)` flood into
//! batched multicasts.
//!
//! IDB costs n² point-to-point echoes per step: every process reacts to an
//! `init` with one `Dest::All` echo per broadcast instance, and in pipelined
//! runs a single delivery tick can open a whole window of instances at
//! once. The [`EchoAggregator`] sits between the broadcast state machines
//! and the outbox: instead of multicasting each echo as its own message, a
//! process *offers* the echo to the aggregator and arms a 1-tick flush
//! timer. When the timer fires, everything offered since the last flush
//! leaves as one `EchoBatch { entries }` multicast riding the same
//! `Dest::All` zero-clone slab path the individual echoes would have used.
//! Receivers unbatch in entry order, so the delivered-echo *multiset* — and
//! therefore every witness map, threshold crossing, and decision — is
//! exactly what the unbatched protocol produces.
//!
//! **Dedup.** The aggregator keeps a `seen` set of every instance key it
//! has ever batched an echo for, so a process never re-echoes an instance
//! it already witnessed — the cross-recycling analogue of the `echoed` flag
//! inside each [`IdenticalBroadcast`](crate::IdenticalBroadcast) instance.
//! Pipelined replicas purge keys below the retirement floor via
//! [`EchoAggregator::retain_seen`] as the window slides.
//!
//! **Depth buckets.** The paper measures cost in causal communication
//! steps, and the trace checker pins the step scheme exactly (a two-step
//! decision must arrive at depth 2, not "at least 2"). A local flush timer
//! is not a communication step, so batching must not inflate the causal
//! depth of the echoes it carries. Entries are therefore bucketed by the
//! depth at which the unbatched echo would have been sent; the flush emits
//! one batch per depth bucket (buckets in ascending depth order, entries in
//! offer order within a bucket), and the runtime dispatches each batch at
//! its bucket's exact depth. Every batched echo arrives at precisely the
//! depth its unbatched counterpart would have had.
//!
//! The aggregator is transport-agnostic plumbing like the broadcast state
//! machines themselves: it never sends anything, it only buffers and hands
//! back `(depth, entries)` batches for the actor layer to multicast.

use dex_types::StepDepth;
use std::collections::HashSet;
use std::hash::Hash;

/// How many pooled entry buffers / seen-set slots a recycled aggregator may
/// retain. Long pipelined campaigns recycle aggregator state with the slot
/// instance pool; bounding retained capacity keeps memory from ratcheting
/// monotonically with campaign length (same discipline as
/// [`IdenticalBroadcast::reset`](crate::IdenticalBroadcast::reset)).
pub const RETAINED_CAPACITY: usize = 1024;

/// Buffers echoes offered within one delivery tick and flushes them as
/// depth-bucketed batches (see the module docs).
///
/// `K` is the broadcast instance key, `V` the echoed value — the same pair
/// the underlying `Echo { key, value }` message carries.
#[derive(Clone, Debug, Default)]
pub struct EchoAggregator<K, V> {
    /// Pending entries, bucketed by would-be send depth. Tiny in practice:
    /// one delivery tick rarely spans more than two distinct depths.
    pending: Vec<(StepDepth, Vec<(K, V)>)>,
    /// Every instance key this process has ever offered — the
    /// cross-recycling dedup line.
    seen: HashSet<K>,
    /// Whether a flush tick is already in flight.
    armed: bool,
}

impl<K: Eq + Hash + Clone, V> EchoAggregator<K, V> {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        EchoAggregator {
            pending: Vec::new(),
            seen: HashSet::new(),
            armed: false,
        }
    }

    /// Offers an echo for batching at the depth it would have been sent
    /// unbatched. Returns `true` if the entry was newly buffered, `false`
    /// if this instance key was already witnessed (duplicate suppressed).
    pub fn offer(&mut self, key: K, value: V, depth: StepDepth) -> bool {
        if !self.seen.insert(key.clone()) {
            return false;
        }
        match self.pending.iter_mut().find(|(d, _)| *d == depth) {
            Some((_, bucket)) => bucket.push((key, value)),
            None => self.pending.push((depth, vec![(key, value)])),
        }
        true
    }

    /// Arms the flush tick. Returns `true` when the caller should schedule
    /// a flush timer — i.e. there is pending work and no tick in flight.
    pub fn try_arm(&mut self) -> bool {
        if self.armed || self.pending.is_empty() {
            return false;
        }
        self.armed = true;
        true
    }

    /// Whether any entries await a flush.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Takes every pending batch, one per depth bucket, sorted ascending by
    /// depth (entries keep offer order within their bucket) and disarms the
    /// flush tick. Deterministic: depends only on the offer sequence.
    pub fn take_batches(&mut self) -> Vec<(StepDepth, Vec<(K, V)>)> {
        self.armed = false;
        let mut batches = std::mem::take(&mut self.pending);
        batches.sort_by_key(|(depth, _)| *depth);
        batches
    }

    /// Drops `seen` keys that fail the predicate — pipelined replicas purge
    /// keys for retired slots here so the dedup set tracks the live window
    /// instead of growing with the log.
    pub fn retain_seen<F: FnMut(&K) -> bool>(&mut self, keep: F) {
        self.seen.retain(keep);
    }

    /// Clears all state for reuse, bounding retained capacity so recycling
    /// across many slots cannot ratchet memory (see [`RETAINED_CAPACITY`]).
    pub fn reset(&mut self) {
        self.pending.clear();
        if self.pending.capacity() > RETAINED_CAPACITY {
            self.pending.shrink_to(RETAINED_CAPACITY);
        }
        self.seen.clear();
        if self.seen.capacity() > RETAINED_CAPACITY {
            self.seen.shrink_to(RETAINED_CAPACITY);
        }
        self.armed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(steps: u32) -> StepDepth {
        StepDepth::new(steps)
    }

    #[test]
    fn offers_dedup_by_key() {
        let mut agg: EchoAggregator<u32, u64> = EchoAggregator::new();
        assert!(agg.offer(7, 700, d(2)));
        assert!(!agg.offer(7, 701, d(2)), "same key must be suppressed");
        assert!(agg.offer(8, 800, d(2)));
        let batches = agg.take_batches();
        assert_eq!(batches, vec![(d(2), vec![(7, 700), (8, 800)])]);
    }

    #[test]
    fn dedup_survives_flushes() {
        let mut agg: EchoAggregator<u32, u64> = EchoAggregator::new();
        assert!(agg.offer(7, 700, d(2)));
        let _ = agg.take_batches();
        assert!(
            !agg.offer(7, 700, d(4)),
            "a flushed instance stays witnessed"
        );
        assert!(agg.take_batches().is_empty());
    }

    #[test]
    fn batches_sort_by_depth_and_keep_offer_order() {
        let mut agg: EchoAggregator<u32, u64> = EchoAggregator::new();
        agg.offer(3, 30, d(4));
        agg.offer(1, 10, d(2));
        agg.offer(2, 20, d(4));
        agg.offer(4, 40, d(2));
        let batches = agg.take_batches();
        assert_eq!(
            batches,
            vec![
                (d(2), vec![(1, 10), (4, 40)]),
                (d(4), vec![(3, 30), (2, 20)]),
            ]
        );
        assert!(!agg.has_pending());
    }

    #[test]
    fn arms_once_per_flush_cycle() {
        let mut agg: EchoAggregator<u32, u64> = EchoAggregator::new();
        assert!(!agg.try_arm(), "nothing pending: no tick");
        agg.offer(1, 10, d(2));
        assert!(agg.try_arm());
        agg.offer(2, 20, d(2));
        assert!(!agg.try_arm(), "tick already in flight");
        let _ = agg.take_batches();
        agg.offer(3, 30, d(2));
        assert!(agg.try_arm(), "flush disarms");
    }

    #[test]
    fn retain_seen_reopens_purged_keys() {
        let mut agg: EchoAggregator<u32, u64> = EchoAggregator::new();
        agg.offer(1, 10, d(2));
        agg.offer(2, 20, d(2));
        let _ = agg.take_batches();
        agg.retain_seen(|k| *k != 1);
        assert!(agg.offer(1, 11, d(3)), "purged key echoes again");
        assert!(!agg.offer(2, 20, d(3)), "retained key stays witnessed");
    }

    #[test]
    fn reset_bounds_retained_capacity() {
        let mut agg: EchoAggregator<u64, u64> = EchoAggregator::new();
        // Ratchet the seen set far past the retention bound, as a long
        // pipelined campaign would across thousands of recycled slots.
        for k in 0..(8 * RETAINED_CAPACITY as u64) {
            agg.offer(k, k, d(2));
        }
        let _ = agg.take_batches();
        assert!(agg.seen.capacity() > RETAINED_CAPACITY);
        agg.reset();
        assert!(
            agg.seen.capacity() <= 2 * RETAINED_CAPACITY,
            "reset must bound seen-set capacity, kept {}",
            agg.seen.capacity()
        );
        assert!(agg.pending.capacity() <= RETAINED_CAPACITY);
        assert!(!agg.armed && agg.pending.is_empty() && agg.seen.is_empty());
    }
}
