//! Broadcast primitives: the paper's **Identical Broadcast** (appendix,
//! Fig. 3) and a Bracha-style **Reliable Broadcast**.
//!
//! Identical Broadcast (IDB) guarantees that all correct processes deliver
//! the *same* message for a given sender, **even when the sender is
//! Byzantine and equivocates** (Fig. 2). Its specification:
//!
//! * **Termination** — if a correct process `Id-Send`s `m`, every correct
//!   process eventually `Id-Receive`s `m`.
//! * **Agreement** — two correct processes never `Id-Receive` different
//!   messages for the same sender.
//! * **Validity** — each correct process `Id-Receive`s exactly once per
//!   sender, and only if that sender `Id-Send`-ed the message (when the
//!   sender is correct).
//!
//! The implementation needs `n > 4t` (Theorem 4) and costs exactly **two
//! point-to-point steps** per IDB step: an `init` flood followed by an
//! `echo` flood with amplification at `n − 2t` and acceptance at `n − t`.
//!
//! Both primitives are implemented as *transport-agnostic state machines*:
//! callers feed in received messages and get back a list of
//! [`Action`]s (messages to broadcast, deliveries to consume). This lets the
//! same code run inside the `dex-simnet` discrete-event simulator, the
//! threaded `dex-threadnet` runtime, and plain unit tests.
//!
//! Broadcast instances are identified by an [`InstanceKey`] carrying the
//! originating process: [`ProcessId`](dex_types::ProcessId) itself for
//! single-shot use (as in Algorithm DEX), or `(ProcessId, tag)` for repeated
//! use (as in the round-based underlying consensus).
//!
//! # Examples
//!
//! Driving IDB by hand for `n = 5, t = 1` (so `n − 2t = 3`, `n − t = 4`):
//!
//! ```
//! use dex_broadcast::{Action, IdbMessage, IdenticalBroadcast};
//! use dex_types::{ProcessId, SystemConfig};
//!
//! let cfg = SystemConfig::new(5, 1)?;
//! let mut idb: IdenticalBroadcast<ProcessId, u64> = IdenticalBroadcast::new(cfg);
//!
//! // p0 Id-Sends 7: it broadcasts the init message.
//! let init = IdenticalBroadcast::<ProcessId, u64>::id_send(ProcessId::new(0), 7);
//!
//! // Our process receives the init from p0 and echoes.
//! let actions = idb.on_message(ProcessId::new(0), &init);
//! assert!(matches!(actions[0], Action::Broadcast(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// Quorum thresholds are written exactly as in the papers (t + 1, 2t + 1, …).
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

mod aggregate;
mod idb;
mod key;
mod reliable;

pub use aggregate::{EchoAggregator, RETAINED_CAPACITY};
pub use idb::{IdbMessage, IdenticalBroadcast};
pub use key::InstanceKey;
pub use reliable::{RbMessage, ReliableBroadcast};

/// An output of a broadcast state machine.
///
/// The transport layer executes `Broadcast` actions (sending the message to
/// **all** processes, including the local one) and hands `Deliver` actions to
/// the application layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action<K, M, V> {
    /// Broadcast this protocol message to every process.
    Broadcast(M),
    /// The broadcast identified by `key` delivered `value`
    /// (`Id-Receive` / `RB-Deliver`).
    Deliver {
        /// The instance that completed.
        key: K,
        /// The delivered value.
        value: V,
    },
}
