//! Algorithm IDB — Identical Broadcast (paper appendix, Fig. 3).

use crate::key::InstanceKey;
use crate::Action;
use dex_types::{ProcessId, SystemConfig, Value};
use std::collections::{HashMap, HashSet};

/// A protocol message of the Identical Broadcast algorithm.
///
/// `Init` corresponds to the `(init, m)` flood sent by `Id-Send`; `Echo`
/// corresponds to `(echo, m, j)`, where the broadcast instance (and thus its
/// origin `j`) is carried in `key`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IdbMessage<K, V> {
    /// `(init, m)` — the sender starts broadcasting `m`.
    Init {
        /// The broadcast instance.
        key: K,
        /// The broadcast value.
        value: V,
    },
    /// `(echo, m, j)` — the sender acts as a witness for instance `key`.
    Echo {
        /// The broadcast instance being witnessed.
        key: K,
        /// The witnessed value.
        value: V,
    },
}

/// Per-instance state.
#[derive(Clone, Debug)]
struct InstanceState<V> {
    /// `first-echo(j)`: set once this process has sent its (single) echo.
    echoed: bool,
    /// `first-accept(j)`: set once `Id-Receive` has fired.
    accepted: bool,
    /// Distinct witnesses per value.
    witnesses: HashMap<V, HashSet<ProcessId>>,
}

impl<V> Default for InstanceState<V> {
    fn default() -> Self {
        InstanceState {
            echoed: false,
            accepted: false,
            witnesses: HashMap::new(),
        }
    }
}

/// The Identical Broadcast state machine of one process (Fig. 3).
///
/// To broadcast, call [`id_send`](Self::id_send) and transmit the returned
/// `Init` to every process (including yourself). Feed every received
/// [`IdbMessage`] into [`on_message`](Self::on_message) and execute the
/// returned [`Action`]s:
///
/// * on first `(init, m)` from the instance's origin → echo `(echo, m, j)`,
/// * on `n − 2t` matching echoes → echo too (witness amplification; this is
///   what lets echoes complete even when the faulty origin sends its `init`
///   to only part of the system),
/// * on `n − t` matching echoes → `Id-Receive(m)` (at most once per
///   instance).
///
/// Requires `n > 4t` (Theorem 4).
#[derive(Clone, Debug)]
pub struct IdenticalBroadcast<K, V> {
    config: SystemConfig,
    instances: HashMap<K, InstanceState<V>>,
}

impl<K: InstanceKey, V: Value> IdenticalBroadcast<K, V> {
    /// Creates the state machine.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 4t` — running IDB below its resilience bound would
    /// silently forfeit the agreement property, so this is rejected loudly.
    pub fn new(config: SystemConfig) -> Self {
        assert!(
            config.supports_identical_broadcast(),
            "identical broadcast requires n > 4t, got {config}"
        );
        IdenticalBroadcast {
            config,
            instances: HashMap::new(),
        }
    }

    /// `Id-Send(m)`: builds the `Init` message the caller must broadcast to
    /// all processes (including itself).
    pub fn id_send(key: K, value: V) -> IdbMessage<K, V> {
        IdbMessage::Init { key, value }
    }

    /// Handles one received protocol message, returning the actions to
    /// perform. `from` must be the authenticated network-level sender. The
    /// message is borrowed (multicast payloads are shared by the network
    /// layer); the machine clones only what it stores.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &IdbMessage<K, V>,
    ) -> Vec<Action<K, IdbMessage<K, V>, V>> {
        match msg {
            IdbMessage::Init { key, value } => self.on_init(from, key, value),
            IdbMessage::Echo { key, value } => self.on_echo(from, key, value),
        }
    }

    /// Forgets all broadcast instances, keeping bounded witness-map
    /// capacity.
    ///
    /// This is the recycling hook for pipelined replication: one IDB state
    /// machine is reused across many consecutive log slots, so the
    /// per-instance witness maps are cleared in place instead of the whole
    /// machine being reallocated per slot. Retained capacity is bounded by
    /// [`RETAINED_CAPACITY`](crate::RETAINED_CAPACITY): a slot that opened
    /// unusually many instances (e.g. a long UC round tail) must not pin
    /// that high-water mark for the rest of a long pipelined campaign.
    pub fn reset(&mut self) {
        self.instances.clear();
        if self.instances.capacity() > crate::RETAINED_CAPACITY {
            self.instances.shrink_to(crate::RETAINED_CAPACITY);
        }
    }

    /// Whether this process has already accepted (Id-Received) for `key`.
    pub fn has_accepted(&self, key: &K) -> bool {
        self.instances.get(key).is_some_and(|s| s.accepted)
    }

    /// Number of distinct witnesses seen for `(key, value)`.
    pub fn witness_count(&self, key: &K, value: &V) -> usize {
        self.instances
            .get(key)
            .and_then(|s| s.witnesses.get(value))
            .map_or(0, HashSet::len)
    }

    fn on_init(
        &mut self,
        from: ProcessId,
        key: &K,
        value: &V,
    ) -> Vec<Action<K, IdbMessage<K, V>, V>> {
        // Only the instance's origin may open it; anything else is a forgery
        // (possible only from Byzantine processes) and is ignored.
        if from != key.origin() {
            return Vec::new();
        }
        let state = self.instances.entry(key.clone()).or_default();
        if state.echoed {
            return Vec::new(); // first-echo(j) guard
        }
        state.echoed = true;
        vec![Action::Broadcast(IdbMessage::Echo {
            key: key.clone(),
            value: value.clone(),
        })]
    }

    fn on_echo(
        &mut self,
        from: ProcessId,
        key: &K,
        value: &V,
    ) -> Vec<Action<K, IdbMessage<K, V>, V>> {
        let state = self.instances.entry(key.clone()).or_default();
        // Clone the value only for the first witness of a distinct value;
        // the all-to-all echo flood then only inserts sender ids.
        let num = match state.witnesses.get_mut(value) {
            Some(set) => {
                set.insert(from);
                set.len()
            }
            None => {
                state.witnesses.insert(value.clone(), HashSet::from([from]));
                1
            }
        };
        let mut actions = Vec::new();
        if num >= self.config.echo_threshold() && !state.echoed {
            // Witness amplification: enough echoes convince us even without
            // having seen the init directly.
            state.echoed = true;
            actions.push(Action::Broadcast(IdbMessage::Echo {
                key: key.clone(),
                value: value.clone(),
            }));
        }
        if num >= self.config.quorum() && !state.accepted {
            // first-accept(j) guard.
            state.accepted = true;
            actions.push(Action::Deliver {
                key: key.clone(),
                value: value.clone(),
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Idb = IdenticalBroadcast<ProcessId, u64>;
    type Act = Action<ProcessId, IdbMessage<ProcessId, u64>, u64>;

    fn cfg(n: usize, t: usize) -> SystemConfig {
        SystemConfig::new(n, t).unwrap()
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn echo(key: usize, value: u64) -> IdbMessage<ProcessId, u64> {
        IdbMessage::Echo { key: p(key), value }
    }

    #[test]
    #[should_panic(expected = "n > 4t")]
    fn rejects_insufficient_resilience() {
        let _ = Idb::new(cfg(4, 1));
    }

    #[test]
    fn init_from_origin_triggers_single_echo() {
        let mut idb = Idb::new(cfg(5, 1));
        let init = Idb::id_send(p(0), 7);
        let a1 = idb.on_message(p(0), &init);
        assert_eq!(a1, vec![Act::Broadcast(echo(0, 7))]);
        // Duplicate init: first-echo guard suppresses a second echo.
        let a2 = idb.on_message(p(0), &init);
        assert!(a2.is_empty());
    }

    #[test]
    fn init_forgery_is_ignored() {
        let mut idb = Idb::new(cfg(5, 1));
        // p3 claims to open p0's instance — rejected.
        let forged = IdbMessage::Init {
            key: p(0),
            value: 9,
        };
        assert!(idb.on_message(p(3), &forged).is_empty());
        assert_eq!(idb.witness_count(&p(0), &9), 0);
    }

    #[test]
    fn amplification_at_n_minus_2t() {
        // n = 5, t = 1: n − 2t = 3 echoes make us echo without an init.
        let mut idb = Idb::new(cfg(5, 1));
        assert!(idb.on_message(p(1), &echo(0, 7)).is_empty());
        assert!(idb.on_message(p(2), &echo(0, 7)).is_empty());
        let a = idb.on_message(p(3), &echo(0, 7));
        assert_eq!(a, vec![Act::Broadcast(echo(0, 7))]);
    }

    #[test]
    fn acceptance_at_n_minus_t_exactly_once() {
        // n = 5, t = 1: n − t = 4 echoes accept.
        let mut idb = Idb::new(cfg(5, 1));
        for i in 1..4 {
            idb.on_message(p(i), &echo(0, 7));
        }
        let a = idb.on_message(p(4), &echo(0, 7));
        assert!(a.contains(&Act::Deliver {
            key: p(0),
            value: 7
        }));
        assert!(idb.has_accepted(&p(0)));
        // A fifth echo changes nothing: first-accept guard.
        let a2 = idb.on_message(p(0), &echo(0, 7));
        assert!(a2.is_empty());
    }

    #[test]
    fn duplicate_echoes_from_same_witness_count_once() {
        let mut idb = Idb::new(cfg(5, 1));
        for _ in 0..10 {
            idb.on_message(p(1), &echo(0, 7));
        }
        assert_eq!(idb.witness_count(&p(0), &7), 1);
        assert!(!idb.has_accepted(&p(0)));
    }

    #[test]
    fn conflicting_echo_values_are_tracked_separately() {
        let mut idb = Idb::new(cfg(9, 2));
        idb.on_message(p(1), &echo(0, 7));
        idb.on_message(p(2), &echo(0, 8));
        assert_eq!(idb.witness_count(&p(0), &7), 1);
        assert_eq!(idb.witness_count(&p(0), &8), 1);
    }

    #[test]
    fn echo_after_amplified_echo_is_suppressed() {
        // Once we echoed (via init), amplification must not echo again.
        let mut idb = Idb::new(cfg(5, 1));
        idb.on_message(p(0), &Idb::id_send(p(0), 7));
        for i in 1..4 {
            let a = idb.on_message(p(i), &echo(0, 7));
            for act in &a {
                assert!(!matches!(act, Act::Broadcast(_)), "unexpected re-echo");
            }
        }
    }

    #[test]
    fn tagged_instances_are_independent() {
        let mut idb: IdenticalBroadcast<(ProcessId, u32), u64> = IdenticalBroadcast::new(cfg(5, 1));
        let k1 = (p(0), 1u32);
        let k2 = (p(0), 2u32);
        for i in 1..=4 {
            idb.on_message(p(i), &IdbMessage::Echo { key: k1, value: 7 });
        }
        assert!(idb.has_accepted(&k1));
        assert!(!idb.has_accepted(&k2));
    }

    #[test]
    fn reset_pins_retained_capacity() {
        // One pathological slot opens far more tagged instances than the
        // retention bound (a long UC round tail); recycling must not pin
        // that high-water mark.
        let mut idb: IdenticalBroadcast<(ProcessId, u64), u64> = IdenticalBroadcast::new(cfg(5, 1));
        for tag in 0..(8 * crate::RETAINED_CAPACITY as u64) {
            idb.on_message(
                p(1),
                &IdbMessage::Echo {
                    key: (p(0), tag),
                    value: 7,
                },
            );
        }
        assert!(idb.instances.capacity() > crate::RETAINED_CAPACITY);
        idb.reset();
        assert!(
            idb.instances.capacity() <= 2 * crate::RETAINED_CAPACITY,
            "reset must bound retained capacity, kept {}",
            idb.instances.capacity()
        );
        assert!(idb.instances.is_empty());
        // Still fully usable after the bounded reset.
        for i in 1..=4 {
            idb.on_message(
                p(i),
                &IdbMessage::Echo {
                    key: (p(0), 0),
                    value: 9,
                },
            );
        }
        assert!(idb.has_accepted(&(p(0), 0)));
    }

    #[test]
    fn accepts_even_when_origin_never_contacted_us() {
        // A faulty origin sends init to only n − 2t others; their echoes and
        // the amplification still reach acceptance everywhere. Here we just
        // check the local machine accepts from echoes alone.
        let mut idb = Idb::new(cfg(9, 2));
        let mut delivered = false;
        for i in 1..=7 {
            for act in idb.on_message(p(i), &echo(0, 3)) {
                if matches!(act, Act::Deliver { .. }) {
                    delivered = true;
                }
            }
        }
        assert!(delivered);
    }
}
