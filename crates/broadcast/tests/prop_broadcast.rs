//! Property-based tests of the broadcast state machines: arbitrary
//! (adversarial) message sequences can never forge deliveries, duplicate
//! them, or make one machine emit unboundedly.

use dex_broadcast::{Action, IdbMessage, IdenticalBroadcast, RbMessage, ReliableBroadcast};
use dex_types::{ProcessId, SystemConfig};
use proptest::prelude::*;

const N: usize = 9;
const T: usize = 2;

#[derive(Clone, Debug)]
enum Input {
    Init {
        from: usize,
        origin: usize,
        value: u64,
    },
    Echo {
        from: usize,
        origin: usize,
        value: u64,
    },
    Ready {
        from: usize,
        origin: usize,
        value: u64,
    },
}

fn input_strategy() -> impl Strategy<Value = Input> {
    (0usize..N, 0usize..N, 0u64..3, 0u8..3).prop_map(|(from, origin, value, kind)| match kind {
        0 => Input::Init {
            from,
            origin,
            value,
        },
        1 => Input::Echo {
            from,
            origin,
            value,
        },
        _ => Input::Ready {
            from,
            origin,
            value,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Feed an arbitrary message soup into one IDB machine; invariants:
    /// at most one delivery per instance, every delivered value had at
    /// least `n − t` distinct witnesses, at most one *broadcast* action per
    /// instance (the single echo), and inits from non-origins do nothing.
    #[test]
    fn idb_machine_invariants(inputs in proptest::collection::vec(input_strategy(), 1..200)) {
        let cfg = SystemConfig::new(N, T).unwrap();
        let mut idb: IdenticalBroadcast<ProcessId, u64> = IdenticalBroadcast::new(cfg);
        let mut deliveries: Vec<(ProcessId, u64)> = Vec::new();
        let mut echoes_sent: Vec<ProcessId> = Vec::new();
        for input in &inputs {
            let (from, msg) = match *input {
                Input::Init { from, origin, value } => (
                    ProcessId::new(from),
                    IdbMessage::Init { key: ProcessId::new(origin), value },
                ),
                Input::Echo { from, origin, value } | Input::Ready { from, origin, value } => (
                    ProcessId::new(from),
                    IdbMessage::Echo { key: ProcessId::new(origin), value },
                ),
            };
            for action in idb.on_message(from, &msg) {
                match action {
                    Action::Broadcast(IdbMessage::Echo { key, .. }) => echoes_sent.push(key),
                    Action::Broadcast(IdbMessage::Init { .. }) => {
                        prop_assert!(false, "the machine never emits inits");
                    }
                    Action::Deliver { key, value } => {
                        prop_assert!(
                            idb.witness_count(&key, &value) >= cfg.quorum(),
                            "delivery without a quorum of witnesses"
                        );
                        deliveries.push((key, value));
                    }
                }
            }
        }
        // At most one delivery and one echo per instance.
        let mut keys: Vec<ProcessId> = deliveries.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "double delivery");
        let mut es = echoes_sent.clone();
        es.sort_unstable();
        let before = es.len();
        es.dedup();
        prop_assert_eq!(before, es.len(), "double echo for one instance");
    }

    /// Same soup against the reliable-broadcast machine.
    #[test]
    fn rb_machine_invariants(inputs in proptest::collection::vec(input_strategy(), 1..200)) {
        let cfg = SystemConfig::new(N, T).unwrap();
        let mut rb: ReliableBroadcast<ProcessId, u64> = ReliableBroadcast::new(cfg);
        let mut delivered: Vec<ProcessId> = Vec::new();
        let mut readies: Vec<ProcessId> = Vec::new();
        for input in &inputs {
            let (from, msg) = match *input {
                Input::Init { from, origin, value } => (
                    ProcessId::new(from),
                    RbMessage::Init { key: ProcessId::new(origin), value },
                ),
                Input::Echo { from, origin, value } => (
                    ProcessId::new(from),
                    RbMessage::Echo { key: ProcessId::new(origin), value },
                ),
                Input::Ready { from, origin, value } => (
                    ProcessId::new(from),
                    RbMessage::Ready { key: ProcessId::new(origin), value },
                ),
            };
            for action in rb.on_message(from, &msg) {
                match action {
                    Action::Broadcast(RbMessage::Ready { key, .. }) => readies.push(key),
                    Action::Broadcast(RbMessage::Echo { .. }) => {}
                    Action::Broadcast(RbMessage::Init { .. }) => {
                        prop_assert!(false, "the machine never emits inits");
                    }
                    Action::Deliver { key, .. } => delivered.push(key),
                }
            }
        }
        delivered.sort_unstable();
        let before = delivered.len();
        delivered.dedup();
        prop_assert_eq!(before, delivered.len(), "double delivery");
        readies.sort_unstable();
        let before = readies.len();
        readies.dedup();
        prop_assert_eq!(before, readies.len(), "double ready per instance");
    }

    /// Cross-machine agreement: two correct IDB machines fed (possibly
    /// different interleavings of) the same global message pool never
    /// deliver different values for the same instance.
    #[test]
    fn idb_agreement_across_machines(
        inputs in proptest::collection::vec(input_strategy(), 1..150),
        order in proptest::collection::vec(any::<prop::sample::Index>(), 0..150),
    ) {
        let cfg = SystemConfig::new(N, T).unwrap();
        let to_msg = |input: &Input| match *input {
            Input::Init { from, origin, value } => (
                ProcessId::new(from),
                IdbMessage::Init { key: ProcessId::new(origin), value },
            ),
            Input::Echo { from, origin, value } | Input::Ready { from, origin, value } => (
                ProcessId::new(from),
                IdbMessage::Echo { key: ProcessId::new(origin), value },
            ),
        };
        let mut a: IdenticalBroadcast<ProcessId, u64> = IdenticalBroadcast::new(cfg);
        let mut b: IdenticalBroadcast<ProcessId, u64> = IdenticalBroadcast::new(cfg);
        let mut da = std::collections::HashMap::new();
        let mut db = std::collections::HashMap::new();
        for input in &inputs {
            let (from, msg) = to_msg(input);
            for action in a.on_message(from, &msg) {
                if let Action::Deliver { key, value } = action {
                    da.insert(key, value);
                }
            }
        }
        // b sees a permuted sub-multiset of the same pool.
        for idx in &order {
            let input = idx.get(&inputs);
            let (from, msg) = to_msg(input);
            for action in b.on_message(from, &msg) {
                if let Action::Deliver { key, value } = action {
                    db.insert(key, value);
                }
            }
        }
        // NOTE: raw message soups can contain equivocated echo sets that no
        // run with ≤ t Byzantine processes produces, so cross-machine
        // agreement is only guaranteed when each sender echoes one value —
        // enforce that precondition by filtering.
        let mut seen: std::collections::HashMap<(ProcessId, ProcessId), u64> =
            std::collections::HashMap::new();
        let honest = inputs.iter().all(|i| match *i {
            Input::Echo { from, origin, value } | Input::Ready { from, origin, value } => {
                *seen.entry((ProcessId::new(from), ProcessId::new(origin))).or_insert(value)
                    == value
            }
            Input::Init { .. } => true,
        });
        if honest {
            for (key, va) in &da {
                if let Some(vb) = db.get(key) {
                    prop_assert_eq!(va, vb, "agreement violated on {:?}", key);
                }
            }
        }
    }
}
