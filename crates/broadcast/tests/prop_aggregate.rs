//! Property tests for the echo-aggregation layer: batched and unbatched
//! IDB runs deliver the same echo multisets and Id-Receive outcomes, and
//! the aggregation-off path is wire-identical to a build that never heard
//! of batching.
//!
//! Batching coalesces messages, so a batched run and an unbatched run of
//! the same seed are *different valid schedules* (the delay RNG stream
//! shifts). The assertions here are therefore restricted to what the
//! protocol makes schedule-independent:
//!
//! * fault-free, every correct process Id-Receives every origin's value —
//!   so the delivered multiset and per-origin outcomes must match exactly
//!   across the two runs; under lockstep delays every delivery in both
//!   runs must land at exactly causal depth 2 (the flush timer is not a
//!   communication step);
//! * under chaos (duplication) or an equivocating sender, only the runs'
//!   *internal* invariants are asserted: at-most-once delivery per
//!   instance and IDB's identical-delivery property across processes.
//!
//! The window dimension multiplexes several concurrent IDB instances per
//! origin through one shared aggregator — the pipelined-replication shape,
//! where one delivery tick opens a whole window of slots at once.

use dex_broadcast::{Action, EchoAggregator, IdbMessage, IdenticalBroadcast};
use dex_simnet::{Actor, Context, DelayModel, Dest, FaultSchedule, MsgClass, NetStats, Simulation};
use dex_types::{ProcessId, StepDepth, SystemConfig};
use proptest::prelude::*;

/// One IDB instance key: `(slot, origin)` — `window` slots run concurrently.
type Key = (u8, ProcessId);

#[derive(Clone, Debug)]
enum Wire {
    /// Protocol traffic of one slot's IDB instance.
    Slot {
        slot: u8,
        inner: IdbMessage<ProcessId, u64>,
    },
    /// Coalesced echoes across all slots offered within one delivery tick.
    Batch { entries: Vec<(u8, ProcessId, u64)> },
    /// Self-addressed flush timer (never crosses the wire).
    FlushTick,
}

/// What a node delivered: (slot, origin, value, causal depth at delivery).
type Delivery = (u8, ProcessId, u64, StepDepth);

enum Node {
    Correct {
        /// Per-slot proposal values.
        values: Vec<u64>,
        machines: Vec<IdenticalBroadcast<ProcessId, u64>>,
        agg: Option<EchoAggregator<Key, u64>>,
        delivered: Vec<Delivery>,
    },
    /// Sends value `a` to the first half and `b` to the rest on every slot;
    /// always unbatched — receivers must handle mixed traffic.
    Equivocator { a: u64, b: u64, slots: u8 },
}

impl Node {
    fn correct(cfg: SystemConfig, values: Vec<u64>, aggregate: bool) -> Self {
        Node::Correct {
            machines: values
                .iter()
                .map(|_| IdenticalBroadcast::new(cfg))
                .collect(),
            values,
            agg: aggregate.then(EchoAggregator::new),
            delivered: Vec::new(),
        }
    }

    fn deliveries(&self) -> &[Delivery] {
        match self {
            Node::Correct { delivered, .. } => delivered,
            _ => &[],
        }
    }

    fn handle_slot(
        slot: u8,
        machines: &mut [IdenticalBroadcast<ProcessId, u64>],
        agg: &mut Option<EchoAggregator<Key, u64>>,
        delivered: &mut Vec<Delivery>,
        from: ProcessId,
        inner: &IdbMessage<ProcessId, u64>,
        ctx: &mut Context<'_, Wire>,
    ) {
        for action in machines[slot as usize].on_message(from, inner) {
            match action {
                Action::Broadcast(m) => match (agg.as_mut(), m) {
                    (Some(agg), IdbMessage::Echo { key, value }) => {
                        agg.offer((slot, key), value, ctx.depth().next());
                    }
                    (_, m) => ctx.broadcast(Wire::Slot { slot, inner: m }),
                },
                Action::Deliver { key, value } => {
                    delivered.push((slot, key, value, ctx.depth()));
                }
            }
        }
    }
}

impl Actor for Node {
    type Msg = Wire;

    fn on_start(&mut self, ctx: &mut Context<'_, Wire>) {
        let me = ctx.me();
        match self {
            Node::Correct { values, .. } => {
                for (slot, v) in values.clone().into_iter().enumerate() {
                    ctx.broadcast(Wire::Slot {
                        slot: slot as u8,
                        inner: IdenticalBroadcast::id_send(me, v),
                    });
                }
            }
            Node::Equivocator { a, b, slots } => {
                let n = ctx.n();
                for slot in 0..*slots {
                    for i in 0..n {
                        let v = if i < n / 2 { *a } else { *b };
                        ctx.send(
                            ProcessId::new(i),
                            Wire::Slot {
                                slot,
                                inner: IdbMessage::Init { key: me, value: v },
                            },
                        );
                    }
                }
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Wire, ctx: &mut Context<'_, Wire>) {
        let Node::Correct {
            machines,
            agg,
            delivered,
            ..
        } = self
        else {
            return;
        };
        match msg {
            Wire::Slot { slot, inner } => {
                Node::handle_slot(*slot, machines, agg, delivered, from, inner, ctx);
            }
            Wire::Batch { entries } => {
                // Unbatch deterministically in entry order: each entry is
                // exactly the echo the sender would have multicast.
                for (slot, origin, value) in entries {
                    let inner = IdbMessage::Echo {
                        key: *origin,
                        value: *value,
                    };
                    Node::handle_slot(*slot, machines, agg, delivered, from, &inner, ctx);
                }
            }
            Wire::FlushTick => {
                if from != ctx.me() {
                    return;
                }
                let Some(agg) = agg.as_mut() else { return };
                for (depth, entries) in agg.take_batches() {
                    let entries: Vec<(u8, ProcessId, u64)> = entries
                        .into_iter()
                        .map(|((slot, origin), value)| (slot, origin, value))
                        .collect();
                    ctx.send_dest_at(Dest::All, Wire::Batch { entries }, depth);
                }
                return;
            }
        }
        if let Some(agg) = agg.as_mut() {
            if agg.try_arm() {
                ctx.send_self_after(1, Wire::FlushTick);
            }
        }
    }

    fn msg_class(msg: &Wire) -> MsgClass {
        match msg {
            Wire::Slot {
                inner: IdbMessage::Init { .. },
                ..
            } => MsgClass::Init,
            Wire::Slot {
                inner: IdbMessage::Echo { .. },
                ..
            } => MsgClass::Echo,
            Wire::Batch { entries } => MsgClass::Batch(entries.len() as u32),
            Wire::FlushTick => MsgClass::Other,
        }
    }
}

struct RunOut {
    /// Sorted (process, slot, origin, value) deliveries — the multiset.
    delivered: Vec<(usize, u8, ProcessId, u64)>,
    /// Depth of every echo-driven delivery (origin ≠ the delivering init).
    depths: Vec<StepDepth>,
    stats: NetStats,
}

fn run(
    cfg: SystemConfig,
    inputs: &[Vec<u64>],
    equivocator: Option<(u64, u64)>,
    aggregate: bool,
    dup: f64,
    delay: DelayModel,
    seed: u64,
) -> RunOut {
    let slots = inputs[0].len() as u8;
    let nodes: Vec<Node> = (0..cfg.n())
        .map(|i| {
            if i == cfg.n() - 1 {
                if let Some((a, b)) = equivocator {
                    return Node::Equivocator { a, b, slots };
                }
            }
            Node::correct(cfg, inputs[i].clone(), aggregate)
        })
        .collect();
    let faults = if dup > 0.0 {
        FaultSchedule::new().dup_all(dup)
    } else {
        FaultSchedule::none()
    };
    let mut sim = Simulation::builder(nodes)
        .seed(seed)
        .delay(delay)
        .faults(faults)
        .build();
    assert!(sim.run(5_000_000).quiescent, "IDB must drain");
    let mut delivered = Vec::new();
    let mut depths = Vec::new();
    for (i, node) in sim.actors().iter().enumerate() {
        for &(slot, origin, value, depth) in node.deliveries() {
            delivered.push((i, slot, origin, value));
            depths.push(depth);
        }
    }
    delivered.sort();
    RunOut {
        delivered,
        depths,
        stats: sim.stats().clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Fault-free: the batched run must reproduce the unbatched run's
    /// delivered-echo multiset and Id-Receive outcomes exactly, spend
    /// strictly fewer sends, and keep echo batches on the zero-clone path.
    /// Under lockstep (constant) delays amplification never fires, so every
    /// delivery in *both* runs must land at exactly depth 2 — the flush
    /// timer adds virtual time, never a causal step. Under random delays
    /// depth is schedule-dependent (an amplified echo adds a hop), so only
    /// the ≥ 2 lower bound — an echo-threshold crossing needs an echo hop —
    /// is asserted there.
    #[test]
    fn batched_runs_deliver_identical_multisets_fault_free(
        n in prop_oneof![Just(6usize), Just(7), Just(10)],
        window in 1u8..=4,
        lockstep in any::<bool>(),
        raw in proptest::collection::vec(0u64..3, 40),
        seed in 0u64..1_000,
    ) {
        let cfg = SystemConfig::new(n, 1).unwrap();
        let inputs: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..window).map(|s| raw[(i + s as usize * n) % raw.len()]).collect())
            .collect();
        let delay = if lockstep {
            DelayModel::Constant(3)
        } else {
            DelayModel::Uniform { min: 1, max: 10 }
        };
        let plain = run(cfg, &inputs, None, false, 0.0, delay.clone(), seed);
        let batched = run(cfg, &inputs, None, true, 0.0, delay, seed);
        // Fault-free, every correct process delivers every origin's value
        // in every slot — schedule-independent, so the multisets agree.
        prop_assert_eq!(&plain.delivered, &batched.delivered);
        prop_assert_eq!(plain.delivered.len(), n * n * window as usize);
        for d in plain.depths.iter().chain(&batched.depths) {
            prop_assert!(*d >= StepDepth::new(2), "delivery without an echo hop: {d:?}");
            if lockstep {
                prop_assert_eq!(*d, StepDepth::new(2), "batching inflated causal depth");
            }
        }
        prop_assert_eq!(batched.stats.sent_echo, 0, "all echoes must batch");
        prop_assert!(batched.stats.echoes_batched > 0);
        prop_assert!(batched.stats.sent < plain.stats.sent);
        prop_assert_eq!(batched.stats.payload_clones, 0, "batches ride the slab");
    }

    /// Chaos and equivocation arms: schedules diverge, so assert only the
    /// runs' internal invariants — at-most-once delivery per instance and
    /// IDB's identical-delivery guarantee, with the (never-batching)
    /// equivocator exercising receivers against mixed wire traffic.
    #[test]
    fn batched_runs_keep_idb_invariants_under_chaos(
        window in 1u8..=3,
        dup in prop_oneof![Just(0.0f64), Just(0.2), Just(0.4)],
        equiv in prop_oneof![Just(None), Just(Some((1u64, 2u64)))],
        seed in 0u64..1_000,
    ) {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let inputs: Vec<Vec<u64>> = (0..7).map(|i| vec![i as u64 % 2; window as usize]).collect();
        let out = run(cfg, &inputs, equiv, true, dup, DelayModel::Uniform { min: 1, max: 10 }, seed);
        // At-most-once per (process, slot, origin) despite duplication.
        let mut keys: Vec<(usize, u8, ProcessId)> =
            out.delivered.iter().map(|&(p, s, o, _)| (p, s, o)).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "an instance delivered twice");
        // Identical delivery: any two correct processes that deliver for
        // the same (slot, origin) deliver the same value.
        let mut by_instance: std::collections::HashMap<(u8, ProcessId), u64> =
            std::collections::HashMap::new();
        for &(_, slot, origin, value) in &out.delivered {
            let prior = by_instance.insert((slot, origin), value);
            prop_assert!(
                prior.is_none() || prior == Some(value),
                "identical delivery violated for slot {slot} origin {origin}"
            );
        }
        prop_assert_eq!(out.stats.sent_echo, 0, "correct nodes never send bare echoes");
    }
}

/// The aggregation-off path must be wire-identical to a node that has no
/// aggregation plumbing at all: same sends, same classes, same deliveries,
/// for fixed seeds. The off path arms no timers and draws no extra RNG,
/// so the full `NetStats` struct — including per-depth delivery counts —
/// must match bit for bit.
#[test]
fn aggregation_off_is_wire_identical_to_the_plain_build() {
    let cfg = SystemConfig::new(7, 1).unwrap();
    let inputs: Vec<Vec<u64>> = (0..7).map(|i| vec![i as u64 % 3, 1]).collect();
    for seed in [0, 31, 42, 1999] {
        let off = run(
            cfg,
            &inputs,
            None,
            false,
            0.0,
            DelayModel::Uniform { min: 1, max: 10 },
            seed,
        );
        let off2 = run(
            cfg,
            &inputs,
            None,
            false,
            0.0,
            DelayModel::Uniform { min: 1, max: 10 },
            seed,
        );
        assert_eq!(
            off.stats, off2.stats,
            "seed {seed}: off path must be deterministic"
        );
        assert_eq!(off.delivered, off2.delivered);
        assert_eq!(
            off.stats.sent_batch, 0,
            "seed {seed}: no batches on the off path"
        );
        assert_eq!(off.stats.echoes_batched, 0);
        // The echo flood is fully unbatched: n² echo multicasts (n per
        // correct process per slot), each fanned out to n recipients.
        assert_eq!(off.stats.sent_echo, 2 * 7 * 7 * 7, "seed {seed}");
    }
}
