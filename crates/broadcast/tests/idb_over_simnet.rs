//! Integration: Identical Broadcast running over the discrete-event
//! simulator, against equivocating and silent Byzantine senders.
//!
//! This reproduces the scenario of Fig. 2 in the paper: a faulty `p_3` sends
//! *different* messages to different processes, yet all correct processes
//! `Id-Receive` the same message (or nothing at all) for it.

use dex_broadcast::{Action, IdbMessage, IdenticalBroadcast};
use dex_simnet::{Actor, Context, DelayModel, Simulation};
use dex_types::{ProcessId, StepDepth, SystemConfig};

type Msg = IdbMessage<ProcessId, u64>;

/// What a node delivered: (origin, value, causal depth at delivery).
type Delivery = (ProcessId, u64, StepDepth);

enum Node {
    Correct {
        value: u64,
        machine: IdenticalBroadcast<ProcessId, u64>,
        delivered: Vec<Delivery>,
    },
    /// Sends value `a` to the first half and `b` to the rest; echoes
    /// conflicting values too.
    Equivocator { a: u64, b: u64 },
    /// Sends nothing, ever.
    Silent,
}

impl Node {
    fn correct(cfg: SystemConfig, value: u64) -> Self {
        Node::Correct {
            value,
            machine: IdenticalBroadcast::new(cfg),
            delivered: Vec::new(),
        }
    }

    fn deliveries(&self) -> &[Delivery] {
        match self {
            Node::Correct { delivered, .. } => delivered,
            _ => &[],
        }
    }
}

impl Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.me();
        match self {
            Node::Correct { value, .. } => {
                ctx.broadcast(IdenticalBroadcast::id_send(me, *value));
            }
            Node::Equivocator { a, b } => {
                let n = ctx.n();
                for i in 0..n {
                    let v = if i < n / 2 { *a } else { *b };
                    ctx.send(ProcessId::new(i), IdbMessage::Init { key: me, value: v });
                }
            }
            Node::Silent => {}
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Msg, ctx: &mut Context<'_, Msg>) {
        match self {
            Node::Correct {
                machine, delivered, ..
            } => {
                for action in machine.on_message(from, msg) {
                    match action {
                        Action::Broadcast(m) => ctx.broadcast(m),
                        Action::Deliver { key, value } => {
                            delivered.push((key, value, ctx.depth()));
                        }
                    }
                }
            }
            Node::Equivocator { a, b } => {
                // Echo conflicting values for every opened instance (reacting
                // to inits only keeps the behaviour finite).
                if let IdbMessage::Init { key, .. } = msg {
                    let n = ctx.n();
                    for i in 0..n {
                        let v = if i % 2 == 0 { *a } else { *b };
                        ctx.send(
                            ProcessId::new(i),
                            IdbMessage::Echo {
                                key: *key,
                                value: v,
                            },
                        );
                    }
                }
            }
            Node::Silent => {}
        }
    }
}

fn run(nodes: Vec<Node>, seed: u64) -> Simulation<Node> {
    let mut sim = Simulation::builder(nodes)
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 20 })
        .build();
    let outcome = sim.run(2_000_000);
    assert!(outcome.quiescent, "IDB must terminate");
    sim
}

fn correct_ids(sim: &Simulation<Node>) -> Vec<ProcessId> {
    (0..sim.n())
        .map(ProcessId::new)
        .filter(|p| matches!(sim.actor(*p), Node::Correct { .. }))
        .collect()
}

#[test]
fn all_correct_termination_and_validity() {
    // n = 5, t = 1, nobody faulty: everyone delivers everyone's value.
    let cfg = SystemConfig::new(5, 1).unwrap();
    for seed in 0..20 {
        let nodes: Vec<Node> = (0..5).map(|i| Node::correct(cfg, 100 + i as u64)).collect();
        let sim = run(nodes, seed);
        for p in correct_ids(&sim) {
            let deliveries = sim.actor(p).deliveries();
            assert_eq!(deliveries.len(), 5, "seed {seed}: all broadcasts delivered");
            for origin in 0..5 {
                let (_, v, _) = deliveries
                    .iter()
                    .find(|(k, _, _)| k.index() == origin)
                    .expect("delivery from each origin");
                assert_eq!(*v, 100 + origin as u64, "validity: value unaltered");
            }
        }
    }
}

#[test]
fn idb_costs_exactly_two_steps() {
    // Step-exact assertion, so run in synchronous lockstep: under random
    // delays a process can collect n − 2t echoes before the origin's init
    // reaches it, and its witness-amplified echo then delivers at depth 3.
    let cfg = SystemConfig::new(5, 1).unwrap();
    let nodes: Vec<Node> = (0..5).map(|i| Node::correct(cfg, i as u64)).collect();
    let mut sim = Simulation::builder(nodes)
        .seed(3)
        .delay(DelayModel::Constant(1))
        .build();
    let outcome = sim.run(2_000_000);
    assert!(outcome.quiescent, "IDB must terminate");
    for p in correct_ids(&sim) {
        for (_, _, depth) in sim.actor(p).deliveries() {
            assert_eq!(
                *depth,
                StepDepth::new(2),
                "one IDB step = two point-to-point steps (Fig. 3)"
            );
        }
    }
}

#[test]
fn equivocating_sender_cannot_split_correct_processes() {
    // Fig. 2: p4 equivocates between 7 and 9. Whatever correct processes
    // deliver for p4, they must deliver the same value.
    let cfg = SystemConfig::new(5, 1).unwrap();
    for seed in 0..50 {
        let mut nodes: Vec<Node> = (0..4).map(|i| Node::correct(cfg, i as u64)).collect();
        nodes.push(Node::Equivocator { a: 7, b: 9 });
        let sim = run(nodes, seed);

        let mut delivered_for_p4 = Vec::new();
        for p in correct_ids(&sim) {
            for (k, v, _) in sim.actor(p).deliveries() {
                if k.index() == 4 {
                    delivered_for_p4.push(*v);
                }
            }
            // Correct senders' broadcasts are always delivered.
            for origin in 0..4 {
                assert!(
                    sim.actor(p)
                        .deliveries()
                        .iter()
                        .any(|(k, v, _)| k.index() == origin && *v == origin as u64),
                    "seed {seed}: correct broadcast lost"
                );
            }
        }
        // Agreement: all deliveries for the equivocator carry one value.
        delivered_for_p4.dedup();
        assert!(
            delivered_for_p4.len() <= 1,
            "seed {seed}: correct processes delivered different values {delivered_for_p4:?}"
        );
    }
}

#[test]
fn silent_sender_only_blocks_its_own_broadcast() {
    let cfg = SystemConfig::new(5, 1).unwrap();
    for seed in 0..10 {
        let mut nodes: Vec<Node> = (0..4).map(|i| Node::correct(cfg, i as u64)).collect();
        nodes.push(Node::Silent);
        let sim = run(nodes, seed);
        for p in correct_ids(&sim) {
            let deliveries = sim.actor(p).deliveries();
            // Exactly the 4 correct broadcasts are delivered.
            assert_eq!(deliveries.len(), 4, "seed {seed}");
            assert!(deliveries.iter().all(|(k, _, _)| k.index() != 4));
        }
    }
}

#[test]
fn validity_exactly_once_per_sender() {
    let cfg = SystemConfig::new(9, 2).unwrap();
    for seed in 0..10 {
        let mut nodes: Vec<Node> = (0..7).map(|i| Node::correct(cfg, i as u64)).collect();
        nodes.push(Node::Equivocator { a: 50, b: 60 });
        nodes.push(Node::Equivocator { a: 70, b: 80 });
        let sim = run(nodes, seed);
        for p in correct_ids(&sim) {
            let deliveries = sim.actor(p).deliveries();
            let mut origins: Vec<usize> = deliveries.iter().map(|(k, _, _)| k.index()).collect();
            let before = origins.len();
            origins.sort_unstable();
            origins.dedup();
            assert_eq!(before, origins.len(), "seed {seed}: duplicate delivery");
        }
    }
}

#[test]
fn deterministic_replay_under_same_seed() {
    let cfg = SystemConfig::new(5, 1).unwrap();
    let collect = |seed: u64| {
        let mut nodes: Vec<Node> = (0..4).map(|i| Node::correct(cfg, i as u64)).collect();
        nodes.push(Node::Equivocator { a: 1, b: 2 });
        let sim = run(nodes, seed);
        correct_ids(&sim)
            .into_iter()
            .map(|p| sim.actor(p).deliveries().to_vec())
            .collect::<Vec<_>>()
    };
    assert_eq!(collect(11), collect(11));
}
