//! Property-based tests of the campaign population model: per-seed
//! determinism of the Zipf/hot-key generator, domain containment, the
//! hot-mass and bias knobs, and exactness of contention-phase schedule
//! boundaries for arbitrary schedules.

use dex_workloads::{ContentionPhase, InputGenerator, PhaseSchedule, PopulationModel};
use proptest::prelude::*;
use rand::rngs::StdRng;

fn model_strategy() -> impl Strategy<Value = PopulationModel> {
    (1u64..5_000, 0.0f64..2.0, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(clients, skew, hot, bias)| {
        PopulationModel {
            clients,
            skew,
            hot,
            bias,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn population_draws_are_deterministic_per_seed(
        model in model_strategy(),
        n in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let population = model.compile();
        let a = population.generate(n, &mut StdRng::seed_from_u64(seed));
        let b = population.generate(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn population_draws_stay_inside_the_client_domain(
        model in model_strategy(),
        n in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let clients = model.clients;
        let input = model.compile().generate(n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(input.as_slice().iter().all(|&v| v < clients));
    }

    #[test]
    fn different_seeds_eventually_differ(
        // Full hot mass or full bias pins every draw; the strategy stays
        // clear of both, and of tiny domains where collisions are cheap.
        model in (101u64..5_000, 0.0f64..2.0, 0.0f64..0.85, 0.0f64..0.85).prop_map(
            |(clients, skew, hot, bias)| PopulationModel { clients, skew, hot, bias },
        ),
        seed in 0u64..10_000,
    ) {
        let population = model.compile();
        let base = population.generate(16, &mut StdRng::seed_from_u64(seed));
        let differs = (1..=20).any(|off| {
            population.generate(16, &mut StdRng::seed_from_u64(seed + off)) != base
        });
        prop_assert!(differs, "20 consecutive seeds drew identical vectors");
    }

    #[test]
    fn full_bias_sends_every_process_to_its_home_key(
        clients in 100u64..100_000,
        n in 2usize..16,
        seed in 0u64..1_000,
    ) {
        let model = PopulationModel { clients, skew: 1.0, hot: 0.5, bias: 1.0 };
        let population = model.compile();
        let input = population.generate(n, &mut StdRng::seed_from_u64(seed));
        for (i, v) in input.as_slice().iter().enumerate() {
            prop_assert_eq!(*v, population.home(i));
        }
    }

    #[test]
    fn phase_boundaries_are_exact_for_arbitrary_schedules(
        lens in proptest::collection::vec(1usize..6, 1..5),
        probe in 0usize..200,
    ) {
        let phases: Vec<ContentionPhase> = lens
            .iter()
            .enumerate()
            .map(|(i, &runs)| {
                ContentionPhase::new(&format!("phase{i}"), PopulationModel::CALM, runs)
            })
            .collect();
        let schedule = PhaseSchedule::new(phases);
        let cycle = schedule.cycle_runs();
        prop_assert_eq!(cycle, lens.iter().sum::<usize>());
        // phase_index walks the cumulative boundaries, cyclically.
        let offset = probe % cycle;
        let mut expected = 0;
        let mut acc = 0;
        for (i, &runs) in lens.iter().enumerate() {
            if offset < acc + runs {
                expected = i;
                break;
            }
            acc += runs;
        }
        prop_assert_eq!(schedule.phase_index(probe), expected);
        prop_assert_eq!(schedule.phase_index(probe), schedule.phase_index(probe + cycle));
        prop_assert_eq!(
            schedule.phase_at(probe).label,
            format!("phase{expected}")
        );
    }
}
