//! Million-client campaign workload model.
//!
//! The paper's average-case claim is about *populations*, not single input
//! vectors: a replicated service fronting millions of clients sees skewed
//! request popularity (a few hot keys dominate), contention that varies
//! over time (calm traffic, flash crowds, dispersal), and per-replica bias
//! (each replica tends to propose requests from its own region first).
//! This module models exactly that and compiles it down to the repo's
//! deterministic seeded [`InputGenerator`] machinery, so a campaign over
//! thousands of seeds is still replayable run by run.
//!
//! Three layers:
//!
//! * [`PopulationModel`] — the symbolic description: client count, Zipf
//!   popularity skew, extra hot-key mass, per-process proposal bias.
//! * [`ClientPopulation`] — the *compiled* sampler: the Zipf cumulative
//!   table over all clients is precomputed **once** (O(clients)) and every
//!   per-proposal draw is then a binary search (O(log clients)). A million
//!   clients costs one 8 MB table per phase, not per run.
//! * [`ContentionPhase`] / [`PhaseSchedule`] — time-varying contention: a
//!   campaign's run sequence walks through phases (e.g. calm → flash crowd
//!   → dispersed), each with its own population model; the phase of run
//!   `i` is a pure function of `i`.
//!
//! Determinism: a compiled population draws only from the `StdRng` handed
//! to [`generate`](InputGenerator::generate); the cumulative table is a
//! pure function of the model. Same seed ⇒ same input vector, regardless
//! of which worker thread runs the sample (pinned by the proptest suite in
//! `tests/prop_campaign.rs`).

use crate::InputGenerator;
use dex_types::InputVector;
use rand::rngs::StdRng;

/// Symbolic description of a client population: who proposes what, how
/// often, and how contended it is.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PopulationModel {
    /// Number of distinct client request ids (the proposal-value domain).
    pub clients: u64,
    /// Zipf popularity exponent over client ranks (`s → 0` uniform chaos,
    /// large `s` one dominant request).
    pub skew: f64,
    /// Extra probability mass pinned on the single hottest id — the
    /// "everyone sees the same breaking request" regime, layered on top of
    /// the Zipf tail.
    pub hot: f64,
    /// Probability that a process proposes its *own* preferred client id
    /// (a deterministic per-process "home" key) instead of a popularity
    /// draw — regional bias working against convergence.
    pub bias: f64,
}

impl PopulationModel {
    /// A calm, convergent population: strong hot key, little bias.
    pub const CALM: PopulationModel = PopulationModel {
        clients: 1_000_000,
        skew: 1.2,
        hot: 0.9,
        bias: 0.0,
    };

    /// A contended flash-crowd population: several keys competing, some
    /// regional bias.
    pub const CONTENDED: PopulationModel = PopulationModel {
        clients: 1_000_000,
        skew: 0.8,
        hot: 0.3,
        bias: 0.2,
    };

    /// A dispersed population: weak skew, strong bias — the worst case for
    /// any fast path.
    pub const DISPERSED: PopulationModel = PopulationModel {
        clients: 1_000_000,
        skew: 0.2,
        hot: 0.0,
        bias: 0.5,
    };

    /// Compiles the model into a sampler, precomputing the Zipf cumulative
    /// table. Do this once per phase, not per run.
    ///
    /// # Panics
    ///
    /// Panics on an empty client population or probabilities outside
    /// `[0, 1]`.
    pub fn compile(&self) -> ClientPopulation {
        assert!(self.clients > 0, "population must be non-empty");
        assert!(
            (0.0..=1.0).contains(&self.hot),
            "hot probability out of [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.bias),
            "bias probability out of [0, 1]"
        );
        // Cumulative (unnormalized) Zipf mass over ranks 1..=clients, in a
        // fixed summation order so the table is bit-reproducible.
        let mut cumulative = Vec::with_capacity(self.clients as usize);
        let mut total = 0.0;
        for rank in 1..=self.clients {
            total += 1.0 / (rank as f64).powf(self.skew);
            cumulative.push(total);
        }
        ClientPopulation {
            model: *self,
            cumulative,
        }
    }
}

/// A compiled [`PopulationModel`]: the shared, read-only sampler a whole
/// campaign phase draws its input vectors from.
#[derive(Clone, Debug)]
pub struct ClientPopulation {
    model: PopulationModel,
    /// `cumulative[k]` = unnormalized Zipf mass of ranks `1..=k+1`; the
    /// last entry is the total mass.
    cumulative: Vec<f64>,
}

impl ClientPopulation {
    /// The model this sampler was compiled from.
    pub fn model(&self) -> &PopulationModel {
        &self.model
    }

    /// The deterministic "home" client id of process `i` — the key its
    /// bias draws propose. Spread multiplicatively so neighbouring
    /// processes do not share a home key.
    pub fn home(&self, process: usize) -> u64 {
        (process as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1)
            % self.model.clients
    }

    /// One popularity draw: client id in `0..clients`, id 0 being the
    /// hottest rank.
    fn draw_popular(&self, rng: &mut StdRng) -> u64 {
        let total = *self.cumulative.last().expect("non-empty population");
        let x = rng.next_f64() * total;
        self.cumulative.partition_point(|&c| c <= x) as u64
    }

    /// One proposal of process `i`: bias draw, then hot-key draw, then the
    /// Zipf tail. Exactly three RNG decisions per proposal, in a fixed
    /// order, so replay is trivially stable.
    pub fn propose(&self, process: usize, rng: &mut StdRng) -> u64 {
        let biased = rng.random_bool(self.model.bias);
        let hot = rng.random_bool(self.model.hot);
        let zipf = self.draw_popular(rng);
        if biased {
            self.home(process)
        } else if hot {
            0
        } else {
            zipf
        }
    }
}

impl InputGenerator for ClientPopulation {
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64> {
        (0..n).map(|i| self.propose(i, rng)).collect()
    }

    fn name(&self) -> String {
        format!(
            "population(|C|={}, s={:.2}, hot={:.2}, bias={:.2})",
            self.model.clients, self.model.skew, self.model.hot, self.model.bias
        )
    }
}

/// One stretch of a campaign's run sequence with a fixed population model.
#[derive(Clone, PartialEq, Debug)]
pub struct ContentionPhase {
    /// Short label for artifacts and reports (e.g. `"calm"`).
    pub label: String,
    /// The population active during this phase.
    pub model: PopulationModel,
    /// How many consecutive runs the phase covers (must be ≥ 1).
    pub runs: usize,
}

impl ContentionPhase {
    /// Convenience constructor.
    pub fn new(label: &str, model: PopulationModel, runs: usize) -> Self {
        assert!(runs > 0, "a phase must cover at least one run");
        ContentionPhase {
            label: label.to_string(),
            model,
            runs,
        }
    }
}

/// A cyclic schedule of contention phases over a campaign's run indices.
///
/// Run `i` belongs to the phase containing `i mod total_runs()` — the
/// schedule tiles an arbitrarily long seed sequence, so "2 000 seeds of
/// calm/crowd/dispersed in proportion 2:1:1" is one schedule regardless of
/// the campaign's size.
#[derive(Clone, PartialEq, Debug)]
pub struct PhaseSchedule {
    phases: Vec<ContentionPhase>,
}

impl PhaseSchedule {
    /// Builds a schedule from its phases.
    ///
    /// # Panics
    ///
    /// Panics on an empty phase list.
    pub fn new(phases: Vec<ContentionPhase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        PhaseSchedule { phases }
    }

    /// The canonical three-phase day: calm traffic, a flash crowd, then
    /// dispersal, in proportion 2:1:1.
    pub fn canonical(runs_per_cycle: usize) -> Self {
        assert!(
            runs_per_cycle >= 4,
            "the canonical cycle needs ≥ 4 runs (2:1:1 split)"
        );
        let quarter = runs_per_cycle / 4;
        PhaseSchedule::new(vec![
            ContentionPhase::new("calm", PopulationModel::CALM, runs_per_cycle - 2 * quarter),
            ContentionPhase::new("crowd", PopulationModel::CONTENDED, quarter),
            ContentionPhase::new("dispersed", PopulationModel::DISPERSED, quarter),
        ])
    }

    /// The phases, in schedule order.
    pub fn phases(&self) -> &[ContentionPhase] {
        &self.phases
    }

    /// Length of one schedule cycle in runs.
    pub fn cycle_runs(&self) -> usize {
        self.phases.iter().map(|p| p.runs).sum()
    }

    /// The phase index of run `i` (cyclic).
    pub fn phase_index(&self, run: usize) -> usize {
        let mut offset = run % self.cycle_runs();
        for (idx, phase) in self.phases.iter().enumerate() {
            if offset < phase.runs {
                return idx;
            }
            offset -= phase.runs;
        }
        unreachable!("offset < cycle_runs by construction")
    }

    /// The phase of run `i` (cyclic).
    pub fn phase_at(&self, run: usize) -> &ContentionPhase {
        &self.phases[self.phase_index(run)]
    }

    /// Compiles every phase's population once, in schedule order — the
    /// shared read-only samplers a campaign's workers draw from.
    pub fn compile(&self) -> Vec<ClientPopulation> {
        self.phases.iter().map(|p| p.model.compile()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn compiled_population_is_deterministic_per_seed() {
        let pop = PopulationModel::CONTENDED.compile();
        let a = pop.generate(13, &mut rng(7));
        let b = pop.generate(13, &mut rng(7));
        assert_eq!(a, b);
        // A fresh compilation of the same model draws identically too.
        let again = PopulationModel::CONTENDED.compile();
        assert_eq!(again.generate(13, &mut rng(7)), a);
    }

    #[test]
    fn hot_mass_concentrates_on_the_hottest_id() {
        let pop = PopulationModel {
            clients: 1000,
            skew: 1.0,
            hot: 0.9,
            bias: 0.0,
        }
        .compile();
        let input = pop.generate(500, &mut rng(3));
        // 90% pinned hot mass plus the Zipf head: id 0 dominates clearly.
        assert!(input.count_of(&0) > 400, "got {}", input.count_of(&0));
    }

    #[test]
    fn bias_proposes_the_per_process_home_key() {
        let pop = PopulationModel {
            clients: 1_000_000,
            skew: 1.0,
            hot: 0.0,
            bias: 1.0,
        }
        .compile();
        let input = pop.generate(9, &mut rng(4));
        for (i, v) in input.as_slice().iter().enumerate() {
            assert_eq!(*v, pop.home(i), "process {i}");
        }
        // Home keys are spread: no two of the first 9 processes collide.
        let mut homes: Vec<u64> = (0..9).map(|i| pop.home(i)).collect();
        homes.sort_unstable();
        homes.dedup();
        assert_eq!(homes.len(), 9);
    }

    #[test]
    fn draws_stay_in_the_client_domain() {
        let pop = PopulationModel {
            clients: 17,
            skew: 0.0,
            hot: 0.1,
            bias: 0.1,
        }
        .compile();
        let input = pop.generate(200, &mut rng(5));
        assert!(input.as_slice().iter().all(|v| *v < 17));
    }

    #[test]
    fn zero_skew_is_near_uniform() {
        let pop = PopulationModel {
            clients: 10,
            skew: 0.0,
            hot: 0.0,
            bias: 0.0,
        }
        .compile();
        let input = pop.generate(1000, &mut rng(6));
        let max = (0..10).map(|v| input.count_of(&v)).max().unwrap();
        assert!(max < 200, "got {max}");
    }

    #[test]
    fn phase_schedule_boundaries_are_exact() {
        let sched = PhaseSchedule::new(vec![
            ContentionPhase::new("a", PopulationModel::CALM, 3),
            ContentionPhase::new("b", PopulationModel::CONTENDED, 1),
            ContentionPhase::new("c", PopulationModel::DISPERSED, 2),
        ]);
        assert_eq!(sched.cycle_runs(), 6);
        // Exact boundaries: runs 0-2 → a, 3 → b, 4-5 → c.
        let expect = [0, 0, 0, 1, 2, 2];
        for (run, want) in expect.iter().enumerate() {
            assert_eq!(sched.phase_index(run), *want, "run {run}");
        }
        // Cyclic: the second cycle repeats the first exactly.
        for run in 0..6 {
            assert_eq!(sched.phase_index(run + 6), sched.phase_index(run));
        }
        assert_eq!(sched.phase_at(3).label, "b");
        assert_eq!(sched.phase_at(5).label, "c");
    }

    #[test]
    fn canonical_schedule_splits_two_one_one() {
        let sched = PhaseSchedule::canonical(8);
        assert_eq!(sched.cycle_runs(), 8);
        assert_eq!(sched.phases().len(), 3);
        assert_eq!(sched.phase_at(0).label, "calm");
        assert_eq!(sched.phase_at(3).label, "calm");
        assert_eq!(sched.phase_at(4).label, "crowd");
        assert_eq!(sched.phase_at(6).label, "dispersed");
        assert_eq!(sched.compile().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_is_rejected() {
        let _ = PhaseSchedule::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_phase_is_rejected() {
        let _ = ContentionPhase::new("x", PopulationModel::CALM, 0);
    }
}
