//! Seeded input-vector generators.
//!
//! Each generator produces the *input vector* (§2.3) of one consensus run —
//! the `n`-tuple of nominal proposals. The experiment harness assigns the
//! entries of correct processes as proposals and hands the entries of
//! Byzantine processes to the adversary as its nominal values (which it is
//! free to betray).
//!
//! The generators map to the paper's motivating scenarios:
//!
//! * [`Unanimous`] / [`KDissent`] — the classic "all processes propose the
//!   same value" situation (client broadcast without contention, §1.1) and
//!   its almost-unanimous perturbations.
//! * [`SplitCount`] — exact two-value splits, parameterised by the minority
//!   size: the knob for frequency-margin sweeps (experiments E4–E6).
//! * [`BernoulliMix`] — each process proposes `a` with probability `p`,
//!   else `b`: the atomic-commitment workload (Commit vs Abort, §3.4).
//! * [`UniformRandom`] — maximal disorder over a value domain.
//! * [`ZipfRequests`] — replicated-state-machine request contention: values
//!   are client request ids drawn from a Zipf distribution; the skew `s`
//!   controls how often all replicas see the same hot request (§1.1).
//! * [`campaign`] — the million-client population model behind the
//!   `dex-campaign` testbed sweeps: precompiled Zipf popularity tables,
//!   hot-key mass, per-process proposal bias, and time-varying
//!   [`ContentionPhase`] schedules.
//!
//! # Examples
//!
//! ```
//! use dex_workloads::{InputGenerator, SplitCount};
//! use rand::SeedableRng;
//!
//! let gen = SplitCount { major: 1, minor: 0, minor_count: 2 };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let input = gen.generate(9, &mut rng);
//! assert_eq!(input.count_of(&1), 7);
//! assert_eq!(input.count_of(&0), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod campaign;

pub use batch::{chunk_batches, slot_batches, ClientStream};
pub use campaign::{ClientPopulation, ContentionPhase, PhaseSchedule, PopulationModel};

use dex_types::InputVector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A seeded generator of input vectors over `u64` proposal values.
pub trait InputGenerator {
    /// Generates one input vector for `n` processes.
    ///
    /// # Panics
    ///
    /// Implementations panic when the parameters cannot fit `n` (e.g. more
    /// dissenters than processes).
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64>;

    /// A short description for reports.
    fn name(&self) -> String;
}

/// Every process proposes `value`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Unanimous {
    /// The common proposal.
    pub value: u64,
}

impl InputGenerator for Unanimous {
    fn generate(&self, n: usize, _rng: &mut StdRng) -> InputVector<u64> {
        InputVector::unanimous(n, self.value)
    }

    fn name(&self) -> String {
        format!("unanimous({})", self.value)
    }
}

/// `k` processes at random positions propose `dissent`, the rest `value`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KDissent {
    /// The majority proposal.
    pub value: u64,
    /// The dissenting proposal.
    pub dissent: u64,
    /// Number of dissenters.
    pub k: usize,
}

impl InputGenerator for KDissent {
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64> {
        assert!(self.k <= n, "more dissenters than processes");
        let mut entries = vec![self.value; n];
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(rng);
        for &pos in positions.iter().take(self.k) {
            entries[pos] = self.dissent;
        }
        InputVector::new(entries)
    }

    fn name(&self) -> String {
        format!("{}-dissent({}/{})", self.k, self.value, self.dissent)
    }
}

/// An exact two-value split: `minor_count` processes propose `minor`, the
/// rest `major`, at shuffled positions. The frequency margin of the vector
/// is `n − 2 · minor_count` (when `major ≠ minor`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitCount {
    /// The majority proposal.
    pub major: u64,
    /// The minority proposal.
    pub minor: u64,
    /// Number of minority proposers.
    pub minor_count: usize,
}

impl InputGenerator for SplitCount {
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64> {
        assert!(self.minor_count <= n, "minority larger than the system");
        let mut entries = vec![self.major; n];
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(rng);
        for &pos in positions.iter().take(self.minor_count) {
            entries[pos] = self.minor;
        }
        InputVector::new(entries)
    }

    fn name(&self) -> String {
        format!("split({}x{})", self.minor_count, self.minor)
    }
}

/// Each process independently proposes `a` with probability `p`, else `b` —
/// the atomic-commitment workload (`a` = Commit).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BernoulliMix {
    /// Probability of proposing `a`.
    pub p: f64,
    /// The favoured value (e.g. Commit).
    pub a: u64,
    /// The alternative value (e.g. Abort).
    pub b: u64,
}

impl InputGenerator for BernoulliMix {
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64> {
        (0..n)
            .map(|_| {
                if rng.random_bool(self.p) {
                    self.a
                } else {
                    self.b
                }
            })
            .collect()
    }

    fn name(&self) -> String {
        format!("bernoulli(p={:.2})", self.p)
    }
}

/// Uniformly random values in `0..domain`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UniformRandom {
    /// Size of the value domain.
    pub domain: u64,
}

impl InputGenerator for UniformRandom {
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64> {
        assert!(self.domain > 0, "domain must be non-empty");
        (0..n).map(|_| rng.random_range(0..self.domain)).collect()
    }

    fn name(&self) -> String {
        format!("uniform(|V|={})", self.domain)
    }
}

/// Replicated-state-machine contention: each replica proposes the id of the
/// next client request it saw, drawn from a Zipf distribution over
/// `1..=domain` with exponent `s`. Large `s` ⇒ one hot request dominates ⇒
/// near-unanimous inputs; `s → 0` ⇒ uniform chaos.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ZipfRequests {
    /// Number of distinct outstanding requests.
    pub domain: u64,
    /// Skew exponent.
    pub s: f64,
}

impl ZipfRequests {
    fn weights(&self) -> Vec<f64> {
        (1..=self.domain)
            .map(|rank| 1.0 / (rank as f64).powf(self.s))
            .collect()
    }
}

impl InputGenerator for ZipfRequests {
    fn generate(&self, n: usize, rng: &mut StdRng) -> InputVector<u64> {
        assert!(self.domain > 0, "domain must be non-empty");
        let weights = self.weights();
        let total: f64 = weights.iter().sum();
        (0..n)
            .map(|_| {
                let mut x = rng.random_range(0.0..total);
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        return i as u64;
                    }
                    x -= w;
                }
                self.domain - 1
            })
            .collect()
    }

    fn name(&self) -> String {
        format!("zipf(|V|={}, s={:.2})", self.domain, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn unanimous_is_unanimous() {
        let input = Unanimous { value: 4 }.generate(9, &mut rng(0));
        assert_eq!(input.count_of(&4), 9);
        assert_eq!(Unanimous { value: 4 }.name(), "unanimous(4)");
    }

    #[test]
    fn k_dissent_counts() {
        let gen = KDissent {
            value: 1,
            dissent: 2,
            k: 3,
        };
        let input = gen.generate(10, &mut rng(1));
        assert_eq!(input.count_of(&1), 7);
        assert_eq!(input.count_of(&2), 3);
    }

    #[test]
    #[should_panic(expected = "more dissenters")]
    fn k_dissent_overflow_panics() {
        let _ = KDissent {
            value: 1,
            dissent: 2,
            k: 11,
        }
        .generate(10, &mut rng(1));
    }

    #[test]
    fn split_count_margin_is_exact() {
        for minor_count in 0..=4 {
            let gen = SplitCount {
                major: 7,
                minor: 3,
                minor_count,
            };
            let input = gen.generate(9, &mut rng(2));
            assert_eq!(input.count_of(&3), minor_count);
            let margin = input.to_view().frequency_margin();
            assert_eq!(margin, 9 - 2 * minor_count);
        }
    }

    #[test]
    fn split_positions_vary_with_seed() {
        let gen = SplitCount {
            major: 1,
            minor: 0,
            minor_count: 3,
        };
        let a = gen.generate(12, &mut rng(3));
        let b = gen.generate(12, &mut rng(4));
        assert_ne!(a, b, "positions should be shuffled differently");
        // Same seed ⇒ same vector.
        assert_eq!(gen.generate(12, &mut rng(3)), a);
    }

    #[test]
    fn bernoulli_extremes() {
        let all_a = BernoulliMix { p: 1.0, a: 1, b: 0 }.generate(20, &mut rng(5));
        assert_eq!(all_a.count_of(&1), 20);
        let all_b = BernoulliMix { p: 0.0, a: 1, b: 0 }.generate(20, &mut rng(5));
        assert_eq!(all_b.count_of(&0), 20);
    }

    #[test]
    fn uniform_stays_in_domain() {
        let gen = UniformRandom { domain: 3 };
        let input = gen.generate(100, &mut rng(6));
        assert!(input.as_slice().iter().all(|v| *v < 3));
        // All three values appear in 100 draws with overwhelming probability.
        for v in 0..3 {
            assert!(input.count_of(&v) > 0);
        }
    }

    #[test]
    fn zipf_rank_one_dominates_with_high_skew() {
        let gen = ZipfRequests { domain: 10, s: 3.0 };
        let mut r = rng(7);
        let mut zero_count = 0;
        for _ in 0..50 {
            let input = gen.generate(10, &mut r);
            zero_count += input.count_of(&0);
        }
        // With s = 3, rank 1 carries ~83% of the mass.
        assert!(zero_count > 300, "got {zero_count}/500");
    }

    #[test]
    fn zipf_low_skew_is_spread_out() {
        let gen = ZipfRequests {
            domain: 10,
            s: 0.01,
        };
        let mut r = rng(8);
        let input = gen.generate(1000, &mut r);
        // Near-uniform: the top value should be well under a third.
        let max_count = (0..10).map(|v| input.count_of(&v)).max().unwrap();
        assert!(max_count < 300, "got {max_count}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let gens: Vec<Box<dyn InputGenerator>> = vec![
            Box::new(Unanimous { value: 1 }),
            Box::new(KDissent {
                value: 1,
                dissent: 0,
                k: 2,
            }),
            Box::new(BernoulliMix { p: 0.5, a: 1, b: 0 }),
            Box::new(UniformRandom { domain: 5 }),
            Box::new(ZipfRequests { domain: 5, s: 1.0 }),
        ];
        for g in &gens {
            assert_eq!(
                g.generate(11, &mut rng(9)),
                g.generate(11, &mut rng(9)),
                "{} not deterministic",
                g.name()
            );
        }
    }
}
