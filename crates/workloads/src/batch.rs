//! Per-slot client-value batching for pipelined replication.
//!
//! The pipelined replication engine (`dex-replication` with a window
//! `W > 1`) proposes one *batch* of client values per log slot: the batch
//! is the slot's proposed command, committed atomically into the
//! replicated log, so throughput scales with both the window (slots in
//! flight) and the batch size (values per slot). This module generates the
//! deterministic client stream and chunks it — same seed ⇒ same batches,
//! so pipelined and sequential runs propose identical per-slot values and
//! their logs can be compared slot-by-slot.
//!
//! # Examples
//!
//! ```
//! use dex_workloads::{slot_batches, ClientStream};
//!
//! let batches = slot_batches(7, 3, 4);
//! assert_eq!(batches.len(), 3);
//! assert!(batches.iter().all(|b| b.len() == 4));
//! // The batches are exactly the stream, chunked in order.
//! let flat: Vec<u64> = batches.iter().flatten().copied().collect();
//! assert_eq!(flat, ClientStream::new(7).take(12));
//! ```

use rand::rngs::StdRng;

/// Domain separator: batch streams must not correlate with the run seed's
/// other consumers (delay model, input generators).
const STREAM_SALT: u64 = 0xBA7C_85EA_D5CA_FEED;

/// A deterministic stream of client request ids.
///
/// Ids are uniform non-zero `u64`s: zero is excluded because replication
/// state machines treat the `Default` command as a no-op filler, and a
/// client request must never be mistaken for one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClientStream {
    seed: u64,
}

impl ClientStream {
    /// Creates the stream for a run seed.
    pub fn new(seed: u64) -> Self {
        ClientStream { seed }
    }

    /// The first `count` client values of the stream.
    pub fn take(&self, count: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ STREAM_SALT);
        (0..count)
            .map(|_| loop {
                let v: u64 = rng.random();
                if v != 0 {
                    break v;
                }
            })
            .collect()
    }
}

/// Chunks `values` into consecutive batches of exactly `batch` values.
///
/// A trailing partial chunk is dropped — every slot's command has the same
/// shape, which keeps per-slot log comparison trivial.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn chunk_batches(values: &[u64], batch: usize) -> Vec<Vec<u64>> {
    assert!(batch > 0, "a batch holds at least one value");
    values
        .chunks_exact(batch)
        .map(|chunk| chunk.to_vec())
        .collect()
}

/// The per-slot batch sequence of a run: `slots` batches of `batch` client
/// values each, drawn from [`ClientStream::new(seed)`](ClientStream).
///
/// Every replica in a benchmark cluster is handed this same sequence as
/// its pending queue — replicas then propose identical batches per slot
/// (the client-broadcast-without-contention scenario of §1.1), which is
/// what lets the one-step path fire and makes the committed log
/// independent of which replica's proposal won.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn slot_batches(seed: u64, slots: u64, batch: u64) -> Vec<Vec<u64>> {
    let stream = ClientStream::new(seed);
    chunk_batches(&stream.take((slots * batch) as usize), batch as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_nonzero() {
        let a = ClientStream::new(31).take(256);
        let b = ClientStream::new(31).take(256);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v != 0));
        assert_ne!(a, ClientStream::new(32).take(256));
    }

    #[test]
    fn prefixes_agree() {
        let long = ClientStream::new(9).take(64);
        let short = ClientStream::new(9).take(16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn chunking_is_exact_and_ordered() {
        let values: Vec<u64> = (1..=10).collect();
        let batches = chunk_batches(&values, 3);
        assert_eq!(batches, vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
    }

    #[test]
    fn slot_batches_cover_the_stream_prefix() {
        let batches = slot_batches(11, 5, 4);
        assert_eq!(batches.len(), 5);
        let flat: Vec<u64> = batches.iter().flatten().copied().collect();
        assert_eq!(flat, ClientStream::new(11).take(20));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_batch_is_rejected() {
        chunk_batches(&[1, 2], 0);
    }
}
