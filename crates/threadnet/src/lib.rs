//! A threaded message-passing runtime running the **same actors** as the
//! discrete-event simulator, under real OS concurrency.
//!
//! Where `dex-simnet` explores adversarial schedules deterministically,
//! this runtime demonstrates that the protocol state machines are not
//! simulation artifacts: each process is a thread, messages travel over
//! `crossbeam` channels through a delay-injecting dispatcher, and delivery
//! order is whatever the OS scheduler produces. Causal step depths are
//! carried on the wire exactly as in the simulator.
//!
//! Quiescence is detected with an in-flight message counter: the network
//! has drained when no message is queued, delayed, or being handled. A
//! wall-clock timeout bounds runaway protocols.
//!
//! # Examples
//!
//! ```
//! use dex_simnet::{Actor, Context};
//! use dex_threadnet::{run_network, NetworkOptions};
//! use dex_types::ProcessId;
//!
//! struct Counter { got: usize }
//! impl Actor for Counter {
//!     type Msg = u8;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
//!         ctx.broadcast_others(1);
//!     }
//!     fn on_message(&mut self, _f: ProcessId, _m: &u8, _c: &mut Context<'_, u8>) {
//!         self.got += 1;
//!     }
//! }
//!
//! let actors = vec![Counter { got: 0 }, Counter { got: 0 }, Counter { got: 0 }];
//! let result = run_network(actors, NetworkOptions::default());
//! assert!(result.quiescent);
//! assert!(result.actors.iter().all(|a| a.got == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dex_simnet::{Actor, Context, Dest, Time};
use dex_types::{ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Options for a threaded network run.
#[derive(Clone, Debug)]
pub struct NetworkOptions {
    /// Seed for per-thread actor RNGs and delay jitter.
    pub seed: u64,
    /// Artificial per-message delay range, in microseconds.
    pub delay_us: (u64, u64),
    /// Wall-clock budget; the run is cut off (non-quiescent) beyond it.
    pub timeout: Duration,
}

impl Default for NetworkOptions {
    fn default() -> Self {
        NetworkOptions {
            seed: 0,
            delay_us: (50, 500),
            timeout: Duration::from_secs(30),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct NetworkResult<A> {
    /// The actors, with whatever final state they reached.
    pub actors: Vec<A>,
    /// Whether the network drained before the timeout.
    pub quiescent: bool,
    /// Total messages delivered.
    pub delivered: u64,
}

struct Envelope<M> {
    from: ProcessId,
    depth: StepDepth,
    payload: M,
}

/// An entry in the dispatcher's delay heap.
struct Delayed<M> {
    due: Instant,
    seq: u64,
    to: usize,
    env: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

/// Runs the actors to quiescence (or timeout) on one thread per actor.
///
/// Actor `i` becomes process `p_i`. Returns the actors for post-run
/// inspection (decisions, views, counters).
///
/// # Panics
///
/// Panics if `actors` is empty or a worker thread panics.
pub fn run_network<A>(actors: Vec<A>, options: NetworkOptions) -> NetworkResult<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send,
{
    assert!(!actors.is_empty(), "need at least one actor");
    let n = actors.len();
    let start = Instant::now();

    // Worker inboxes.
    let mut worker_txs: Vec<Sender<Envelope<A::Msg>>> = Vec::with_capacity(n);
    let mut worker_rxs: Vec<Receiver<Envelope<A::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }

    // Dispatcher channel: workers push (to, envelope); the dispatcher holds
    // each message for its sampled delay, then forwards to the worker.
    let (dispatch_tx, dispatch_rx) = unbounded::<(usize, Envelope<A::Msg>)>();

    // In-flight accounting: +1 when a message enters the dispatcher, −1
    // after the receiving worker has fully handled it (including queueing
    // its reactions). Zero ⇒ quiescent.
    let inflight = Arc::new(AtomicI64::new(0));
    let delivered = Arc::new(AtomicI64::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));

    // Dispatcher thread.
    let dispatcher = {
        let worker_txs = worker_txs.clone();
        let shutdown = Arc::clone(&shutdown);
        let (lo, hi) = options.delay_us;
        let mut rng = StdRng::seed_from_u64(options.seed ^ 0xD15_0A7C);
        thread::spawn(move || {
            let mut heap: BinaryHeap<Reverse<Delayed<A::Msg>>> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                let wait = heap
                    .peek()
                    .map(|Reverse(d)| d.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(20));
                match dispatch_rx.recv_timeout(wait.min(Duration::from_millis(20))) {
                    Ok((to, env)) => {
                        let delay = Duration::from_micros(rng.random_range(lo..=hi.max(lo)));
                        seq += 1;
                        heap.push(Reverse(Delayed {
                            due: Instant::now() + delay,
                            seq,
                            to,
                            env,
                        }));
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let now = Instant::now();
                while heap.peek().is_some_and(|Reverse(d)| d.due <= now) {
                    let Reverse(d) = heap.pop().expect("peeked");
                    // A send failure means the worker already shut down.
                    let _ = worker_txs[d.to].send(d.env);
                }
                if shutdown.load(Ordering::Acquire) {
                    // Flush anything still delayed, then exit.
                    while let Some(Reverse(d)) = heap.pop() {
                        let _ = worker_txs[d.to].send(d.env);
                    }
                    break;
                }
            }
        })
    };

    // Worker threads.
    let mut handles = Vec::with_capacity(n);
    for (i, mut actor) in actors.into_iter().enumerate() {
        let rx = worker_rxs.remove(0);
        let dispatch_tx = dispatch_tx.clone();
        let inflight = Arc::clone(&inflight);
        let delivered = Arc::clone(&delivered);
        let shutdown = Arc::clone(&shutdown);
        let seed = options.seed;
        handles.push(thread::spawn(move || {
            let me = ProcessId::new(i);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            // The simulator shares one payload among a multicast's
            // recipients; threads cannot, so fan-out is expanded (with the
            // necessary clones) at this boundary.
            let expand = |out: Vec<(Dest, A::Msg)>| -> Vec<(ProcessId, A::Msg)> {
                let mut flat = Vec::with_capacity(out.len());
                for (dest, payload) in out {
                    match dest {
                        Dest::To(to) => flat.push((to, payload)),
                        Dest::All => {
                            for j in 0..n - 1 {
                                flat.push((ProcessId::new(j), payload.clone()));
                            }
                            flat.push((ProcessId::new(n - 1), payload));
                        }
                    }
                }
                flat
            };
            let queue_out = |out: Vec<(ProcessId, A::Msg)>, depth: StepDepth| {
                for (to, payload) in out {
                    inflight.fetch_add(1, Ordering::AcqRel);
                    let _ = dispatch_tx.send((
                        to.index(),
                        Envelope {
                            from: me,
                            depth,
                            payload,
                        },
                    ));
                }
            };
            // Per-process delivery sequence, used as the recorder's clock:
            // wall time is not reproducible, but per-process event order is
            // what the trace checker consumes.
            let mut local_seq = 0u64;
            {
                let mut ctx = Context::external(me, n, Time::ZERO, StepDepth::ZERO, &mut rng);
                actor.on_start(&mut ctx);
                let out = expand(ctx.take_outbox());
                if let Some(rec) = actor.recorder_mut() {
                    for (to, _) in &out {
                        rec.record_at(
                            local_seq,
                            StepDepth::ONE.get(),
                            dex_obs::EventKind::Send {
                                to: to.index() as u16,
                            },
                        );
                    }
                }
                queue_out(out, StepDepth::ONE);
            }
            loop {
                match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(env) => {
                        let now = Time::new(start.elapsed().as_micros() as u64);
                        local_seq += 1;
                        if let Some(rec) = actor.recorder_mut() {
                            rec.set_clock(local_seq, env.depth.get());
                            rec.record(dex_obs::EventKind::Deliver {
                                from: env.from.index() as u16,
                            });
                        }
                        let mut ctx = Context::external(me, n, now, env.depth, &mut rng);
                        actor.on_message(env.from, &env.payload, &mut ctx);
                        let out = expand(ctx.take_outbox());
                        if let Some(rec) = actor.recorder_mut() {
                            for (to, _) in &out {
                                rec.record_at(
                                    local_seq,
                                    env.depth.next().get(),
                                    dex_obs::EventKind::Send {
                                        to: to.index() as u16,
                                    },
                                );
                            }
                        }
                        queue_out(out, env.depth.next());
                        delivered.fetch_add(1, Ordering::AcqRel);
                        inflight.fetch_sub(1, Ordering::AcqRel);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            actor
        }));
    }
    drop(dispatch_tx);
    drop(worker_txs);

    // Supervise: quiescent when nothing is in flight (checked twice with a
    // settle gap to dodge the enqueue/han­dle race), or timeout.
    let mut quiescent = false;
    while start.elapsed() < options.timeout {
        if inflight.load(Ordering::Acquire) == 0 {
            thread::sleep(Duration::from_millis(30));
            if inflight.load(Ordering::Acquire) == 0 {
                quiescent = true;
                break;
            }
        } else {
            thread::sleep(Duration::from_millis(5));
        }
    }
    shutdown.store(true, Ordering::Release);
    dispatcher.join().expect("dispatcher thread panicked");
    let actors = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    NetworkResult {
        actors,
        quiescent,
        delivered: delivered.load(Ordering::Acquire) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        got: Vec<(ProcessId, u32, StepDepth)>,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast_others(1);
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
            self.got.push((from, *msg, ctx.depth()));
            if *msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    #[test]
    fn echo_round_trip_reaches_quiescence() {
        let actors = (0..4).map(|_| Echo { got: Vec::new() }).collect();
        let result = run_network(
            actors,
            NetworkOptions {
                seed: 1,
                delay_us: (10, 100),
                timeout: Duration::from_secs(10),
            },
        );
        assert!(result.quiescent);
        // p0 broadcast `1` to 3 peers; each replied `0`: 6 deliveries.
        assert_eq!(result.delivered, 6);
        // Depths travel on the wire: replies to p0 arrive at depth 2.
        assert_eq!(result.actors[0].got.len(), 3);
        assert!(result.actors[0]
            .got
            .iter()
            .all(|(_, _, d)| *d == StepDepth::new(2)));
        for a in &result.actors[1..] {
            assert_eq!(a.got.len(), 1);
        }
    }

    #[test]
    fn empty_traffic_is_quiescent_immediately() {
        struct Quiet;
        impl Actor for Quiet {
            type Msg = ();
            fn on_start(&mut self, _: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _: ProcessId, _: &(), _: &mut Context<'_, ()>) {}
        }
        let result = run_network(vec![Quiet, Quiet], NetworkOptions::default());
        assert!(result.quiescent);
        assert_eq!(result.delivered, 0);
    }

    #[test]
    fn timeout_cuts_off_livelock() {
        struct Forever;
        impl Actor for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast_others(());
            }
            fn on_message(&mut self, from: ProcessId, _: &(), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let result = run_network(
            vec![Forever, Forever],
            NetworkOptions {
                seed: 0,
                delay_us: (1, 10),
                timeout: Duration::from_millis(300),
            },
        );
        assert!(!result.quiescent);
    }
}
