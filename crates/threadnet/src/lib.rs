//! A threaded message-passing runtime running the **same actors** as the
//! discrete-event simulator, under real OS concurrency.
//!
//! Where `dex-simnet` explores adversarial schedules deterministically,
//! this runtime demonstrates that the protocol state machines are not
//! simulation artifacts: each process is a thread, messages travel over
//! `crossbeam` channels through a delay-injecting dispatcher, and delivery
//! order is whatever the OS scheduler produces. Causal step depths are
//! carried on the wire exactly as in the simulator.
//!
//! Timers armed with [`Context::send_self_after`] are honoured too: the
//! simulator's virtual time units map to **microseconds of wall clock**
//! here, each worker keeps its own pending-timer list, and an armed timer
//! counts as in-flight traffic — quiescence waits for it, exactly as the
//! simulator's event queue would.
//!
//! Quiescence is detected with an in-flight message counter: the network
//! has drained when no message is queued, delayed, being handled, or
//! waiting on a timer. A wall-clock timeout bounds runaway protocols; a
//! run cut off non-quiescent reports the residual in-flight count and the
//! per-process undrained inbox depths it left behind, so a stuck run is
//! diagnosable instead of just `quiescent: false`.
//!
//! [`run_network_with_kill`] adds the thread-level analogue of the netd
//! cluster's `kill -9` phase: one worker's actor is destroyed mid-run
//! (volatile state and armed timers gone, envelopes arriving while dead
//! are lost), then rebuilt from durable state via
//! [`Recoverable::restart`] after a configurable down window — the same
//! WAL-replay recovery story as the process-level runtime, exercised
//! under OS threads where the survivors keep running throughout.
//!
//! # Examples
//!
//! ```
//! use dex_simnet::{Actor, Context};
//! use dex_threadnet::{run_network, NetworkOptions};
//! use dex_types::ProcessId;
//!
//! struct Counter { got: usize }
//! impl Actor for Counter {
//!     type Msg = u8;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
//!         ctx.broadcast_others(1);
//!     }
//!     fn on_message(&mut self, _f: ProcessId, _m: &u8, _c: &mut Context<'_, u8>) {
//!         self.got += 1;
//!     }
//! }
//!
//! let actors = vec![Counter { got: 0 }, Counter { got: 0 }, Counter { got: 0 }];
//! let result = run_network(actors, NetworkOptions::default());
//! assert!(result.quiescent);
//! assert!(result.actors.iter().all(|a| a.got == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dex_simnet::{Actor, Context, Dest, NetStats, Recoverable, Time};
use dex_types::{ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Options for a threaded network run.
#[derive(Clone, Debug)]
pub struct NetworkOptions {
    /// Seed for per-thread actor RNGs and delay jitter.
    pub seed: u64,
    /// Artificial per-message delay range, in microseconds.
    pub delay_us: (u64, u64),
    /// Wall-clock budget; the run is cut off (non-quiescent) beyond it.
    pub timeout: Duration,
}

impl Default for NetworkOptions {
    fn default() -> Self {
        NetworkOptions {
            seed: 0,
            delay_us: (50, 500),
            timeout: Duration::from_secs(30),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct NetworkResult<A> {
    /// The actors, with whatever final state they reached.
    pub actors: Vec<A>,
    /// Whether the network drained before the timeout.
    pub quiescent: bool,
    /// Total messages delivered (timer firings included).
    pub delivered: u64,
    /// In-flight messages (queued, delayed, being handled, or pending on
    /// a timer) at the moment a non-quiescent run was cut off. `0` for
    /// quiescent runs. A best-effort snapshot — the network is racing the
    /// supervisor by definition — but it distinguishes "cut off mid-storm"
    /// from "cut off waiting on one straggler".
    pub residual_inflight: u64,
    /// Per-process undrained inbox depths (messages forwarded by the
    /// dispatcher but never handled) at the same cutoff instant; index =
    /// process id, all zeros for quiescent runs. Pinpoints *which*
    /// process a stuck run starved or overwhelmed.
    pub undrained: Vec<u64>,
    /// Wire statistics, accumulated per worker and merged at join. The
    /// ledger matches the simulator's: class and size computed once per
    /// logical send, `Dest::All` counted as one multicast (whose payload
    /// the thread boundary clones `n − 1` times, so `payload_clones` is
    /// honest here where the simulator reports zero), every recipient
    /// copy counted in `sent` and `bytes_on_wire`, armed timers counted
    /// as byte-free sends.
    pub stats: NetStats,
    /// Wall-clock time from network start to supervisor teardown.
    pub elapsed: Duration,
    /// Completed kill/respawn cycles. Always `0` for [`run_network`];
    /// `1` when [`run_network_with_kill`]'s victim died and its rebuilt
    /// incarnation booted through [`Recoverable::restart`], `0` if the
    /// run was cut off before the kill fired.
    pub restarts: u64,
}

/// A thread-level `kill -9` plan for [`run_network_with_kill`].
///
/// At `after` into the run the victim's worker thread destroys its actor:
/// in-memory state is gone, armed timers are lost, and every envelope
/// arriving during the `down` window is discarded — a dead process loses
/// its inbox. When the window closes, `rebuild` constructs the fresh
/// incarnation (typically re-opening the same WAL the first incarnation
/// wrote) and the worker boots it through [`Recoverable::restart`], whose
/// recovery sends enter the network at causal depth 1 like `on_start`
/// traffic. The worker thread itself survives — threads cannot be killed
/// from outside — so the kill is simulated at the actor boundary, which
/// is exactly the state a real `kill -9` destroys.
pub struct ThreadKillPlan<A> {
    /// The process to kill. Must not be the only process.
    pub victim: ProcessId,
    /// Wall-clock delay from network start to the kill.
    pub after: Duration,
    /// How long the victim stays dead before the respawn boots.
    pub down: Duration,
    /// Builds the respawned incarnation; its durable state (e.g. a
    /// `FileWal` path) must match what the first incarnation persisted.
    pub rebuild: Box<dyn FnOnce() -> A + Send>,
}

/// [`ThreadKillPlan`] lowered for the generic runner: the `restart` hook
/// is captured as a plain fn pointer where the `Recoverable` bound is
/// available, so `run_inner` itself needs only `Actor`.
struct KillTask<A: Actor> {
    victim: usize,
    after: Duration,
    down: Duration,
    rebuild: Box<dyn FnOnce() -> A + Send>,
    restart: fn(&mut A, &mut Context<'_, A::Msg>),
}

/// Counts one logical send against a worker's wire statistics via the
/// shared [`NetStats::note_send`] ledger hook. The thread boundary clones
/// multicast payloads `n − 1` times (one per peer channel), and the ledger
/// records that honestly where the simulator's shared slab reports zero.
fn note_send<A: Actor>(
    wire: &mut NetStats,
    n: usize,
    dest: &Dest,
    payload: &A::Msg,
    depth: StepDepth,
) {
    wire.note_send::<A>(n, dest, payload, depth, n as u64 - 1);
}

struct Envelope<M> {
    from: ProcessId,
    depth: StepDepth,
    payload: M,
}

/// An entry in the dispatcher's delay heap.
struct Delayed<M> {
    due: Instant,
    seq: u64,
    to: usize,
    env: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

/// A timer armed by the local actor: fires at `due` with causal depth
/// `depth` (the depth its tick is delivered at, like any send).
struct PendingTimer<M> {
    due: Instant,
    depth: StepDepth,
    payload: M,
}

/// The simulator shares one payload among a multicast's recipients;
/// threads cannot, so fan-out is expanded (with the necessary clones) at
/// this boundary.
fn expand<M: Clone>(n: usize, out: Vec<(Dest, M)>) -> Vec<(ProcessId, M)> {
    let mut flat = Vec::with_capacity(out.len());
    for (dest, payload) in out {
        match dest {
            Dest::To(to) => flat.push((to, payload)),
            Dest::All => {
                for j in 0..n - 1 {
                    flat.push((ProcessId::new(j), payload.clone()));
                }
                flat.push((ProcessId::new(n - 1), payload));
            }
        }
    }
    flat
}

/// Expands depth-stamped sends (`Context::send_dest_at`) the same way as
/// [`expand`], carrying each entry's explicit causal depth through to the
/// envelope. Draining this buffer alongside the plain outbox keeps
/// depth-preserving traffic (echo-aggregation flushes) from being lost on
/// the threaded runtime.
fn expand_at<M: Clone>(n: usize, out: Vec<(Dest, M, StepDepth)>) -> Vec<(ProcessId, M, StepDepth)> {
    let mut flat = Vec::with_capacity(out.len());
    for (dest, payload, depth) in out {
        match dest {
            Dest::To(to) => flat.push((to, payload, depth)),
            Dest::All => {
                for j in 0..n - 1 {
                    flat.push((ProcessId::new(j), payload.clone(), depth));
                }
                flat.push((ProcessId::new(n - 1), payload, depth));
            }
        }
    }
    flat
}

/// Handles one delivery (network envelope or fired timer) at a worker:
/// runs the actor, records obs events, queues reactions to the dispatcher
/// and newly armed timers to the local list. Each queued reaction and
/// armed timer counts `+1` in flight; the handled delivery counts `−1`.
#[allow(clippy::too_many_arguments)]
fn deliver<A: Actor>(
    actor: &mut A,
    me: ProcessId,
    n: usize,
    env: Envelope<A::Msg>,
    start: Instant,
    rng: &mut StdRng,
    local_seq: &mut u64,
    timers: &mut Vec<PendingTimer<A::Msg>>,
    dispatch_tx: &Sender<(usize, Envelope<A::Msg>)>,
    inflight: &AtomicI64,
    delivered: &AtomicI64,
    wire: &mut NetStats,
) {
    let now = Time::new(start.elapsed().as_micros() as u64);
    *local_seq += 1;
    wire.note_delivery(env.depth);
    if let Some(rec) = actor.recorder_mut() {
        rec.set_clock(*local_seq, env.depth.get());
        rec.record(dex_obs::EventKind::Deliver {
            from: env.from.index() as u16,
        });
    }
    let mut ctx = Context::external(me, n, now, env.depth, rng);
    actor.on_message(env.from, &env.payload, &mut ctx);
    let raw_out = ctx.take_outbox();
    let raw_out_at = ctx.take_outbox_at();
    let armed = ctx.take_timers();
    drop(ctx);
    for (dest, payload) in &raw_out {
        note_send::<A>(wire, n, dest, payload, env.depth.next());
    }
    for (dest, payload, depth) in &raw_out_at {
        note_send::<A>(wire, n, dest, payload, *depth);
    }
    for (_, payload) in &armed {
        wire.note_timer::<A>(payload, env.depth.next());
    }
    let out = expand(n, raw_out);
    let out_at = expand_at(n, raw_out_at);
    if let Some(rec) = actor.recorder_mut() {
        for (to, _) in &out {
            rec.record_at(
                *local_seq,
                env.depth.next().get(),
                dex_obs::EventKind::Send {
                    to: to.index() as u16,
                },
            );
        }
        for (to, _, depth) in &out_at {
            rec.record_at(
                *local_seq,
                depth.get(),
                dex_obs::EventKind::Send {
                    to: to.index() as u16,
                },
            );
        }
    }
    for (to, payload) in out {
        inflight.fetch_add(1, Ordering::AcqRel);
        let _ = dispatch_tx.send((
            to.index(),
            Envelope {
                from: me,
                depth: env.depth.next(),
                payload,
            },
        ));
    }
    for (to, payload, depth) in out_at {
        inflight.fetch_add(1, Ordering::AcqRel);
        let _ = dispatch_tx.send((
            to.index(),
            Envelope {
                from: me,
                depth,
                payload,
            },
        ));
    }
    let armed_at = Instant::now();
    for (delay, payload) in armed {
        inflight.fetch_add(1, Ordering::AcqRel);
        timers.push(PendingTimer {
            due: armed_at + Duration::from_micros(delay),
            depth: env.depth.next(),
            payload,
        });
    }
    delivered.fetch_add(1, Ordering::AcqRel);
    inflight.fetch_sub(1, Ordering::AcqRel);
}

/// Per-thread worker machinery, factored out of the spawn closure so a
/// kill/respawn run can drive the same boot-and-deliver loop across two
/// actor incarnations on one thread. Owns everything that survives the
/// kill: the RNG, the wire ledger, the inbox receiver, pending timers,
/// and the per-process delivery sequence the recorder uses as its clock.
struct Worker<A: Actor> {
    me: ProcessId,
    n: usize,
    start: Instant,
    rng: StdRng,
    local_seq: u64,
    wire: NetStats,
    timers: Vec<PendingTimer<A::Msg>>,
    rx: Receiver<Envelope<A::Msg>>,
    dispatch_tx: Sender<(usize, Envelope<A::Msg>)>,
    inflight: Arc<AtomicI64>,
    delivered: Arc<AtomicI64>,
    shutdown: Arc<AtomicBool>,
    queue_depths: Arc<Vec<AtomicI64>>,
}

impl<A: Actor> Worker<A> {
    /// Runs a boot hook (`on_start`, or [`Recoverable::restart`] on a
    /// respawn) at `now` and flushes its sends and timers into the
    /// network at causal depth 1 — a boot starts a fresh causal chain.
    fn boot(
        &mut self,
        actor: &mut A,
        now: Time,
        hook: impl FnOnce(&mut A, &mut Context<'_, A::Msg>),
    ) {
        let mut ctx = Context::external(self.me, self.n, now, StepDepth::ZERO, &mut self.rng);
        hook(actor, &mut ctx);
        let raw_out = ctx.take_outbox();
        let raw_out_at = ctx.take_outbox_at();
        let armed = ctx.take_timers();
        drop(ctx);
        for (dest, payload) in &raw_out {
            note_send::<A>(&mut self.wire, self.n, dest, payload, StepDepth::ONE);
        }
        for (dest, payload, depth) in &raw_out_at {
            note_send::<A>(&mut self.wire, self.n, dest, payload, *depth);
        }
        for (_, payload) in &armed {
            self.wire.note_timer::<A>(payload, StepDepth::ONE);
        }
        let out = expand(self.n, raw_out);
        let out_at = expand_at(self.n, raw_out_at);
        if let Some(rec) = actor.recorder_mut() {
            for (to, _) in &out {
                rec.record_at(
                    self.local_seq,
                    StepDepth::ONE.get(),
                    dex_obs::EventKind::Send {
                        to: to.index() as u16,
                    },
                );
            }
            for (to, _, depth) in &out_at {
                rec.record_at(
                    self.local_seq,
                    depth.get(),
                    dex_obs::EventKind::Send {
                        to: to.index() as u16,
                    },
                );
            }
        }
        for (to, payload) in out {
            self.inflight.fetch_add(1, Ordering::AcqRel);
            let _ = self.dispatch_tx.send((
                to.index(),
                Envelope {
                    from: self.me,
                    depth: StepDepth::ONE,
                    payload,
                },
            ));
        }
        for (to, payload, depth) in out_at {
            self.inflight.fetch_add(1, Ordering::AcqRel);
            let _ = self.dispatch_tx.send((
                to.index(),
                Envelope {
                    from: self.me,
                    depth,
                    payload,
                },
            ));
        }
        let armed_at = Instant::now();
        for (delay, payload) in armed {
            self.inflight.fetch_add(1, Ordering::AcqRel);
            self.timers.push(PendingTimer {
                due: armed_at + Duration::from_micros(delay),
                depth: StepDepth::ONE,
                payload,
            });
        }
    }

    /// Handles one delivery through the free [`deliver`] with this
    /// worker's state.
    fn handle(&mut self, actor: &mut A, env: Envelope<A::Msg>) {
        deliver(
            actor,
            self.me,
            self.n,
            env,
            self.start,
            &mut self.rng,
            &mut self.local_seq,
            &mut self.timers,
            &self.dispatch_tx,
            &self.inflight,
            &self.delivered,
            &mut self.wire,
        );
    }

    /// Delivery loop: fires due timers and handles inbox envelopes until
    /// the network shuts down (returns `false`) or `die_at` passes
    /// (returns `true` — the caller owns what happens to the corpse).
    fn run(&mut self, actor: &mut A, die_at: Option<Instant>) -> bool {
        loop {
            if die_at.is_some_and(|at| Instant::now() >= at) {
                return true;
            }
            // Fire due timers, earliest first, before waiting on the
            // inbox again.
            loop {
                let now = Instant::now();
                let due_idx = self
                    .timers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.due <= now)
                    .min_by_key(|(_, t)| t.due)
                    .map(|(idx, _)| idx);
                let Some(idx) = due_idx else { break };
                let timer = self.timers.remove(idx);
                let env = Envelope {
                    from: self.me,
                    depth: timer.depth,
                    payload: timer.payload,
                };
                self.handle(actor, env);
            }
            let mut wait = self
                .timers
                .iter()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .min()
                .unwrap_or(Duration::from_millis(20))
                .min(Duration::from_millis(20));
            if let Some(at) = die_at {
                wait = wait.min(at.saturating_duration_since(Instant::now()));
            }
            match self.rx.recv_timeout(wait) {
                Ok(env) => {
                    self.queue_depths[self.me.index()].fetch_sub(1, Ordering::AcqRel);
                    if die_at.is_some_and(|at| Instant::now() >= at) {
                        // The kill lands before this envelope is
                        // handled: it dies with the process.
                        self.inflight.fetch_sub(1, Ordering::AcqRel);
                        return true;
                    }
                    self.handle(actor, env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    /// Destroys what a `kill -9` destroys, then sits dead for `down`:
    /// armed timers are dropped (each was counted in flight), and every
    /// envelope forwarded to the corpse during the window is discarded —
    /// messages to a dead process are lost, not queued for the respawn.
    fn crash(&mut self, down: Duration) {
        let lost_timers = self.timers.len() as i64;
        self.timers.clear();
        self.inflight.fetch_sub(lost_timers, Ordering::AcqRel);
        let until = Instant::now() + down;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() || self.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.rx.recv_timeout(left.min(Duration::from_millis(20))) {
                Ok(_) => {
                    self.queue_depths[self.me.index()].fetch_sub(1, Ordering::AcqRel);
                    self.inflight.fetch_sub(1, Ordering::AcqRel);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// Runs the actors to quiescence (or timeout) on one thread per actor.
///
/// Actor `i` becomes process `p_i`. Returns the actors for post-run
/// inspection (decisions, views, counters).
///
/// # Panics
///
/// Panics if `actors` is empty or a worker thread panics.
pub fn run_network<A>(actors: Vec<A>, options: NetworkOptions) -> NetworkResult<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send,
{
    run_inner(actors, options, None)
}

/// Runs the actors like [`run_network`], killing and respawning one of
/// them mid-run per `plan` — the thread-level analogue of the netd
/// cluster's `kill -9` phase.
///
/// A respawn-pending in-flight token is held from network start until
/// the rebuilt incarnation's [`Recoverable::restart`] sends are queued,
/// so the supervisor cannot declare quiescence while the victim is dead
/// or the kill has yet to fire: the run drains only once recovery
/// traffic has itself drained.
///
/// # Panics
///
/// Panics if `actors` is empty, `plan.victim` is out of range, or a
/// worker thread panics.
pub fn run_network_with_kill<A>(
    actors: Vec<A>,
    options: NetworkOptions,
    plan: ThreadKillPlan<A>,
) -> NetworkResult<A>
where
    A: Actor + Recoverable + Send + 'static,
    A::Msg: Send,
{
    assert!(
        plan.victim.index() < actors.len(),
        "victim {} out of range for {} actors",
        plan.victim.index(),
        actors.len()
    );
    run_inner(
        actors,
        options,
        Some(KillTask {
            victim: plan.victim.index(),
            after: plan.after,
            down: plan.down,
            rebuild: plan.rebuild,
            restart: |a, ctx| a.restart(ctx),
        }),
    )
}

fn run_inner<A>(
    actors: Vec<A>,
    options: NetworkOptions,
    mut kill: Option<KillTask<A>>,
) -> NetworkResult<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send,
{
    assert!(!actors.is_empty(), "need at least one actor");
    let n = actors.len();
    let start = Instant::now();

    // Worker inboxes.
    let mut worker_txs: Vec<Sender<Envelope<A::Msg>>> = Vec::with_capacity(n);
    let mut worker_rxs: Vec<Receiver<Envelope<A::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }

    // Dispatcher channel: workers push (to, envelope); the dispatcher holds
    // each message for its sampled delay, then forwards to the worker.
    let (dispatch_tx, dispatch_rx) = unbounded::<(usize, Envelope<A::Msg>)>();

    // In-flight accounting: +1 when a message enters the dispatcher or a
    // timer is armed, −1 after the receiving worker has fully handled the
    // delivery (including queueing its reactions). Zero ⇒ quiescent.
    let inflight = Arc::new(AtomicI64::new(0));
    let delivered = Arc::new(AtomicI64::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    let restarts = Arc::new(AtomicU64::new(0));
    // Respawn-pending token: held from network start until the respawned
    // incarnation's restart sends are queued, so the network cannot drain
    // while the kill is pending or the victim is down.
    if kill.is_some() {
        inflight.fetch_add(1, Ordering::AcqRel);
    }
    // Per-process inbox depth: +1 when the dispatcher forwards to a worker
    // queue, −1 when the worker dequeues. The vendored channel has no
    // `len()`, so depth is tracked at the endpoints.
    let queue_depths: Arc<Vec<AtomicI64>> = Arc::new((0..n).map(|_| AtomicI64::new(0)).collect());

    // Dispatcher thread.
    let dispatcher = {
        let worker_txs = worker_txs.clone();
        let shutdown = Arc::clone(&shutdown);
        let queue_depths = Arc::clone(&queue_depths);
        let (lo, hi) = options.delay_us;
        let mut rng = StdRng::seed_from_u64(options.seed ^ 0xD15_0A7C);
        thread::spawn(move || {
            let mut heap: BinaryHeap<Reverse<Delayed<A::Msg>>> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                let wait = heap
                    .peek()
                    .map(|Reverse(d)| d.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(20));
                match dispatch_rx.recv_timeout(wait.min(Duration::from_millis(20))) {
                    Ok((to, env)) => {
                        let delay = Duration::from_micros(rng.random_range(lo..=hi.max(lo)));
                        seq += 1;
                        heap.push(Reverse(Delayed {
                            due: Instant::now() + delay,
                            seq,
                            to,
                            env,
                        }));
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let now = Instant::now();
                while heap.peek().is_some_and(|Reverse(d)| d.due <= now) {
                    let Reverse(d) = heap.pop().expect("peeked");
                    queue_depths[d.to].fetch_add(1, Ordering::AcqRel);
                    // A send failure means the worker already shut down.
                    let _ = worker_txs[d.to].send(d.env);
                }
                if shutdown.load(Ordering::Acquire) {
                    // Flush anything still delayed, then exit.
                    while let Some(Reverse(d)) = heap.pop() {
                        queue_depths[d.to].fetch_add(1, Ordering::AcqRel);
                        let _ = worker_txs[d.to].send(d.env);
                    }
                    break;
                }
            }
        })
    };

    // Worker threads.
    let mut handles = Vec::with_capacity(n);
    for (i, mut actor) in actors.into_iter().enumerate() {
        let rx = worker_rxs.remove(0);
        let dispatch_tx = dispatch_tx.clone();
        let inflight = Arc::clone(&inflight);
        let delivered = Arc::clone(&delivered);
        let shutdown = Arc::clone(&shutdown);
        let queue_depths = Arc::clone(&queue_depths);
        let restarts = Arc::clone(&restarts);
        let seed = options.seed;
        let task = if kill.as_ref().is_some_and(|k| k.victim == i) {
            kill.take()
        } else {
            None
        };
        handles.push(thread::spawn(move || {
            let mut w = Worker {
                me: ProcessId::new(i),
                n,
                start,
                // Per-thread RNG; the per-process delivery sequence is the
                // recorder's clock (wall time is not reproducible, but
                // per-process event order is what the checker consumes).
                rng: StdRng::seed_from_u64(seed.wrapping_add(i as u64)),
                local_seq: 0,
                // Per-worker wire ledger, merged across workers at join.
                wire: NetStats::default(),
                // Timers are local to their actor, so each worker owns
                // its pending list (virtual units = microseconds here).
                timers: Vec::new(),
                rx,
                dispatch_tx,
                inflight,
                delivered,
                shutdown,
                queue_depths,
            };
            w.boot(&mut actor, Time::ZERO, |a, ctx| a.on_start(ctx));
            match task {
                None => {
                    w.run(&mut actor, None);
                }
                Some(KillTask {
                    after,
                    down,
                    rebuild,
                    restart,
                    ..
                }) => {
                    if w.run(&mut actor, Some(start + after)) {
                        // kill -9: the first incarnation's volatile state
                        // dies here; only what it persisted survives.
                        drop(actor);
                        w.crash(down);
                        actor = rebuild();
                        let now = Time::new(start.elapsed().as_micros() as u64);
                        w.boot(&mut actor, now, restart);
                        restarts.fetch_add(1, Ordering::AcqRel);
                        // Recovery traffic is queued: release the
                        // respawn-pending token.
                        w.inflight.fetch_sub(1, Ordering::AcqRel);
                        w.run(&mut actor, None);
                    } else {
                        // Cut off before the kill fired; release the
                        // token so teardown accounting stays balanced.
                        w.inflight.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            (actor, w.wire)
        }));
    }
    drop(dispatch_tx);
    drop(worker_txs);

    // Supervise: quiescent when nothing is in flight (checked twice with a
    // settle gap to dodge the enqueue/handle race), or timeout.
    let mut quiescent = false;
    while start.elapsed() < options.timeout {
        if inflight.load(Ordering::Acquire) == 0 {
            thread::sleep(Duration::from_millis(30));
            if inflight.load(Ordering::Acquire) == 0 {
                quiescent = true;
                break;
            }
        } else {
            thread::sleep(Duration::from_millis(5));
        }
    }
    // Snapshot the residue *before* tearing the network down: after
    // shutdown the workers keep draining, which would under-report what
    // the cutoff actually interrupted.
    let (residual_inflight, undrained) = if quiescent {
        (0, vec![0; n])
    } else {
        (
            inflight.load(Ordering::Acquire).max(0) as u64,
            queue_depths
                .iter()
                .map(|d| d.load(Ordering::Acquire).max(0) as u64)
                .collect(),
        )
    };
    shutdown.store(true, Ordering::Release);
    dispatcher.join().expect("dispatcher thread panicked");
    let mut actors = Vec::with_capacity(n);
    let mut stats = NetStats::default();
    for h in handles {
        let (actor, wire) = h.join().expect("worker thread panicked");
        stats.merge(&wire);
        actors.push(actor);
    }
    NetworkResult {
        actors,
        quiescent,
        delivered: delivered.load(Ordering::Acquire) as u64,
        residual_inflight,
        undrained,
        stats,
        elapsed: start.elapsed(),
        restarts: restarts.load(Ordering::Acquire),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        got: Vec<(ProcessId, u32, StepDepth)>,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast_others(1);
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
            self.got.push((from, *msg, ctx.depth()));
            if *msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    #[test]
    fn echo_round_trip_reaches_quiescence() {
        let actors = (0..4).map(|_| Echo { got: Vec::new() }).collect();
        let result = run_network(
            actors,
            NetworkOptions {
                seed: 1,
                delay_us: (10, 100),
                timeout: Duration::from_secs(10),
            },
        );
        assert!(result.quiescent);
        // p0 broadcast `1` to 3 peers; each replied `0`: 6 deliveries.
        assert_eq!(result.delivered, 6);
        // Depths travel on the wire: replies to p0 arrive at depth 2.
        assert_eq!(result.actors[0].got.len(), 3);
        assert!(result.actors[0]
            .got
            .iter()
            .all(|(_, _, d)| *d == StepDepth::new(2)));
        for a in &result.actors[1..] {
            assert_eq!(a.got.len(), 1);
        }
        // A drained run leaves no residue to report.
        assert_eq!(result.residual_inflight, 0);
        assert_eq!(result.undrained, vec![0; 4]);
        // The per-worker wire ledgers merge to the same totals the
        // simulator would report: 3 opener sends + 3 replies, all
        // unclassified (`Echo`'s `u32` payload has no class override),
        // no multicasts (`broadcast_others` expands to unicasts), and
        // the deepest causal step is the reply depth.
        assert_eq!(result.stats.sent, 6);
        assert_eq!(result.stats.delivered, result.delivered);
        assert_eq!(result.stats.sent_other, 6);
        assert_eq!(result.stats.multicasts, 0);
        assert_eq!(result.stats.max_depth, StepDepth::new(2));
        assert_eq!(result.stats.delivered_at_depth(StepDepth::new(2)), 3);
        assert!(result.elapsed > Duration::ZERO);
    }

    #[test]
    fn empty_traffic_is_quiescent_immediately() {
        struct Quiet;
        impl Actor for Quiet {
            type Msg = ();
            fn on_start(&mut self, _: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _: ProcessId, _: &(), _: &mut Context<'_, ()>) {}
        }
        let result = run_network(vec![Quiet, Quiet], NetworkOptions::default());
        assert!(result.quiescent);
        assert_eq!(result.delivered, 0);
    }

    #[test]
    fn timeout_cuts_off_livelock_and_reports_residue() {
        struct Forever;
        impl Actor for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast_others(());
            }
            fn on_message(&mut self, from: ProcessId, _: &(), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let result = run_network(
            vec![Forever, Forever],
            NetworkOptions {
                seed: 0,
                delay_us: (1, 10),
                timeout: Duration::from_millis(300),
            },
        );
        assert!(!result.quiescent);
        // A ping-pong livelock always has the ball in the air somewhere.
        assert!(result.residual_inflight > 0);
        assert_eq!(result.undrained.len(), 2);
    }

    #[test]
    fn wall_clock_timers_fire_in_order_and_count_toward_quiescence() {
        struct Alarm {
            fired: Vec<(u32, StepDepth)>,
        }
        impl Actor for Alarm {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.me() == ProcessId::new(0) {
                    // The long timer dwarfs the short one by two orders of
                    // magnitude so the chained timer armed by tick 1 still
                    // fires first even when a loaded scheduler delays the
                    // tick-1 handler by hundreds of milliseconds.
                    ctx.send_self_after(5_000, 1); // 5 ms
                    ctx.send_self_after(500_000, 2); // 500 ms
                }
            }
            fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
                assert_eq!(from, ctx.me(), "timer ticks are local");
                self.fired.push((*msg, ctx.depth()));
                if *msg == 1 {
                    // Chained timer: fires well before the 500 ms one.
                    ctx.send_self_after(1_000, 3);
                }
            }
        }
        let actors = vec![Alarm { fired: Vec::new() }, Alarm { fired: Vec::new() }];
        let result = run_network(
            actors,
            NetworkOptions {
                seed: 4,
                delay_us: (10, 100),
                timeout: Duration::from_secs(10),
            },
        );
        // Quiescence had to wait for the 500 ms timer: the run is only
        // quiescent because every pending timer fired.
        assert!(result.quiescent);
        assert_eq!(result.delivered, 3);
        let fired = &result.actors[0].fired;
        assert_eq!(
            fired.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
            vec![1, 3, 2],
            "timers fire in due order, chained ones in between"
        );
        // on_start timers deliver at depth 1; the chained one at depth 2.
        assert_eq!(fired[0].1, StepDepth::ONE);
        assert_eq!(fired[1].1, StepDepth::new(2));
        assert_eq!(fired[2].1, StepDepth::ONE);
        assert!(result.actors[1].fired.is_empty());
    }

    #[derive(Clone, Debug)]
    enum PingMsg {
        Tick,
        Ping,
        Pong,
    }

    /// p0 pings p1 on a repeating timer until it has collected `want`
    /// pongs; p1 counts handled pings into a shared cell that plays the
    /// role of a WAL (it survives the kill; the struct does not).
    struct PingNode {
        durable_pongs: Arc<AtomicU64>,
        restored: u64,
        pongs_seen: u64,
        want: u64,
    }

    impl Actor for PingNode {
        type Msg = PingMsg;

        fn on_start(&mut self, ctx: &mut Context<'_, PingMsg>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.send_self_after(20_000, PingMsg::Tick);
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: &PingMsg, ctx: &mut Context<'_, PingMsg>) {
            match msg {
                PingMsg::Tick => {
                    if self.pongs_seen < self.want {
                        ctx.send(ProcessId::new(1), PingMsg::Ping);
                        ctx.send_self_after(20_000, PingMsg::Tick);
                    }
                }
                PingMsg::Ping => {
                    self.durable_pongs.fetch_add(1, Ordering::AcqRel);
                    ctx.send(from, PingMsg::Pong);
                }
                PingMsg::Pong => self.pongs_seen += 1,
            }
        }
    }

    impl Recoverable for PingNode {
        fn restart(&mut self, _ctx: &mut Context<'_, PingMsg>) {
            self.restored = self.durable_pongs.load(Ordering::Acquire);
        }
    }

    #[test]
    fn kill_respawn_loses_down_window_traffic_and_restores_durable_state() {
        let durable = Arc::new(AtomicU64::new(0));
        let actors = vec![
            PingNode {
                durable_pongs: Arc::new(AtomicU64::new(0)),
                restored: 0,
                pongs_seen: 0,
                want: 5,
            },
            PingNode {
                durable_pongs: Arc::clone(&durable),
                restored: 0,
                pongs_seen: 0,
                want: 5,
            },
        ];
        let rebuild_cell = Arc::clone(&durable);
        let result = run_network_with_kill(
            actors,
            NetworkOptions {
                seed: 9,
                delay_us: (10, 100),
                timeout: Duration::from_secs(20),
            },
            ThreadKillPlan {
                victim: ProcessId::new(1),
                after: Duration::from_millis(50),
                down: Duration::from_millis(120),
                // The sentinel `restored` proves restart() ran: only the
                // recovery hook overwrites it with the durable count.
                rebuild: Box::new(move || PingNode {
                    durable_pongs: rebuild_cell,
                    restored: u64::MAX,
                    pongs_seen: 0,
                    want: 5,
                }),
            },
        );
        assert_eq!(result.restarts, 1, "the kill fired and the respawn booted");
        assert!(result.quiescent, "the conversation must finish and drain");
        // Pings swallowed by the down window were re-sent by the ticker
        // until five of them found a live echoer.
        assert!(result.actors[0].pongs_seen >= 5);
        assert!(durable.load(Ordering::Acquire) >= result.actors[0].pongs_seen);
        // The respawned incarnation rebooted through restart(), replacing
        // its sentinel with the state the first incarnation persisted.
        assert_ne!(result.actors[1].restored, u64::MAX);
    }

    #[test]
    fn a_run_cut_off_before_the_kill_reports_zero_restarts() {
        struct Quiet;
        impl Actor for Quiet {
            type Msg = ();
            fn on_start(&mut self, _: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _: ProcessId, _: &(), _: &mut Context<'_, ()>) {}
        }
        impl Recoverable for Quiet {
            fn restart(&mut self, _: &mut Context<'_, ()>) {}
        }
        // The kill is scheduled far beyond the timeout: the run is cut
        // off first, the victim worker releases the respawn-pending token
        // on shutdown, and the teardown must not hang or respawn.
        let result = run_network_with_kill(
            vec![Quiet, Quiet],
            NetworkOptions {
                seed: 0,
                delay_us: (1, 10),
                timeout: Duration::from_millis(200),
            },
            ThreadKillPlan {
                victim: ProcessId::new(1),
                after: Duration::from_secs(3600),
                down: Duration::from_millis(1),
                rebuild: Box::new(|| Quiet),
            },
        );
        assert_eq!(result.restarts, 0);
        // The pending kill holds the in-flight token, so an otherwise
        // silent network is (correctly) reported non-quiescent.
        assert!(!result.quiescent);
    }
}
