//! Thread-level kill -9 + respawn against a real `FileWal`: the
//! threadnet analogue of the netd cluster's divergent kill phase.
//!
//! Seven replicas with *divergent* pending streams (every process
//! proposes its own commands, so a respawned victim cannot recompute
//! commits locally) run multi-slot DEX over jittered channels. One
//! non-coordinator victim is killed mid-run — volatile state and armed
//! timers destroyed, its inbox lost for the down window — and respawned
//! against the same WAL file its first incarnation fsynced. The fresh
//! incarnation replays the WAL, re-proposes, and closes whatever the
//! cluster decided while it was down through the `t + 1`-vouched
//! catch-up protocol. Convergence is byte-level: every replica commits
//! the full prefix with one digest, and the network drains.

use dex_replication::{Durability, FileWal, Replica, StateMachine, TotalOrder};
use dex_threadnet::{run_network_with_kill, NetworkOptions, ThreadKillPlan};
use dex_types::{ProcessId, SystemConfig};
use std::path::Path;
use std::time::Duration;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds replica `i` with its divergent pending stream and a durable
/// store over `dir/replica_<i>.wal` — called once per first incarnation
/// and again, with identical arguments, for the victim's respawn.
fn build(
    cfg: SystemConfig,
    dir: &Path,
    i: usize,
    slots: u64,
    seed: u64,
) -> Replica<TotalOrder<u64>> {
    let pending: Vec<u64> = (0..slots)
        .map(|s| splitmix64(seed ^ ((i as u64) << 32) ^ s))
        .collect();
    let mut replica = Replica::new(cfg, ProcessId::new(i), ProcessId::new(0), pending, slots);
    // `snapshot_every = 0`: never compact, recovery replays the full WAL
    // — in-memory snapshots would not survive the kill anyway.
    let wal = FileWal::open(dir.join(format!("replica_{i}.wal"))).expect("open wal");
    replica.enable_durability(Durability::new(Box::new(wal), 0));
    replica
}

#[test]
fn kill9_respawn_replays_the_same_file_wal_and_converges() {
    let n = 7;
    let slots = 8u64;
    let seed = 11u64;
    let victim = 3usize;
    let cfg = SystemConfig::new(n, 1).unwrap();
    let dir = std::env::temp_dir().join(format!("dex-threadnet-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("wal dir");
    for i in 0..n {
        let _ = std::fs::remove_file(dir.join(format!("replica_{i}.wal")));
    }

    let replicas: Vec<_> = (0..n).map(|i| build(cfg, &dir, i, slots, seed)).collect();
    let rebuild_dir = dir.clone();
    let result = run_network_with_kill(
        replicas,
        NetworkOptions {
            seed,
            delay_us: (200, 2_000),
            timeout: Duration::from_secs(60),
        },
        ThreadKillPlan {
            victim: ProcessId::new(victim),
            after: Duration::from_millis(8),
            down: Duration::from_millis(150),
            rebuild: Box::new(move || build(cfg, &rebuild_dir, victim, slots, seed)),
        },
    );

    assert_eq!(
        result.restarts, 1,
        "the kill must fire and the respawn boot"
    );
    assert!(
        result.quiescent,
        "cluster must drain after recovery (residual {} undrained {:?})",
        result.residual_inflight, result.undrained
    );
    let digest = result.actors[0].machine().digest();
    for (i, replica) in result.actors.iter().enumerate() {
        assert_eq!(
            replica.log().committed_prefix() as u64,
            slots,
            "replica {i} committed prefix"
        );
        assert_eq!(replica.machine().digest(), digest, "replica {i} digest");
    }
    // The respawned incarnation booted through Recoverable::restart.
    assert_eq!(result.actors[victim].restarts(), 1);
    // And it recovered from a WAL the first incarnation actually wrote:
    // the shared file holds fsynced commit records, every line decodable.
    let wal =
        std::fs::read_to_string(dir.join(format!("replica_{victim}.wal"))).expect("victim wal");
    assert!(!wal.trim().is_empty(), "victim WAL must hold commits");
    assert!(
        wal.lines().all(|l| l.starts_with("c ")),
        "victim WAL shape: {wal}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
