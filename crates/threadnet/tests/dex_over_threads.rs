//! Integration: Algorithm DEX running under real OS concurrency — one
//! thread per process, jittered channel delivery. Confirms the state
//! machines are not simulation artifacts.

use dex_conditions::FrequencyPair;
use dex_core::{DecisionPath, DexActor, DexProcess};
use dex_threadnet::{run_network, NetworkOptions};
use dex_types::{ProcessId, StepDepth, SystemConfig};
use dex_underlying::OracleConsensus;
use std::time::Duration;

type Node = DexActor<u64, FrequencyPair, OracleConsensus<u64>>;

fn build(n: usize, t: usize, proposals: &[u64]) -> Vec<Node> {
    let cfg = SystemConfig::new(n, t).unwrap();
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let me = ProcessId::new(i);
            DexActor::new(
                DexProcess::new(
                    cfg,
                    me,
                    FrequencyPair::new(cfg).unwrap(),
                    OracleConsensus::new(cfg, me, ProcessId::new(0)),
                ),
                *v,
            )
        })
        .collect()
}

fn options(seed: u64) -> NetworkOptions {
    NetworkOptions {
        seed,
        delay_us: (20, 400),
        timeout: Duration::from_secs(20),
    }
}

#[test]
fn unanimous_run_is_one_step_under_threads() {
    let result = run_network(build(7, 1, &[5; 7]), options(1));
    assert!(result.quiescent, "network must drain");
    for a in &result.actors {
        let d = a.decision().expect("every process decides");
        assert_eq!(d.value, 5);
        assert_eq!(d.path, DecisionPath::OneStep);
        assert_eq!(d.depth, StepDepth::new(1));
    }
}

#[test]
fn split_run_agrees_under_threads() {
    for seed in 0..3 {
        let result = run_network(build(7, 1, &[3, 3, 3, 3, 9, 9, 9]), options(seed));
        assert!(result.quiescent);
        let first = result.actors[0].decision().expect("decided").value;
        for a in &result.actors {
            let d = a.decision().expect("every process decides");
            assert_eq!(d.value, first, "agreement under real concurrency");
        }
    }
}

#[test]
fn moderate_margin_uses_fast_paths_under_threads() {
    // Margin 3 (5 vs 2): the two-step channel should fire.
    let result = run_network(build(7, 1, &[3, 3, 3, 3, 3, 9, 9]), options(7));
    assert!(result.quiescent);
    for a in &result.actors {
        let d = a.decision().expect("decided");
        assert_eq!(d.value, 3);
        assert_ne!(d.path, DecisionPath::OneStep, "margin 3 ≤ 4t blocks P1");
    }
}

#[test]
fn traced_run_checks_clean_under_threads() {
    // Event recording under real concurrency: per-process event order is
    // still causally consistent, so the invariant checker must accept it
    // (cross-run byte-stability is only promised for the simulator).
    let mut actors = build(7, 1, &[5; 7]);
    for (i, a) in actors.iter_mut().enumerate() {
        a.process_mut().enable_obs();
        assert_eq!(a.process().obs().me(), i as u16);
    }
    let result = run_network(actors, options(5));
    assert!(result.quiescent);
    let processes: Vec<dex_obs::ProcessTrace> = result
        .actors
        .iter()
        .map(|a| a.process().obs().trace())
        .collect();
    for p in &processes {
        assert!(
            p.events
                .iter()
                .any(|e| matches!(e.kind, dex_obs::EventKind::Send { .. })),
            "process {} recorded no sends",
            p.id
        );
        assert!(
            p.events
                .iter()
                .any(|e| matches!(e.kind, dex_obs::EventKind::Decide { .. })),
            "process {} recorded no decision",
            p.id
        );
    }
    let run = dex_obs::RunTrace {
        meta: dex_obs::TraceMeta {
            seed: 5,
            n: 7,
            t: 1,
            algo: "dex-freq".to_string(),
            rules: dex_obs::SchemeRules::Frequency,
            faulty: Vec::new(),
            legend: Vec::new(),
            chaos: None,
            pipeline: None,
        },
        processes,
    };
    let report = dex_obs::check(&run);
    assert!(report.is_ok(), "{:?}", report.violations);
}
