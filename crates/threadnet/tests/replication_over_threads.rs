//! The replicated KV cluster under real OS concurrency: multi-slot DEX,
//! seven threads, jittered channels — logs and digests must still converge.

use dex_replication::{Command, KvStore, Replica};
use dex_threadnet::{run_network, NetworkOptions};
use dex_types::{ProcessId, SystemConfig};
use std::time::Duration;

#[test]
fn threaded_cluster_converges() {
    let cfg = SystemConfig::new(7, 1).unwrap();
    let requests = vec![Command::put(1, 10), Command::add(1, 5), Command::put(2, 20)];
    let replicas: Vec<Replica<KvStore>> = (0..7)
        .map(|i| {
            Replica::new(
                cfg,
                ProcessId::new(i),
                ProcessId::new(0),
                requests.clone(),
                3,
            )
        })
        .collect();
    let result = run_network(
        replicas,
        NetworkOptions {
            seed: 5,
            delay_us: (20, 300),
            timeout: Duration::from_secs(30),
        },
    );
    assert!(result.quiescent, "cluster must drain");
    let first_digest = result.actors[0].machine().digest();
    for r in &result.actors {
        assert_eq!(r.log().committed_prefix(), 3, "all slots committed");
        assert_eq!(r.log().prefix(), requests, "log matches the request order");
        assert_eq!(r.machine().digest(), first_digest, "state convergence");
    }
    // Uncontended: key 1 = 15, key 2 = 20.
    assert_eq!(result.actors[0].machine().get(1), Some(15));
    assert_eq!(result.actors[0].machine().get(2), Some(20));
}
