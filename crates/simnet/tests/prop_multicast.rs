//! The multicast fast path must be *observationally identical* to the old
//! eager per-recipient expansion: a `Dest::All` broadcast and `n` explicit
//! `send`s (in ascending recipient order) consume the same RNG stream,
//! produce the same sequence numbers and therefore the same virtual-time
//! schedule, trace, and statistics — the slab only changes who owns the
//! payload bytes.

use dex_simnet::{Actor, Context, DelayModel, NetStats, Simulation, Trace};
use dex_types::ProcessId;
use proptest::prelude::*;

/// Gossip over shared payloads: broadcast on start, rebroadcast each
/// received value while a per-process budget lasts.
struct Fast {
    budget: u32,
    sum: u64,
}

/// The same protocol, but every multicast is hand-expanded into `n`
/// explicit sends — the pre-slab semantics, expressed in actor code.
struct Expanded {
    budget: u32,
    sum: u64,
}

fn react(budget: &mut u32, sum: &mut u64, msg: u64) -> Option<u64> {
    *sum = sum.wrapping_add(msg);
    if *budget > 0 {
        *budget -= 1;
        Some(*sum | 1)
    } else {
        None
    }
}

impl Actor for Fast {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(ctx.me().index() as u64 + 1);
    }

    fn on_message(&mut self, _from: ProcessId, msg: &u64, ctx: &mut Context<'_, u64>) {
        if let Some(reply) = react(&mut self.budget, &mut self.sum, *msg) {
            ctx.broadcast(reply);
        }
    }
}

fn send_to_all(ctx: &mut Context<'_, u64>, msg: u64) {
    for i in 0..ctx.n() {
        ctx.send(ProcessId::new(i), msg);
    }
}

impl Actor for Expanded {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        send_to_all(ctx, ctx.me().index() as u64 + 1);
    }

    fn on_message(&mut self, _from: ProcessId, msg: &u64, ctx: &mut Context<'_, u64>) {
        if let Some(reply) = react(&mut self.budget, &mut self.sum, *msg) {
            send_to_all(ctx, reply);
        }
    }
}

fn run_fast(n: usize, budget: u32, seed: u64, delay: DelayModel) -> (Trace, NetStats, Vec<u64>) {
    let mut sim = Simulation::builder((0..n).map(|_| Fast { budget, sum: 0 }).collect())
        .seed(seed)
        .delay(delay)
        .build();
    sim.enable_trace();
    let out = sim.run(u64::MAX);
    assert!(out.quiescent);
    let sums = sim.actors().iter().map(|a| a.sum).collect();
    (sim.trace().unwrap().clone(), sim.stats().clone(), sums)
}

fn run_expanded(
    n: usize,
    budget: u32,
    seed: u64,
    delay: DelayModel,
) -> (Trace, NetStats, Vec<u64>) {
    let mut sim = Simulation::builder((0..n).map(|_| Expanded { budget, sum: 0 }).collect())
        .seed(seed)
        .delay(delay)
        .build();
    sim.enable_trace();
    let out = sim.run(u64::MAX);
    assert!(out.quiescent);
    let sums = sim.actors().iter().map(|a| a.sum).collect();
    (sim.trace().unwrap().clone(), sim.stats().clone(), sums)
}

/// Fixed-scenario regression: the rendered trace (every send, delivery,
/// timestamp, depth, and payload) is byte-identical between the two
/// semantics, and so is the statistics block apart from the multicast
/// accounting itself.
#[test]
fn broadcast_trace_is_byte_identical_to_eager_expansion() {
    for seed in [0, 7, 31, 99] {
        let delay = DelayModel::Uniform { min: 1, max: 20 };
        let (ft, fs, fsums) = run_fast(5, 3, seed, delay.clone());
        let (et, es, esums) = run_expanded(5, 3, seed, delay);
        assert_eq!(ft.render(), et.render(), "seed {seed}");
        assert_eq!(fsums, esums, "seed {seed}");
        assert_eq!(fs.sent, es.sent, "seed {seed}");
        assert_eq!(fs.delivered, es.delivered, "seed {seed}");
        assert_eq!(fs.max_depth, es.max_depth, "seed {seed}");
        assert_eq!(fs.per_depth, es.per_depth, "seed {seed}");
        // Wire-byte accounting is per scheduled delivery, so sharing the
        // payload in the slab must not make the multicast look cheaper on
        // the wire than the expansion: every u64 message costs 8 bytes.
        assert_eq!(fs.bytes_on_wire, es.bytes_on_wire, "seed {seed}");
        assert_eq!(fs.bytes_on_wire, fs.sent * 8, "seed {seed}");
        // The fast path shares payloads; the expansion clones them n − 1
        // times per multicast inside `Context::send`'s caller-side loop.
        assert_eq!(fs.payload_clones, 0, "seed {seed}");
        assert!(fs.multicasts > 0, "seed {seed}");
        assert_eq!(es.multicasts, 0, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `Dest::All` ≡ `n` explicit sends under arbitrary system sizes,
    /// budgets, seeds, and delay jitter: same RNG consumption, same
    /// schedule, same trace, same end state.
    #[test]
    fn multicast_equals_explicit_sends(
        n in 1usize..8,
        budget in 0u32..4,
        seed in any::<u64>(),
        max_delay in 1u64..30,
    ) {
        let delay = DelayModel::Uniform { min: 1, max: max_delay };
        let (ft, fs, fsums) = run_fast(n, budget, seed, delay.clone());
        let (et, es, esums) = run_expanded(n, budget, seed, delay);
        prop_assert_eq!(ft.render(), et.render());
        prop_assert_eq!(fsums, esums);
        prop_assert_eq!(fs.sent, es.sent);
        prop_assert_eq!(fs.delivered, es.delivered);
        prop_assert_eq!(fs.per_depth, es.per_depth);
        prop_assert_eq!(fs.payload_clones, 0);
    }
}
