//! Property tests for the chaos fault-schedule layer.
//!
//! The chaos semantics are *defer, don't lose* for partitions and bounded
//! crash windows (a held message is just a long-but-finite asynchronous
//! delay) and *idempotence-safe* for duplication — so over an arbitrary
//! generated healing schedule a gossiping census protocol must still
//! behave exactly as on a clean network:
//!
//! * **agreement** — every process ends with the same decision digest;
//! * **termination after the last heal** — the run drains and every
//!   process decides;
//! * **crash silence** — no delivery lands inside a victim's window
//!   (chained windows compose: the hold is a fixpoint over all of them);
//! * **determinism** — the same (seed, schedule) replays bit-for-bit.
//!
//! Drops are the exception by design: a lossy link is a *genuine* loss, so
//! the drop property only asserts that traffic between processes not named
//! by any lossy entry survives in full. (The exact deferral instants of
//! partitioned/crashed deliveries are pinned by the unit tests in
//! `sim.rs`; here the schedules are random compositions.)

use dex_simnet::{Actor, Context, DelayModel, FaultSchedule, Simulation, Trace, TraceEvent};
use dex_types::ProcessId;
use proptest::prelude::*;

/// Gossiping census: broadcast own `(origin, value)` fact, forward each
/// fact the first time it arrives (so traffic spans many time units, not
/// just the t = 0 start-up burst), decide on a digest of the full census
/// once all `n` facts are known. First-write-wins per origin makes
/// duplicated deliveries harmless — exactly the idempotence the protocols
/// under test rely on.
struct Census {
    n: usize,
    seen: Vec<Option<u64>>,
    decided: Option<u64>,
}

impl Census {
    fn new(n: usize) -> Self {
        Census {
            n,
            seen: vec![None; n],
            decided: None,
        }
    }

    fn record(&mut self, origin: usize, value: u64) -> bool {
        let slot = &mut self.seen[origin];
        let fresh = slot.is_none();
        if fresh {
            *slot = Some(value);
        }
        if self.decided.is_none() && self.seen.iter().all(Option::is_some) {
            self.decided = Some(
                self.seen
                    .iter()
                    .map(|v| v.unwrap())
                    .fold(self.n as u64, |acc, v| acc.wrapping_mul(31).wrapping_add(v)),
            );
        }
        fresh
    }
}

impl Actor for Census {
    type Msg = (usize, u64);

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let me = ctx.me().index();
        let fact = (me, me as u64 * 10 + 1);
        self.record(me, fact.1);
        ctx.broadcast(fact);
    }

    fn on_message(&mut self, _from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        if self.record(msg.0, msg.1) {
            ctx.broadcast(*msg);
        }
    }
}

/// Builds an arbitrary healing schedule from raw sampled ingredients: one
/// optional partition (side = the mask's set bits below `n`), up to two
/// recovering crash windows (`from >= 1` -- `on_start` sends at t = 0), and
/// an optional all-links duplication probability. No drops: every fault
/// here heals, so full delivery must survive. Returns the schedule plus
/// the crash windows `(victim, from, until)` the properties check.
#[allow(clippy::type_complexity)]
fn build_healing(
    n: usize,
    partition: Option<(u8, u64, u64)>,
    crashes: &[(usize, u64, u64)],
    dup: Option<f64>,
) -> (FaultSchedule, Vec<(usize, u64, u64)>) {
    let mut schedule = FaultSchedule::new();
    if let Some((mask, from, len)) = partition {
        let side: Vec<ProcessId> = (0..n)
            .filter(|i| mask >> i & 1 == 1)
            .map(ProcessId::new)
            .collect();
        schedule = schedule.partition(side, from, from + len);
    }
    let windows: Vec<(usize, u64, u64)> = crashes
        .iter()
        .map(|&(victim, from, len)| (victim % n, from, from + len))
        .collect();
    for &(victim, from, until) in &windows {
        schedule = schedule.crash(ProcessId::new(victim), from, until);
    }
    if let Some(p) = dup {
        schedule = schedule.dup_all(p);
    }
    (schedule, windows)
}

fn run_census(n: usize, seed: u64, schedule: FaultSchedule) -> (Simulation<Census>, Trace, bool) {
    let mut sim = Simulation::builder((0..n).map(|_| Census::new(n)).collect())
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .faults(schedule)
        .build();
    sim.enable_trace();
    let quiescent = sim.run(1_000_000).quiescent;
    let trace = sim.trace().unwrap().clone();
    (sim, trace, quiescent)
}

/// Checks crash silence against a recorded trace: no delivery may land
/// inside any of the victim's windows (the simulator's hold is a fixpoint
/// over chained windows, so each window can be checked independently).
fn assert_crash_silence(trace: &Trace, crashes: &[(usize, u64, u64)]) -> Result<(), TestCaseError> {
    for ev in trace.events() {
        if let TraceEvent::Deliver { to, at, .. } = ev {
            let at = at.as_units();
            for &(victim, start, until) in crashes {
                if to.index() == victim {
                    prop_assert!(
                        at < start || at >= until,
                        "delivery to p{victim} at t={at} inside crash window [{start}, {until})"
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    // Any healing schedule (partitions, recovering crashes, dups) keeps
    // the census protocol safe and live: quiescent run, every process
    // decides, all decide the same digest, and no delivery lands inside a
    // crash window.
    #[test]
    fn healing_schedules_never_violate_agreement_or_termination(
        seed in any::<u64>(),
        n in 3usize..7,
        partition in proptest::option::of((1u8..63, 0u64..40, 1u64..120)),
        raw_crashes in proptest::collection::vec((0usize..8, 1u64..40, 1u64..100), 0..3),
        dup in proptest::option::of(0.05f64..0.5),
    ) {
        let (schedule, crashes) = build_healing(n, partition, &raw_crashes, dup);
        let (sim, trace, quiescent) = run_census(n, seed, schedule);
        prop_assert!(quiescent, "healing schedules must drain");

        let decisions: Vec<Option<u64>> = sim.actors().iter().map(|a| a.decided).collect();
        for d in &decisions {
            prop_assert!(d.is_some(), "every process must decide after the last heal");
            prop_assert_eq!(*d, decisions[0], "agreement under chaos");
        }
        assert_crash_silence(&trace, &crashes)?;
    }

    // The same (seed, schedule) replays bit-for-bit: identical trace,
    // identical statistics, identical decisions.
    #[test]
    fn chaos_runs_are_deterministic_per_seed_and_schedule(
        n in 3usize..7,
        seed in any::<u64>(),
        dup in 0.0f64..0.5,
        drop in 0.0f64..0.4,
    ) {
        let schedule = FaultSchedule::new()
            .lossy_link(Some(ProcessId::new(0)), None, drop, dup)
            .partition([ProcessId::new(1)], 5, 60)
            .crash(ProcessId::new(2.min(n - 1)), 3, 50);
        let (sim_a, trace_a, qa) = run_census(n, seed, schedule.clone());
        let (sim_b, trace_b, qb) = run_census(n, seed, schedule);
        prop_assert_eq!(qa, qb);
        prop_assert_eq!(trace_a.render(), trace_b.render());
        prop_assert_eq!(sim_a.stats(), sim_b.stats());
        let da: Vec<_> = sim_a.actors().iter().map(|a| a.decided).collect();
        let db: Vec<_> = sim_b.actors().iter().map(|a| a.decided).collect();
        prop_assert_eq!(da, db);
    }

    // Drops are genuine losses, but only on the lossy links: traffic
    // between processes not named by any lossy entry is unaffected, so
    // (gossip aside) every such process still hears every such origin.
    #[test]
    fn drops_only_starve_the_lossy_links(
        n in 4usize..7,
        seed in any::<u64>(),
        drop in 0.3f64..1.0,
    ) {
        // Process 0 is the lossy one, in both directions.
        let schedule = FaultSchedule::new().lossy_processes([ProcessId::new(0)], drop, 0.0);
        let (sim, _, quiescent) = run_census(n, seed, schedule);
        prop_assert!(quiescent, "drops must never livelock the network");
        for (i, actor) in sim.actors().iter().enumerate().skip(1) {
            for j in 1..n {
                prop_assert!(
                    actor.seen[j].is_some(),
                    "p{i} must still hear p{j}: only links touching p0 are lossy"
                );
            }
        }
    }
}

/// Fixed-scenario regression pin: one known schedule, one seed — catches
/// any accidental change to the chaos RNG stream, the per-delivery
/// decision order (partition → drop → dup → crash), or the deferred-
/// delivery arithmetic.
#[test]
fn fixed_seed_chaos_run_is_byte_stable() {
    let schedule = FaultSchedule::new()
        .partition([ProcessId::new(0), ProcessId::new(1)], 4, 70)
        .crash(ProcessId::new(2), 2, 40)
        .lossy_link(Some(ProcessId::new(3)), None, 0.25, 0.0)
        .dup_all(0.2);
    let (sim, trace, quiescent) = run_census(5, 31, schedule.clone());
    assert!(quiescent);
    let (_, trace_again, _) = run_census(5, 31, schedule);
    assert_eq!(trace.render(), trace_again.render());
    // Conservation: every sent message is delivered or dropped, and every
    // duplication adds exactly one extra delivery.
    let stats = sim.stats();
    assert_eq!(
        stats.delivered,
        stats.sent - stats.dropped + stats.duplicated
    );
    assert!(stats.held_partition > 0, "the cut must have held something");
    assert!(
        stats.held_crash > 0,
        "the crash window must have held something"
    );
    assert!(stats.dropped > 0, "the lossy link must have lost something");
}
