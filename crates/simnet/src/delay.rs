//! Message delay models.

use dex_types::ProcessId;
use rand::Rng;

/// How long a message takes from send to delivery, in virtual time units.
///
/// All models produce strictly positive delays, so causality is preserved
/// (a reaction is never delivered at the same instant as its cause). The
/// asynchronous model allows *any* finite delay; the models here let
/// experiments explore well-behaved runs (small jitter) as well as heavily
/// skewed ones.
///
/// # Examples
///
/// ```
/// use dex_simnet::DelayModel;
/// use dex_types::ProcessId;
/// let model = DelayModel::Uniform { min: 5, max: 15 };
/// let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
/// let d = model.sample(&mut rng, ProcessId::new(0), ProcessId::new(1));
/// assert!((5..=15).contains(&d));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum DelayModel {
    /// Every message takes exactly this many units (synchronous lockstep —
    /// useful for step-exact unit tests).
    Constant(u64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum delay (≥ 1 is enforced at sampling time).
        min: u64,
        /// Maximum delay (inclusive).
        max: u64,
    },
    /// Geometric approximation of an exponential with the given mean —
    /// occasionally produces very long tails, as asynchrony permits.
    Exponential {
        /// Mean delay.
        mean: u64,
    },
    /// A base model with a set of *slow* processes: any message sent **by**
    /// a slow process is stretched by `factor`. This simulates slow-but-
    /// correct processes, important for adaptiveness experiments (a view can
    /// be missing entries from slow correct processes, not only from faulty
    /// ones).
    Skewed {
        /// Model applied to ordinary messages.
        base: Box<DelayModel>,
        /// Processes whose outgoing messages are slowed.
        slow: Vec<ProcessId>,
        /// Multiplier applied to slow senders' delays.
        factor: u64,
    },
    /// A base model with explicit per-link overrides — the *scheduling
    /// adversary*: asynchrony lets an adversary pick any finite delay for
    /// any link, and targeted link slowdowns are how one starves a specific
    /// process of specific views.
    Targeted {
        /// Model applied to non-overridden links.
        base: Box<DelayModel>,
        /// `(from, to, fixed_delay)` overrides.
        links: Vec<(ProcessId, ProcessId, u64)>,
    },
}

impl DelayModel {
    /// Samples the delay of one message from `from` to `to`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, from: ProcessId, to: ProcessId) -> u64 {
        let raw = match self {
            DelayModel::Constant(units) => (*units).max(1),
            DelayModel::Uniform { min, max } => {
                let lo = (*min).max(1);
                let hi = (*max).max(lo);
                rng.random_range(lo..=hi)
            }
            DelayModel::Exponential { mean } => {
                // Inverse-transform sampling, clamped to [1, 50 * mean].
                let mean = (*mean).max(1) as f64;
                let u: f64 = rng.random_range(0.0_f64..1.0).max(1e-12);
                let d = (-u.ln() * mean).ceil() as u64;
                // Saturating: a huge mean would overflow the clamp bound in
                // release builds, silently producing tiny delays.
                d.clamp(1, (mean as u64).saturating_mul(50))
            }
            DelayModel::Skewed { base, slow, factor } => {
                let d = base.sample(rng, from, to);
                if slow.contains(&from) {
                    d.saturating_mul((*factor).max(1))
                } else {
                    d
                }
            }
            DelayModel::Targeted { base, links } => links
                .iter()
                .find(|(f, t, _)| *f == from && *t == to)
                .map(|(_, _, d)| (*d).max(1))
                .unwrap_or_else(|| base.sample(rng, from, to)),
        };
        raw.max(1)
    }
}

impl Default for DelayModel {
    /// A mildly jittered network: uniform in `[1, 10]`.
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 10 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_constant_and_positive() {
        let m = DelayModel::Constant(0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)), 1);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = DelayModel::Uniform { min: 3, max: 9 };
        let mut r = rng();
        for _ in 0..200 {
            let d = m.sample(&mut r, ProcessId::new(0), ProcessId::new(1));
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = DelayModel::Uniform { min: 0, max: 0 };
        let mut r = rng();
        assert_eq!(m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)), 1);
    }

    #[test]
    fn exponential_is_positive_and_bounded() {
        let m = DelayModel::Exponential { mean: 10 };
        let mut r = rng();
        for _ in 0..500 {
            let d = m.sample(&mut r, ProcessId::new(0), ProcessId::new(1));
            assert!(d >= 1);
            assert!(d <= 500);
        }
    }

    #[test]
    fn skewed_slows_only_slow_senders() {
        let m = DelayModel::Skewed {
            base: Box::new(DelayModel::Constant(4)),
            slow: vec![ProcessId::new(2)],
            factor: 10,
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)), 4);
        assert_eq!(m.sample(&mut r, ProcessId::new(2), ProcessId::new(1)), 40);
    }

    #[test]
    fn targeted_overrides_specific_links_only() {
        let m = DelayModel::Targeted {
            base: Box::new(DelayModel::Constant(2)),
            links: vec![(ProcessId::new(0), ProcessId::new(1), 100)],
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)), 100);
        assert_eq!(m.sample(&mut r, ProcessId::new(1), ProcessId::new(0)), 2);
        assert_eq!(m.sample(&mut r, ProcessId::new(0), ProcessId::new(2)), 2);
    }

    #[test]
    fn targeted_zero_override_is_clamped() {
        let m = DelayModel::Targeted {
            base: Box::new(DelayModel::Constant(2)),
            links: vec![(ProcessId::new(0), ProcessId::new(1), 0)],
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)), 1);
    }

    #[test]
    fn extreme_skew_over_exponential_saturates_instead_of_wrapping() {
        // A huge exponential mean times a huge skew factor used to overflow
        // `u64` in release builds, wrapping to a tiny delay. It must
        // saturate: slow means *slow*.
        let m = DelayModel::Skewed {
            base: Box::new(DelayModel::Exponential { mean: u64::MAX / 2 }),
            slow: vec![ProcessId::new(0)],
            factor: u64::MAX,
        };
        let mut r = rng();
        for _ in 0..50 {
            let d = m.sample(&mut r, ProcessId::new(0), ProcessId::new(1));
            assert!(d >= 1);
        }
    }

    #[test]
    fn determinism_under_same_seed() {
        let m = DelayModel::Uniform { min: 1, max: 100 };
        let seq1: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..50)
                .map(|_| m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)))
                .collect()
        };
        let seq2: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..50)
                .map(|_| m.sample(&mut r, ProcessId::new(0), ProcessId::new(1)))
                .collect()
        };
        assert_eq!(seq1, seq2);
    }
}
