//! Chaos fault schedules: timed partitions, lossy links, crash windows.
//!
//! A [`FaultSchedule`] describes *network-level* faults, deterministically
//! per seed and orthogonally to Byzantine process behaviour (which is an
//! actor concern — see `dex-adversary`). Three fault families compose:
//!
//! * **Lossy links** ([`LinkFault`]) — per-link drop and duplication
//!   probabilities, optionally restricted to a time window. Drops are
//!   *genuine* message losses; a link that loses messages is not a reliable
//!   link, so liveness is only guaranteed when every lossy link touches a
//!   process already counted in the fault budget ("drops are modeled as
//!   faulty links" — see DESIGN.md §11). Duplications are harmless to the
//!   protocols under test (views and witness maps are first-write-wins).
//! * **Partitions** ([`Partition`]) — a timed cut between one side and the
//!   rest. Messages crossing an open cut are **held, not lost**: they are
//!   re-scheduled to arrive after the heal instant, which is exactly an
//!   asynchronous schedule with a long-but-finite delay. Safety must
//!   therefore hold *during* the partition and liveness *after* the last
//!   heal (GST-style).
//! * **Crash windows** ([`CrashWindow`]) — a process is silent in
//!   `[from, until)`: deliveries to it are deferred to its recovery instant
//!   (its inbox queues while it is down), so it handles nothing — and hence
//!   sends nothing — inside the window. A window with no recovery drops the
//!   process's inbound traffic forever.
//!
//! All chaos randomness is drawn from a **separate RNG stream** (seeded
//! from the simulation seed xor a fixed salt), so a run with an empty
//! schedule consumes exactly the delay-model stream of a chaos-free build —
//! fault-free artifacts stay byte-identical.

use dex_types::ProcessId;
use std::collections::BTreeSet;

/// Drop/duplication probabilities on a set of links.
///
/// `from`/`to` select links: `None` matches any process on that endpoint.
/// Several entries may match the same link; their drop (and dup)
/// probabilities combine independently (`1 − ∏(1 − pᵢ)`).
#[derive(Clone, PartialEq, Debug)]
pub struct LinkFault {
    /// Sender selector (`None` = any).
    pub from: Option<ProcessId>,
    /// Recipient selector (`None` = any).
    pub to: Option<ProcessId>,
    /// Probability that a matching message is dropped, in `[0, 1]`.
    pub drop: f64,
    /// Probability that a matching (non-dropped) message is delivered
    /// twice, in `[0, 1]`.
    pub dup: f64,
    /// Active send-time window `[start, end)`; `None` = the whole run.
    pub window: Option<(u64, u64)>,
}

impl LinkFault {
    fn matches(&self, from: ProcessId, to: ProcessId, at: u64) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.window.is_none_or(|(s, e)| (s..e).contains(&at))
    }
}

/// A timed network cut: `side` vs everyone else, open over `[from, until)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    /// One side of the cut (the complement is the other side).
    pub side: BTreeSet<ProcessId>,
    /// Instant the cut opens.
    pub from: u64,
    /// Instant the cut heals (exclusive end of the window).
    pub until: u64,
}

impl Partition {
    /// Whether a message sent at `at` from `a` to `b` crosses the open cut.
    fn cuts(&self, a: ProcessId, b: ProcessId, at: u64) -> bool {
        (self.from..self.until).contains(&at) && self.side.contains(&a) != self.side.contains(&b)
    }
}

/// What happens to a crashed process's volatile state when it comes back.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CrashMode {
    /// The process is merely silent: deliveries queue while it is down and
    /// resume at the recovery instant, and its in-memory state survives
    /// intact. This models a long GC pause or scheduling stall, not a real
    /// crash.
    #[default]
    Silence,
    /// The process actually crashes and restarts with **amnesia**: every
    /// delivery that lands inside the window is lost (a dead process has no
    /// inbox), and at the recovery instant the runtime invokes the actor's
    /// [`Recoverable::restart`](crate::Recoverable::restart) hook so it can
    /// rebuild from whatever it persisted. Because in-window traffic is
    /// genuinely lost, a `Restart` window endangers liveness unless the
    /// application layer recovers it (WAL replay + catch-up).
    Restart,
}

/// A crash window for one process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrashWindow {
    /// The crashed process.
    pub process: ProcessId,
    /// Instant the process goes down.
    pub from: u64,
    /// Recovery instant (deliveries resume at exactly this time), or
    /// `None` for a permanent crash.
    pub until: Option<u64>,
    /// Whether the process keeps ([`CrashMode::Silence`]) or loses
    /// ([`CrashMode::Restart`]) its volatile state and in-window inbox.
    pub mode: CrashMode,
}

/// A deterministic chaos schedule for one simulation run.
///
/// Build one fluently and hand it to
/// [`SimulationBuilder::faults`](crate::SimulationBuilder::faults):
///
/// ```
/// use dex_simnet::FaultSchedule;
/// use dex_types::ProcessId;
///
/// let chaos = FaultSchedule::new()
///     .partition([ProcessId::new(0), ProcessId::new(1)], 10, 80)
///     .crash(ProcessId::new(2), 5, 60)
///     .lossy_link(Some(ProcessId::new(3)), None, 0.25, 0.0)
///     .dup_all(0.1);
/// assert!(!chaos.is_empty());
/// assert_eq!(chaos.last_heal(), Some(80));
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultSchedule {
    links: Vec<LinkFault>,
    partitions: Vec<Partition>,
    crashes: Vec<CrashWindow>,
}

impl FaultSchedule {
    /// An empty schedule (no chaos at all).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Alias of [`none`](Self::none), reading better as a builder seed.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule injects nothing. An empty schedule leaves the
    /// simulation bit-for-bit identical to one built without chaos.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.partitions.is_empty() && self.crashes.is_empty()
    }

    /// Adds a lossy-link entry. `None` selectors match any process.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn lossy_link(
        mut self,
        from: Option<ProcessId>,
        to: Option<ProcessId>,
        drop: f64,
        dup: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop), "drop probability {drop}");
        assert!((0.0..=1.0).contains(&dup), "dup probability {dup}");
        self.links.push(LinkFault {
            from,
            to,
            drop,
            dup,
            window: None,
        });
        self
    }

    /// Like [`lossy_link`](Self::lossy_link), restricted to messages *sent*
    /// during `[start, end)`.
    pub fn lossy_link_during(
        mut self,
        from: Option<ProcessId>,
        to: Option<ProcessId>,
        drop: f64,
        dup: f64,
        start: u64,
        end: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop), "drop probability {drop}");
        assert!((0.0..=1.0).contains(&dup), "dup probability {dup}");
        assert!(start <= end, "window [{start}, {end}) is inverted");
        self.links.push(LinkFault {
            from,
            to,
            drop,
            dup,
            window: Some((start, end)),
        });
        self
    }

    /// Marks every link incident to each of `processes` as lossy — the
    /// fault-budget-respecting way to use drops: when every such process is
    /// already Byzantine under the run's `FaultPlan`, correct↔correct links
    /// stay reliable and liveness is preserved.
    pub fn lossy_processes<I: IntoIterator<Item = ProcessId>>(
        mut self,
        processes: I,
        drop: f64,
        dup: f64,
    ) -> Self {
        for p in processes {
            self = self
                .lossy_link(Some(p), None, drop, dup)
                .lossy_link(None, Some(p), drop, dup);
        }
        self
    }

    /// Duplicates any message with probability `dup` (duplication never
    /// endangers safety or liveness for idempotent protocols).
    pub fn dup_all(self, dup: f64) -> Self {
        self.lossy_link(None, None, 0.0, dup)
    }

    /// Opens a cut between `side` and the rest over `[from, until)`.
    /// Messages crossing the open cut are held and re-delivered after
    /// `until` (see the module docs for why this models healing partitions).
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted.
    pub fn partition<I: IntoIterator<Item = ProcessId>>(
        mut self,
        side: I,
        from: u64,
        until: u64,
    ) -> Self {
        assert!(from <= until, "partition [{from}, {until}) is inverted");
        self.partitions.push(Partition {
            side: side.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// Silences `process` over `[from, until)`; its deliveries resume at
    /// `until`.
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted.
    pub fn crash(mut self, process: ProcessId, from: u64, until: u64) -> Self {
        assert!(from <= until, "crash window [{from}, {until}) is inverted");
        self.crashes.push(CrashWindow {
            process,
            from,
            until: Some(until),
            mode: CrashMode::Silence,
        });
        self
    }

    /// Crashes `process` over `[from, until)` with **amnesia**: deliveries
    /// landing in the window are lost, and at `until` the runtime invokes
    /// the actor's restart hook (see
    /// [`Recoverable`](crate::Recoverable) and
    /// [`SimulationBuilder::recoverable`](crate::SimulationBuilder::recoverable))
    /// so it can rebuild from persisted state.
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted.
    pub fn crash_restart(mut self, process: ProcessId, from: u64, until: u64) -> Self {
        assert!(from <= until, "crash window [{from}, {until}) is inverted");
        self.crashes.push(CrashWindow {
            process,
            from,
            until: Some(until),
            mode: CrashMode::Restart,
        });
        self
    }

    /// Silences `process` from `from` onwards, forever. Its pending and
    /// future deliveries are dropped.
    pub fn crash_forever(mut self, process: ProcessId, from: u64) -> Self {
        self.crashes.push(CrashWindow {
            process,
            from,
            until: None,
            mode: CrashMode::Silence,
        });
        self
    }

    /// The lossy-link entries.
    pub fn links(&self) -> &[LinkFault] {
        &self.links
    }

    /// The partition windows.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The crash windows.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The last instant at which a timed disturbance ends: the maximum over
    /// partition heals, bounded crash recoveries, and lossy-link window
    /// ends. `None` when the schedule has no timed windows at all.
    /// Unbounded lossy links and permanent crashes do not contribute (they
    /// never end).
    pub fn last_heal(&self) -> Option<u64> {
        self.partitions
            .iter()
            .map(|p| p.until)
            .chain(self.crashes.iter().filter_map(|c| c.until))
            .chain(self.links.iter().filter_map(|l| l.window.map(|(_, e)| e)))
            .max()
    }

    /// Whether every timed disturbance eventually ends *cleanly*: all crash
    /// windows recover in [`CrashMode::Silence`] (partitions always heal by
    /// construction). A [`CrashMode::Restart`] window does end, but it
    /// loses the victim's in-window inbox like a burst of drops — whether
    /// the run still terminates then depends on application-level recovery
    /// (catch-up / retransmission), which this schedule cannot see, so
    /// restart windows do not count as clean here. Lossy links are likewise
    /// not considered — whether drops endanger liveness depends on whether
    /// they are confined to the fault budget, which only the experiment
    /// layer knows (see `dex-harness`).
    pub fn all_recover(&self) -> bool {
        self.crashes
            .iter()
            .all(|c| c.until.is_some() && c.mode == CrashMode::Silence)
    }

    /// Panics if the schedule names a process outside `0..n` — a
    /// misconfigured experiment should fail loudly at build time.
    pub fn validate(&self, n: usize) {
        let check = |p: ProcessId| {
            assert!(
                p.index() < n,
                "fault schedule names out-of-range process {p:?} (n = {n})"
            );
        };
        for l in &self.links {
            l.from.map(check);
            l.to.map(check);
        }
        for part in &self.partitions {
            part.side.iter().copied().for_each(check);
        }
        for c in &self.crashes {
            check(c.process);
        }
    }

    /// If a message `from → to` sent at `at` crosses an open cut, the heal
    /// instant it must wait for; iterated to a fixpoint so back-to-back
    /// partitions chain.
    pub fn partition_hold(&self, from: ProcessId, to: ProcessId, at: u64) -> Option<u64> {
        let mut when = at;
        let mut held = false;
        loop {
            let next = self
                .partitions
                .iter()
                .filter(|p| p.cuts(from, to, when))
                .map(|p| p.until)
                .max();
            match next {
                Some(u) if u > when => {
                    when = u;
                    held = true;
                }
                _ => break,
            }
        }
        held.then_some(when)
    }

    /// How a delivery to `to` at `deliver_at` interacts with `to`'s crash
    /// windows: `None` = unaffected, `Some(Some(t))` = deferred to `t`,
    /// `Some(None)` = the message is lost — either the process never
    /// recovers, or the covering window is a [`CrashMode::Restart`] (a dead
    /// process has no inbox; restart amnesia loses in-window traffic).
    pub fn crash_hold(&self, to: ProcessId, deliver_at: u64) -> Option<Option<u64>> {
        let mut when = deliver_at;
        let mut held = false;
        loop {
            let covering = self
                .crashes
                .iter()
                .filter(|c| c.process == to && c.from <= when)
                .filter(|c| c.until.is_none_or(|u| when < u))
                .min_by_key(|c| c.until.unwrap_or(u64::MAX));
            match covering {
                Some(c) if c.until.is_none() || c.mode == CrashMode::Restart => {
                    return Some(None);
                }
                Some(c) => {
                    // Silence window with a recovery: the inbox queues.
                    // The filter guarantees `until > when`, so this makes
                    // progress and chained windows defer to the last one.
                    when = c.until.expect("covering silence window recovers");
                    held = true;
                }
                None => break,
            }
        }
        held.then_some(Some(when))
    }

    /// Combined `(drop, dup)` probabilities for a message `from → to` sent
    /// at `at`; matching entries compose independently.
    pub fn link_probs(&self, from: ProcessId, to: ProcessId, at: u64) -> (f64, f64) {
        let (mut keep, mut single) = (1.0f64, 1.0f64);
        for l in self.links.iter().filter(|l| l.matches(from, to, at)) {
            keep *= 1.0 - l.drop;
            single *= 1.0 - l.dup;
        }
        (1.0 - keep, 1.0 - single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.last_heal(), None);
        assert!(s.all_recover());
        assert_eq!(s.partition_hold(p(0), p(1), 5), None);
        assert_eq!(s.crash_hold(p(0), 5), None);
        assert_eq!(s.link_probs(p(0), p(1), 5), (0.0, 0.0));
    }

    #[test]
    fn partition_cuts_only_across_the_side_and_only_while_open() {
        let s = FaultSchedule::new().partition([p(0), p(1)], 10, 50);
        // Crossing the cut inside the window: held until the heal.
        assert_eq!(s.partition_hold(p(0), p(2), 10), Some(50));
        assert_eq!(s.partition_hold(p(2), p(1), 49), Some(50));
        // Same side, or outside the window: unaffected.
        assert_eq!(s.partition_hold(p(0), p(1), 20), None);
        assert_eq!(s.partition_hold(p(2), p(3), 20), None);
        assert_eq!(s.partition_hold(p(0), p(2), 9), None);
        assert_eq!(s.partition_hold(p(0), p(2), 50), None);
    }

    #[test]
    fn chained_partitions_hold_to_the_final_heal() {
        let s = FaultSchedule::new()
            .partition([p(0)], 10, 50)
            .partition([p(0)], 50, 90);
        assert_eq!(s.partition_hold(p(0), p(1), 12), Some(90));
    }

    #[test]
    fn crash_defers_or_drops() {
        let s = FaultSchedule::new()
            .crash(p(1), 10, 30)
            .crash_forever(p(2), 40);
        assert_eq!(s.crash_hold(p(1), 15), Some(Some(30)));
        assert_eq!(s.crash_hold(p(1), 9), None);
        assert_eq!(s.crash_hold(p(1), 30), None, "recovery instant is up");
        assert_eq!(s.crash_hold(p(2), 41), Some(None));
        assert_eq!(s.crash_hold(p(2), 39), None);
        assert!(!s.all_recover());
    }

    #[test]
    fn chained_crash_windows_defer_to_the_last_recovery() {
        let s = FaultSchedule::new().crash(p(0), 10, 30).crash(p(0), 30, 60);
        assert_eq!(s.crash_hold(p(0), 12), Some(Some(60)));
    }

    #[test]
    fn restart_windows_lose_in_window_deliveries() {
        let s = FaultSchedule::new().crash_restart(p(1), 10, 30);
        assert_eq!(s.crash_hold(p(1), 15), Some(None), "amnesia: lost");
        assert_eq!(s.crash_hold(p(1), 9), None);
        assert_eq!(s.crash_hold(p(1), 30), None, "recovered: delivered");
        assert_eq!(s.last_heal(), Some(30), "the window still ends");
        assert!(
            !s.all_recover(),
            "restart loses traffic, so it is not clean recovery"
        );
    }

    #[test]
    fn silence_deferral_into_a_restart_window_is_lost() {
        // A silence window defers the delivery to t=30 — which lands inside
        // a restart window, so the message dies with the second crash.
        let s = FaultSchedule::new()
            .crash(p(0), 10, 30)
            .crash_restart(p(0), 30, 60);
        assert_eq!(s.crash_hold(p(0), 12), Some(None));
    }

    #[test]
    fn link_probs_compose_independently() {
        let s = FaultSchedule::new()
            .lossy_link(Some(p(0)), None, 0.5, 0.0)
            .lossy_link(None, Some(p(1)), 0.5, 0.0)
            .dup_all(0.25);
        let (drop, dup) = s.link_probs(p(0), p(1), 0);
        assert!((drop - 0.75).abs() < 1e-12);
        assert!((dup - 0.25).abs() < 1e-12);
        let (drop2, _) = s.link_probs(p(2), p(3), 0);
        assert_eq!(drop2, 0.0);
    }

    #[test]
    fn windowed_links_only_match_inside_their_window() {
        let s = FaultSchedule::new().lossy_link_during(None, None, 1.0, 0.0, 10, 20);
        assert_eq!(s.link_probs(p(0), p(1), 9).0, 0.0);
        assert_eq!(s.link_probs(p(0), p(1), 10).0, 1.0);
        assert_eq!(s.link_probs(p(0), p(1), 20).0, 0.0);
        assert_eq!(s.last_heal(), Some(20));
    }

    #[test]
    fn last_heal_is_the_max_window_end() {
        let s = FaultSchedule::new()
            .partition([p(0)], 5, 70)
            .crash(p(1), 2, 90)
            .crash_forever(p(2), 100);
        assert_eq!(s.last_heal(), Some(90));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn validate_rejects_out_of_range_processes() {
        FaultSchedule::new().crash(p(9), 0, 10).validate(4);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn bad_probability_panics() {
        let _ = FaultSchedule::new().lossy_link(None, None, 1.5, 0.0);
    }
}
