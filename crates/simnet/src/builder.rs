//! Fluent construction of a [`Simulation`].
//!
//! The builder is the only construction path: positional constructors do
//! not scale past two knobs, so every knob is named and defaulted instead:
//!
//! ```
//! use dex_simnet::{Actor, Context, DelayModel, FaultSchedule, Simulation};
//! use dex_types::ProcessId;
//!
//! struct Noop;
//! impl Actor for Noop {
//!     type Msg = u8;
//!     fn on_start(&mut self, _: &mut Context<'_, u8>) {}
//!     fn on_message(&mut self, _: ProcessId, _: &u8, _: &mut Context<'_, u8>) {}
//! }
//!
//! let sim = Simulation::builder(vec![Noop, Noop, Noop])
//!     .seed(42)
//!     .delay(DelayModel::Uniform { min: 1, max: 10 })
//!     .faults(FaultSchedule::new().partition([ProcessId::new(0)], 10, 80))
//!     .build();
//! assert_eq!(sim.n(), 3);
//! ```

use crate::actor::{Actor, Recoverable};
use crate::delay::DelayModel;
use crate::faults::FaultSchedule;
use crate::sim::{RestartHook, Simulation};
use crate::trace::TraceDetail;

/// Builder for a [`Simulation`]; start one with
/// [`Simulation::builder`](Simulation::builder).
///
/// Defaults: seed `0`, the default [`DelayModel`] (uniform `[1, 10]`), no
/// fault schedule, no trace recording.
#[derive(Debug)]
pub struct SimulationBuilder<A: Actor> {
    actors: Vec<A>,
    seed: u64,
    delay: DelayModel,
    faults: FaultSchedule,
    trace: Option<TraceDetail>,
    depth_hint: usize,
    restart_hook: Option<RestartHook<A>>,
}

impl<A: Actor> SimulationBuilder<A> {
    pub(crate) fn new(actors: Vec<A>) -> Self {
        SimulationBuilder {
            actors,
            seed: 0,
            delay: DelayModel::default(),
            faults: FaultSchedule::none(),
            trace: None,
            depth_hint: 0,
            restart_hook: None,
        }
    }

    /// Seed for all randomness (delays, actor RNG, and — salted — the
    /// chaos stream).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The link-delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Installs a fault schedule (partitions, lossy links, crash windows).
    /// An empty schedule is free: the built simulation is bit-identical to
    /// one without chaos.
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Arms the crash-recovery hook: when a
    /// [`CrashMode::Restart`](crate::CrashMode) window in the fault
    /// schedule recovers, the simulation calls
    /// [`Recoverable::restart`] on the victim so it rebuilds from
    /// persisted state (and its recovery sends enter the network at the
    /// recovery instant). Without this, restart windows only lose the
    /// in-window inbox.
    pub fn recoverable(mut self) -> Self
    where
        A: Recoverable,
    {
        self.restart_hook = Some(A::restart);
        self
    }

    /// Enables network trace recording at the given detail level
    /// (equivalent to calling `enable_trace_detail` after construction).
    pub fn trace(mut self, detail: TraceDetail) -> Self {
        self.trace = Some(detail);
        self
    }

    /// Pre-reserves the per-depth statistics vector for runs expected to
    /// reach `depth_hint` causal steps (a capacity hint only — it never
    /// changes observable statistics).
    pub fn stats(mut self, depth_hint: usize) -> Self {
        self.depth_hint = depth_hint;
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if no actors were supplied, or the fault schedule names a
    /// process outside `0..n`.
    pub fn build(self) -> Simulation<A> {
        Simulation::from_parts(
            self.actors,
            self.seed,
            self.delay,
            self.faults,
            self.trace,
            self.depth_hint,
            self.restart_hook,
        )
    }
}
