//! Virtual time.

use core::fmt;
use core::ops::Add;

/// A point in virtual time, in abstract delay units.
///
/// The asynchronous model places no meaning on absolute time; [`Time`] exists
/// so the simulator can order deliveries and so experiments can report
/// decision *latency* alongside decision *steps*.
///
/// # Examples
///
/// ```
/// use dex_simnet::Time;
/// let t = Time::ZERO + 25;
/// assert_eq!(t.as_units(), 25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);

    /// Creates a time point from raw units.
    pub const fn new(units: u64) -> Self {
        Time(units)
    }

    /// Raw units since the origin.
    pub const fn as_units(self) -> u64 {
        self.0
    }

    /// Saturating difference `self − earlier`.
    pub const fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;

    fn add(self, rhs: u64) -> Time {
        // Saturating: heavily skewed delay models can push schedules near
        // u64::MAX, and a wrapping add would deliver "in the past".
        Time(self.0.saturating_add(rhs))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = Time::ZERO + 5;
        let b = a + 10;
        assert!(a < b);
        assert_eq!(b.since(a), 10);
        assert_eq!(a.since(b), 0); // saturating
        assert_eq!(b.as_units(), 15);
    }

    #[test]
    fn display_shows_units() {
        assert_eq!((Time::ZERO + 3).to_string(), "t=3");
    }

    #[test]
    fn addition_saturates_instead_of_wrapping() {
        let far = Time::new(u64::MAX - 1);
        assert_eq!((far + 10).as_units(), u64::MAX);
    }
}
