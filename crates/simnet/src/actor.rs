//! The actor abstraction and the per-delivery context handed to actors.

use crate::time::Time;
use dex_types::{Dest, ProcessId, StepDepth};
use rand::rngs::StdRng;

/// A process state machine driven by message deliveries.
///
/// Correct processes implement the protocol under test; Byzantine processes
/// are actors implementing an adversarial strategy (see the `dex-adversary`
/// crate). The simulator calls [`on_start`](Actor::on_start) exactly once per
/// actor before any delivery, then [`on_message`](Actor::on_message) for each
/// delivered message, in virtual-time order.
///
/// Messages are delivered **by reference**: a multicast keeps a single
/// shared payload in the simulator's slab (see DESIGN.md §10), so handlers
/// clone only the parts they store. Actors must be deterministic given the
/// context's seeded RNG; this is what makes whole simulations replayable
/// from a seed.
pub trait Actor {
    /// The message type exchanged by this system of actors.
    type Msg: Clone + core::fmt::Debug + Send + 'static;

    /// Called once at time zero, before any message is delivered. Initial
    /// sends from here carry causal depth 1 (the first communication step).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called for each delivered message. Sends from here carry depth
    /// `ctx.depth() + 1`.
    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// The actor's structured-event recorder (see `dex-obs`), if it has an
    /// **active** one. The runtime uses this to stamp the virtual clock at
    /// each delivery boundary and to record message send/deliver events
    /// alongside the actor's own protocol events. The default (`None`)
    /// keeps uninstrumented actors and disabled recorders zero-cost.
    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        None
    }

    /// Estimated wire size of one message, in bytes — feeds the
    /// [`NetStats::bytes_on_wire`](crate::NetStats::bytes_on_wire)
    /// counter. The default is the payload's shallow in-memory size: a
    /// deterministic, allocation-free proxy that is exact for the `Copy`
    /// message types most protocols here use. Actors whose messages carry
    /// heap data (boxed batches, vectors) may override it with a deep
    /// measure; the simulator never relies on the value for scheduling,
    /// only for accounting.
    fn msg_bytes(msg: &Self::Msg) -> usize {
        core::mem::size_of_val(msg)
    }

    /// Classifies one message for the per-class
    /// [`NetStats`](crate::NetStats) breakdown (init/echo/batch/other). The
    /// default lumps everything under [`MsgClass::Other`], which keeps the
    /// aggregate counters exact for actors that never override it; protocol
    /// actors classify their wire enums so aggregation wins are
    /// attributable per class.
    fn msg_class(msg: &Self::Msg) -> MsgClass {
        let _ = msg;
        MsgClass::Other
    }
}

/// Coarse wire-message classes for [`NetStats`](crate::NetStats)
/// accounting (see [`Actor::msg_class`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgClass {
    /// A broadcast-opening message (IDB/RB `init`, proposals, votes).
    Init,
    /// A point-to-point or multicast echo sent individually.
    Echo,
    /// An aggregated echo batch carrying this many coalesced entries.
    Batch(u32),
    /// Anything else (UC traffic, catch-up, timers, client messages).
    Other,
}

/// An actor that survives a [`CrashMode::Restart`](crate::CrashMode)
/// crash by rebuilding from persisted state.
///
/// When a restart-mode crash window recovers, the runtime calls
/// [`restart`](Recoverable::restart) on the actor (its struct is reused as
/// the container for both volatile and durable state — the implementation
/// is responsible for wiping everything that would not have survived a real
/// crash and re-deriving it from whatever it persisted, e.g. a WAL plus
/// snapshot). Sends queued from the hook enter the network at the recovery
/// instant with causal depth 1, like `on_start` sends — a reboot starts a
/// fresh causal chain.
///
/// Install the hook with
/// [`SimulationBuilder::recoverable`](crate::SimulationBuilder::recoverable);
/// without it, restart windows only lose the in-window inbox and the actor
/// resumes with its volatile state untouched (amnesia of the network, not
/// of the process — usually *not* what a crash test wants).
pub trait Recoverable: Actor {
    /// Rebuild after a crash: drop volatile state, restore from durable
    /// state, and optionally send recovery traffic (e.g. catch-up
    /// requests).
    fn restart(&mut self, ctx: &mut Context<'_, Self::Msg>);
}

/// Everything an actor may observe and do while handling one delivery.
///
/// Outgoing messages are buffered as `(Dest, Msg)` pairs and dispatched by
/// the simulator after the handler returns, with per-message delays sampled
/// from the simulation's [`DelayModel`](crate::DelayModel). A
/// [`broadcast`](Self::broadcast) stays a single [`Dest::All`] entry — the
/// payload is never cloned per recipient on this path.
#[derive(Debug)]
pub struct Context<'a, M> {
    me: ProcessId,
    n: usize,
    now: Time,
    depth: StepDepth,
    rng: &'a mut StdRng,
    outbox: Vec<(Dest, M)>,
    /// Sends carrying an explicit causal depth (see
    /// [`send_dest_at`](Self::send_dest_at)). Kept separate from `outbox`
    /// so the default depth-`next()` path stays allocation- and
    /// branch-free.
    outbox_at: Vec<(Dest, M, StepDepth)>,
    timers: Vec<(u64, M)>,
    clones: u64,
}

impl<'a, M: Clone> Context<'a, M> {
    pub(crate) fn new(
        me: ProcessId,
        n: usize,
        now: Time,
        depth: StepDepth,
        rng: &'a mut StdRng,
    ) -> Self {
        Context::with_buffer(me, n, now, depth, rng, Vec::new())
    }

    /// Like `new`, but backs the outbox with a caller-provided buffer so the
    /// simulator can recycle one allocation across all deliveries.
    pub(crate) fn with_buffer(
        me: ProcessId,
        n: usize,
        now: Time,
        depth: StepDepth,
        rng: &'a mut StdRng,
        outbox: Vec<(Dest, M)>,
    ) -> Self {
        debug_assert!(outbox.is_empty());
        Context {
            me,
            n,
            now,
            depth,
            rng,
            outbox,
            outbox_at: Vec::new(),
            timers: Vec::new(),
            clones: 0,
        }
    }

    /// Builds a context for an **external runtime** (e.g. the threaded
    /// runtime in `dex-threadnet`) that drives [`Actor`]s outside this
    /// simulator. The runtime is responsible for supplying a coherent
    /// `(now, depth)` pair and for dispatching the outbox afterwards via
    /// [`take_outbox`](Self::take_outbox).
    pub fn external(
        me: ProcessId,
        n: usize,
        now: Time,
        depth: StepDepth,
        rng: &'a mut StdRng,
    ) -> Self {
        Context::new(me, n, now, depth, rng)
    }

    /// Drains the buffered `(Dest, Msg)` sends — the external-runtime
    /// counterpart of the simulator's internal dispatch. A [`Dest::All`]
    /// entry is still unexpanded; the runtime decides how to fan it out.
    pub fn take_outbox(&mut self) -> Vec<(Dest, M)> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains the buffered depth-stamped sends queued with
    /// [`send_dest_at`](Self::send_dest_at). External runtimes must drain
    /// this alongside [`take_outbox`](Self::take_outbox) or
    /// depth-preserving traffic (flushed echo batches) would be lost.
    pub fn take_outbox_at(&mut self) -> Vec<(Dest, M, StepDepth)> {
        std::mem::take(&mut self.outbox_at)
    }

    /// Drains the buffered `(delay, Msg)` timers armed with
    /// [`send_self_after`](Self::send_self_after) — for external runtimes
    /// that implement their own clock (e.g. wall-time in `dex-threadnet`).
    pub fn take_timers(&mut self) -> Vec<(u64, M)> {
        std::mem::take(&mut self.timers)
    }

    /// This actor's process id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The causal depth of the message being handled ([`StepDepth::ZERO`]
    /// inside [`Actor::on_start`]). Messages sent now will carry
    /// `self.depth().next()`.
    pub fn depth(&self) -> StepDepth {
        self.depth
    }

    /// Sends `msg` to a single process. Sending to oneself is allowed and
    /// goes through the network like any other message (the paper's
    /// broadcasts include the sender).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((Dest::To(to), msg));
    }

    /// Queues `msg` for an explicit destination — the passthrough used by
    /// actors that drain a protocol-level `Outbox` whose entries already
    /// carry a [`Dest`].
    pub fn send_dest(&mut self, dest: Dest, msg: M) {
        self.outbox.push((dest, msg));
    }

    /// Queues `msg` for `dest` carrying an **explicit** causal depth
    /// instead of the handler default `self.depth().next()`.
    ///
    /// This exists for one caller: the echo-aggregation flush. A flush
    /// tick is a local timer, not a communication step, so the batches it
    /// emits must travel at the depth their unbatched echoes would have
    /// had — one batch per depth bucket (see
    /// `dex_broadcast::EchoAggregator`). The paper's step metric, the
    /// trace checker's exact step-scheme invariants, and the per-depth
    /// delivery stats all stay unperturbed. `depth` must be a depth this
    /// actor could legitimately have sent at, i.e. captured from a prior
    /// `ctx.depth().next()`; the simulator trusts it for accounting only
    /// and never for scheduling.
    pub fn send_dest_at(&mut self, dest: Dest, msg: M, depth: StepDepth) {
        self.outbox_at.push((dest, msg, depth));
    }

    /// Sends `msg` to **every** process, including this one. The message
    /// stays a single queued entry; the simulator shares one payload among
    /// all `n` deliveries, cloning nothing.
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push((Dest::All, msg));
    }

    /// Arms a deterministic timer: `msg` is delivered back to this actor
    /// exactly `delay` time units from now (`delay` must be positive).
    ///
    /// Timers are local, not network traffic: they bypass the delay model
    /// and link faults (no drop, duplication, or partition hold) and draw
    /// nothing from any RNG stream — a run without timers is bit-identical
    /// to one built before timers existed. They *are* subject to the
    /// actor's own crash windows: a silence window defers the tick to
    /// recovery, a restart or permanent crash loses it (a dead process has
    /// no pending timers). The delivered tick arrives via
    /// [`Actor::on_message`] with `from == me` and causal depth
    /// `self.depth().next()`, like any send from this handler.
    pub fn send_self_after(&mut self, delay: u64, msg: M) {
        assert!(delay > 0, "a timer needs a positive delay");
        self.timers.push((delay, msg));
    }

    /// Sends `msg` to every process except this one.
    ///
    /// This is a per-recipient expansion (it clones the payload `n − 1`
    /// times, counted in [`NetStats::payload_clones`](crate::NetStats)); the
    /// paper's protocols broadcast to everyone *including* the sender, so
    /// the hot paths use [`broadcast`](Self::broadcast) instead.
    pub fn broadcast_others(&mut self, msg: M) {
        for i in 0..self.n {
            if i != self.me.index() {
                self.outbox.push((Dest::To(ProcessId::new(i)), msg.clone()));
                self.clones += 1;
            }
        }
    }

    /// The deterministic per-simulation RNG (shared by all actors; use for
    /// randomized protocols such as coin flips).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Payload clones performed by this context so far (only
    /// [`broadcast_others`](Self::broadcast_others) clones).
    pub(crate) fn cloned(&self) -> u64 {
        self.clones
    }

    /// Decomposes into the buffered sends, depth-stamped sends, and armed
    /// timers.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(self) -> (Vec<(Dest, M)>, Vec<(Dest, M, StepDepth)>, Vec<(u64, M)>) {
        (self.outbox, self.outbox_at, self.timers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_sends() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Context<'_, u8> =
            Context::new(ProcessId::new(1), 3, Time::ZERO, StepDepth::ZERO, &mut rng);
        assert_eq!(ctx.me(), ProcessId::new(1));
        assert_eq!(ctx.n(), 3);
        ctx.send(ProcessId::new(0), 9);
        ctx.broadcast(7);
        ctx.broadcast_others(5);
        ctx.send_dest(Dest::All, 4);
        ctx.send_self_after(17, 3);
        ctx.send_dest_at(Dest::All, 6, StepDepth::new(2));
        assert_eq!(ctx.cloned(), 2, "only broadcast_others clones");
        let (out, out_at, timers) = ctx.into_parts();
        assert_eq!(timers, vec![(17, 3)]);
        // Depth-stamped sends travel in their own buffer.
        assert_eq!(out_at, vec![(Dest::All, 6, StepDepth::new(2))]);
        // send + one unexpanded broadcast + 2 expanded others + send_dest.
        assert_eq!(out.len(), 1 + 1 + 2 + 1);
        assert_eq!(out[0], (Dest::To(ProcessId::new(0)), 9));
        // broadcast stays a single Dest::All entry…
        assert_eq!(out[1], (Dest::All, 7));
        // …broadcast_others expands, skipping self.
        assert_eq!(out[2], (Dest::To(ProcessId::new(0)), 5));
        assert_eq!(out[3], (Dest::To(ProcessId::new(2)), 5));
        assert_eq!(out[4], (Dest::All, 4));
    }

    #[test]
    fn context_exposes_time_and_depth() {
        let mut rng = StdRng::seed_from_u64(0);
        let ctx: Context<'_, u8> = Context::new(
            ProcessId::new(0),
            1,
            Time::new(44),
            StepDepth::new(2),
            &mut rng,
        );
        assert_eq!(ctx.now(), Time::new(44));
        assert_eq!(ctx.depth(), StepDepth::new(2));
    }
}
